"""Degradation sweep — rate error vs report loss (i.i.d. and bursty).

No figure in the paper corresponds to this: the authors' captures came
from a healthy reader.  The sweep quantifies the robustness headroom of
the reproduction's hardened pipeline instead: how fast the rate estimate
degrades as reports are lost, and how much harsher bursty (Gilbert-
Elliott) loss is than i.i.d. loss at the same loss fraction — bursty loss
opens seconds-long gaps in every tag stream at once, the pattern real
interference produces (the same read-rate collapse mechanism behind the
paper's Figs. 14-16, there caused by contention and orientation).

Shape asserted: estimates survive up to 60 % loss with bounded error,
i.i.d. thinning stays unflagged (the sampling rate still dwarfs the
breathing band) while bursty loss is flagged as "report_gaps" with
lowered confidence, and a zero-severity chain is a provable no-op.
"""

import warnings


from conftest import print_reproduction, single_user_scenario

from repro import TagBreathe, run_scenario
from repro.core.pipeline import REASON_GAPS
from repro.faults import ALL_INJECTORS, BurstyDrop, FaultChain, ReportDrop

RATE_BPM = 12.0
LOSS_FRACTIONS = (0.0, 0.2, 0.4, 0.6)


def sweep_loss():
    scenario = single_user_scenario(distance_m=2.5, rate_bpm=RATE_BPM, seed=0)
    capture = run_scenario(scenario, duration_s=60.0, seed=31)
    rows = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for frac in LOSS_FRACTIONS:
            for kind, injector in (("iid", ReportDrop(frac)),
                                   ("bursty", BurstyDrop(frac, burst_s=1.5))):
                faulted = FaultChain([injector], seed=7).apply(capture.reports)
                estimates = TagBreathe(user_ids={1}).process(faulted)
                est = estimates.get(1)
                rows[(kind, frac)] = est
    return capture, rows


def test_degradation_dropout(benchmark, capsys):
    capture, rows = benchmark.pedantic(sweep_loss, rounds=1, iterations=1)
    table = []
    for (kind, frac), est in sorted(rows.items()):
        if est is None:
            table.append((kind, f"{frac * 100:.0f}%", "no estimate", "-", "-"))
            continue
        table.append((
            kind, f"{frac * 100:.0f}%",
            f"{abs(est.rate_bpm - RATE_BPM):.2f} bpm",
            f"{est.confidence:.2f}",
            ",".join(est.degraded_reasons) or "none",
        ))
    print_reproduction(
        capsys, "Degradation: rate error vs report loss",
        ("loss model", "loss", "rate error", "conf", "degraded"), table,
        paper_note="no paper analogue; robustness headroom of the "
                   "hardened pipeline (cf. read-rate collapse in Figs. 14-16)",
    )

    # Every trial up to 60 % loss still yields an estimate (no crash, no
    # refusal) with bounded error; up to 40 % loss it stays within 1.5 bpm.
    for (kind, frac), est in rows.items():
        assert est is not None
        assert abs(est.rate_bpm - RATE_BPM) < 4.0
        if frac <= 0.4:
            assert abs(est.rate_bpm - RATE_BPM) < 1.5

    # Zero severity is exactly the clean estimate for both loss models.
    clean = TagBreathe(user_ids={1}).process(capture.reports)[1]
    assert rows[("iid", 0.0)] == clean
    assert rows[("bursty", 0.0)] == clean
    assert clean.confidence == 1.0 and clean.degraded_reasons == ()

    # i.i.d. thinning keeps the stream gap-free (70 Hz -> 28 Hz still
    # dwarfs the 0.67 Hz band); bursty loss at the same fraction opens
    # seconds-long gaps and must be flagged with lowered confidence.
    for frac in LOSS_FRACTIONS[1:]:
        assert REASON_GAPS not in rows[("iid", frac)].degraded_reasons
    flagged = [rows[("bursty", frac)] for frac in (0.4, 0.6)]
    assert all(REASON_GAPS in est.degraded_reasons for est in flagged)
    assert all(est.confidence < 1.0 for est in flagged)

    # Confidence falls monotonically with bursty loss severity.
    confs = [rows[("bursty", frac)].confidence for frac in LOSS_FRACTIONS]
    assert all(b <= a + 1e-9 for a, b in zip(confs, confs[1:]))


def test_zero_severity_chain_is_bit_identical(benchmark):
    """Every injector at severity 0, chained, changes nothing at all."""
    scenario = single_user_scenario(distance_m=2.5, rate_bpm=RATE_BPM, seed=0)
    capture = run_scenario(scenario, duration_s=40.0, seed=5)
    chain = FaultChain([cls(0.0) for cls in ALL_INJECTORS], seed=123)

    def run():
        return TagBreathe(user_ids={1}).process(chain.apply(capture.reports))

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)
    clean = TagBreathe(user_ids={1}).process(capture.reports)
    assert estimates == clean
    assert all(st.dropped == 0 for st in chain.last_stats)
