"""Fig. 2 — raw RSSI readings during the Section IV-A measurement.

The paper shows a "clear trend of periodic changes in the RSSI readings"
at the breathing rate, but quantised to the reader's 0.5 dBm resolution.
The benchmark regenerates the 25 s trace and verifies both properties:
a spectral peak at the breathing rate and 0.5 dB quantisation.
"""

import numpy as np

from repro.streams import TimeSeries
from repro.streams.resample import bin_mean, resample_linear
from repro.viz import sparkline

from conftest import print_reproduction


def build_rssi_trace(capture):
    reports = capture.reports_for_user(1)
    times = np.array([r.timestamp_s for r in reports])
    rssi = np.array([r.rssi_dbm for r in reports])
    # Cancel frequency-selective per-channel offsets exactly as the phase
    # path does (group by channel); the reader hops every 0.2 s, so the
    # raw trace mixes channel levels.
    channels = np.array([r.channel_index for r in reports])
    centred = rssi.astype(float).copy()
    for ch in np.unique(channels):
        mask = channels == ch
        centred[mask] -= centred[mask].mean()
    keep = np.concatenate([[True], np.diff(times) > 0])
    series = TimeSeries(times[keep], rssi[keep])
    centred_series = TimeSeries(times[keep], centred[keep])
    smoothed = bin_mean(centred_series, 0.25)
    regular = resample_linear(smoothed, 4.0)
    freqs = np.fft.rfftfreq(len(regular), d=0.25)
    spectrum = np.abs(np.fft.rfft(regular.values - regular.values.mean()))
    return series, regular, freqs, spectrum


def test_fig02_rssi_trace(benchmark, capsys, characterisation_capture):
    series, regular, freqs, spectrum = benchmark.pedantic(
        build_rssi_trace, args=(characterisation_capture,), rounds=1, iterations=1,
    )
    true_hz = 12.0 / 60.0
    band = (freqs >= 0.08) & (freqs <= 0.67)
    peak_hz = freqs[band][int(np.argmax(spectrum[band]))]
    rows = [
        ("samples in 25 s", len(series)),
        ("sampling rate", f"{series.mean_rate_hz():.1f} Hz"),
        ("RSSI span", f"{series.values.min():.1f} .. {series.values.max():.1f} dBm"),
        ("distinct levels", len(np.unique(series.values))),
        ("spectral peak", f"{peak_hz * 60:.1f} bpm (truth 12.0)"),
        ("trace", sparkline(regular.values, width=60)),
    ]
    print_reproduction(
        capsys, "Fig. 2: raw RSSI during the measurements",
        ("quantity", "reproduced"), rows,
        paper_note="clear periodic trend at the breathing rate; 0.5 dBm resolution",
    )
    # Quantisation: every reading sits on the 0.5 dBm grid.
    assert np.allclose(series.values * 2, np.round(series.values * 2))
    # Periodicity: the band peak lands at the breathing rate.
    assert abs(peak_hz - true_hz) < 0.05
    # ~64 Hz sampling as the paper reports.
    assert 40.0 < series.mean_rate_hz() < 90.0
