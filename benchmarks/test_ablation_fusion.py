"""Ablation — multi-tag raw-data fusion (Section IV-C).

The paper argues low-level fusion of 3 tag streams "substantially enhances
signal extraction especially when the signals are weak".  The ablation
compares 1 vs 2 vs 3 tags per user at long range (the weak-signal regime)
and verifies fusion never hurts and helps in the weak regime.
"""

import numpy as np

from conftest import mean_accuracy, print_reproduction, single_user_scenario

TAG_COUNTS = (1, 2, 3)
WEAK_DISTANCE_M = 6.0


def sweep_tag_counts():
    out = {}
    for count in TAG_COUNTS:
        out[count] = mean_accuracy(
            lambda rate, seed, n=count: single_user_scenario(
                distance_m=WEAK_DISTANCE_M, rate_bpm=rate, seed=seed, num_tags=n,
            ),
            seeds=(0, 1, 2),
            rates=(8.0, 14.0),
        )
    return out


def test_ablation_fusion(benchmark, capsys):
    accuracies = benchmark.pedantic(sweep_tag_counts, rounds=1, iterations=1)
    rows = [
        (f"{n} tag(s)", f"{accuracies[n] * 100:.1f}%")
        for n in TAG_COUNTS
    ]
    print_reproduction(
        capsys, f"Ablation: tags per user at {WEAK_DISTANCE_M:.0f} m (weak signal)",
        ("configuration", "accuracy"), rows,
        paper_note="Section IV-C: raw-data fusion enhances weak-signal extraction",
    )
    # Fusion with 3 tags is at least as good as a single tag.
    assert accuracies[3] >= accuracies[1] - 0.02
    # And the full-array configuration clears the paper's bar.
    assert accuracies[3] > 0.90
