"""Fig. 15 — reading rate and RSSI at different orientations.

    "as long as there are line-of-sight paths between the tags and the
    antenna (i.e., [0, 90]) the RSSI of the backscatter signal does not
    change much. On the other hand, the reading rate decreases from 50 Hz
    when the user faces to the antenna to 10 Hz when the user rotates to
    90 deg. When the user further rotates (e.g., [120, 180]), as the
    line-of-sight path is blocked by the user's body, the reader cannot
    identify the tag or read low level data any more."

Shape asserted: steep read-rate collapse over 0-90 deg with a much milder
RSSI change, and exactly zero reads beyond 90 deg.
"""

import numpy as np

from repro import Scenario, run_scenario
from repro.body import MetronomeBreathing, Subject

from conftest import print_reproduction

ORIENTATIONS_DEG = (0, 30, 60, 90, 120, 150, 180)
DURATION_S = 30.0


def run_orientation(orientation: float, seed: int):
    scenario = Scenario([Subject(
        user_id=1, distance_m=4.0, orientation_deg=orientation,
        breathing=MetronomeBreathing(10.0), sway_seed=seed,
    )])
    result = run_scenario(scenario, duration_s=DURATION_S, seed=seed * 61 + int(orientation))
    rate = len(result.reports) / DURATION_S
    rssi = (float(np.mean([r.rssi_dbm for r in result.reports]))
            if result.reports else float("nan"))
    return rate, rssi


def sweep_orientation():
    out = {}
    for orientation in ORIENTATIONS_DEG:
        per_seed = [run_orientation(orientation, seed) for seed in (0, 1)]
        rates = [r for r, _ in per_seed]
        rssis = [s for _, s in per_seed if not np.isnan(s)]
        out[orientation] = (
            float(np.mean(rates)),
            float(np.mean(rssis)) if rssis else float("nan"),
        )
    return out


def test_fig15_orientation_rate(benchmark, capsys):
    results = benchmark.pedantic(sweep_orientation, rounds=1, iterations=1)
    rows = [
        (f"{orientation} deg", f"{results[orientation][0]:.1f} reads/s",
         f"{results[orientation][1]:.1f} dBm"
         if not np.isnan(results[orientation][1]) else "no reads")
        for orientation in ORIENTATIONS_DEG
    ]
    print_reproduction(
        capsys, "Fig. 15: read rate and RSSI vs orientation",
        ("orientation", "read rate", "mean RSSI"), rows,
        paper_note="rate 50 Hz -> 10 Hz over 0-90 deg, RSSI roughly flat; "
                   "no reads beyond 90 deg",
    )
    # The rate collapses steeply toward 90 deg...
    assert results[90][0] < 0.45 * results[0][0]
    assert results[0][0] > results[60][0] > results[90][0]
    # ...and vanishes entirely once the body blocks LOS.
    assert results[120][0] == 0.0
    assert results[150][0] == 0.0
    assert results[180][0] == 0.0
    # RSSI moves far less than the read rate: under 10 dB across 0-90 deg
    # while the rate loses more than half.
    rssi_span = abs(results[0][1] - results[90][1])
    assert rssi_span < 10.0
