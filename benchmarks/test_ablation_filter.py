"""Ablation — FFT brick-wall vs FIR low-pass vs FFT-peak estimation.

Section IV-B presents the FFT low-pass as the primary extractor, notes a
"finite impulse response (FIR) low pass filter can also be adopted", and
rejects plain FFT-peak estimation for its 1/window resolution.  The
ablation quantifies all three on identical captures.
"""

import numpy as np

from repro import FFTPeakEstimator, Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing, Subject

from conftest import print_reproduction

#: Rates needing >= 7 zero crossings within the window (Eq. 5's buffer):
#: the slowest Table I rates cannot fill a 7-crossing buffer in 25 s, so
#: the window is stretched slightly to 30 s (resolution: 2.0 bpm).
RATES = (9.0, 11.0, 13.0, 17.0)
DURATION_S = 30.0


def run_all_estimators():
    errors = {"fft-lowpass": [], "fir-lowpass": [], "fft-peak": []}
    for i, rate in enumerate(RATES):
        scenario = Scenario([Subject(user_id=1, distance_m=3.0,
                                     breathing=MetronomeBreathing(rate),
                                     sway_seed=i)])
        result = run_scenario(scenario, duration_s=DURATION_S, seed=307 + i)
        for name, filter_type in (("fft-lowpass", "fft"), ("fir-lowpass", "fir")):
            pipeline = TagBreathe(user_ids={1}, filter_type=filter_type)
            estimates = pipeline.process(result.reports)
            err = (abs(estimates[1].rate_bpm - rate)
                   if 1 in estimates else rate)
            errors[name].append(err)
        track = TagBreathe(user_ids={1}).fused_track(1, result.reports)
        peak = FFTPeakEstimator().estimate_rate_bpm(track)
        errors["fft-peak"].append(abs(peak - rate))
    return {name: float(np.mean(errs)) for name, errs in errors.items()}


def test_ablation_filter(benchmark, capsys):
    mean_errors = benchmark.pedantic(run_all_estimators, rounds=1, iterations=1)
    rows = [
        (name, f"{err:.2f} bpm")
        for name, err in sorted(mean_errors.items(), key=lambda kv: kv[1])
    ]
    print_reproduction(
        capsys, f"Ablation: extractor choice ({DURATION_S:.0f} s windows)",
        ("estimator", "mean |error|"), rows,
        paper_note="zero-crossing on the filtered signal beats the "
                   "resolution-limited FFT peak (2.0 bpm grid at 30 s)",
    )
    # Both filtered zero-crossing paths achieve sub-bpm error...
    assert mean_errors["fft-lowpass"] < 1.0
    assert mean_errors["fir-lowpass"] < 1.5
    # ...and beat (or at worst match) the FFT-peak baseline, whose error
    # is bounded below by the resolution grid on off-grid rates.
    assert mean_errors["fft-lowpass"] <= mean_errors["fft-peak"] + 0.05
