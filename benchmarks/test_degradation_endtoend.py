"""End-to-end graceful degradation under a compound fault scenario.

The ISSUE's acceptance scenario: a 3-tag / 1-user capture (the Table I
default tag count) hit simultaneously by

* 30 % bursty report loss (Gilbert-Elliott, 1.5 s mean bursts),
* one tag dying permanently halfway through the trial, and
* the serving antenna port going silent for the last 5 s.

The hardened pipeline must still produce an estimate within 1.5 bpm of
ground truth, with lowered ``confidence`` and ``degraded_reasons`` naming
all three fault signatures — and a zero-severity chain must leave the
estimates bit-identical to the clean run.
"""

import warnings

import pytest

from conftest import print_reproduction

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.config import ReaderConfig
from repro.core.pipeline import (
    REASON_ANTENNA_FAILOVER,
    REASON_GAPS,
    REASON_TAG_DEATH,
)
from repro.errors import DegradedEstimateWarning
from repro.faults import ALL_INJECTORS, AntennaOutage, BurstyDrop, FaultChain, TagDeath

TRUTH_BPM = 12.0
DURATION_S = 60.0
OUTAGE_S = 5.0


def make_capture():
    """3 tags / 1 user / 2 antennas; port 1 faces the user and wins."""
    from repro.reader import Antenna

    scenario = Scenario([Subject(user_id=1, distance_m=3.0,
                                 breathing=MetronomeBreathing(TRUTH_BPM),
                                 sway_seed=0)])
    antennas = [
        Antenna(port=1, position_m=(0.0, 0.0, 1.0), boresight=(1, 0, 0)),
        Antenna(port=2, position_m=(0.0, 1.5, 1.0), boresight=(1, 0, 0)),
    ]
    return run_scenario(scenario, duration_s=DURATION_S, seed=17,
                        reader_config=ReaderConfig(num_antennas=2),
                        antennas=antennas)


def run_endtoend():
    capture = make_capture()
    clean = TagBreathe(user_ids={1}).process(capture.reports)[1]
    chain = FaultChain([
        BurstyDrop(0.3, burst_s=1.5),
        TagDeath(0.5, num_victims=1),
        AntennaOutage(OUTAGE_S / DURATION_S, port=clean.antenna_port,
                      align="end"),
    ], seed=99)
    faulted_reports = chain.apply(capture.reports)
    with pytest.warns(DegradedEstimateWarning):
        degraded = TagBreathe(user_ids={1}).process(faulted_reports)[1]
    zero_chain = FaultChain([cls(0.0) for cls in ALL_INJECTORS], seed=99)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a clean run must not warn
        zero = TagBreathe(user_ids={1}).process(
            zero_chain.apply(capture.reports))[1]
    return capture, chain, clean, degraded, zero


def test_degradation_endtoend(benchmark, capsys):
    capture, chain, clean, degraded, zero = benchmark.pedantic(
        run_endtoend, rounds=1, iterations=1)

    rows = [
        ("clean", f"{clean.rate_bpm:.2f}", f"{clean.confidence:.2f}",
         str(clean.antenna_port), "none"),
        ("faulted", f"{degraded.rate_bpm:.2f}", f"{degraded.confidence:.2f}",
         str(degraded.antenna_port), ",".join(degraded.degraded_reasons)),
    ]
    print_reproduction(
        capsys, "End-to-end degradation: 30% bursty loss + tag death + "
                f"{OUTAGE_S:.0f}s antenna outage",
        ("run", "bpm", "conf", "port", "degraded"), rows,
        paper_note=f"truth {TRUTH_BPM:.0f} bpm; no paper analogue "
                   "(healthy-reader captures only)",
    )

    # The clean pipeline nails the rate at full confidence.
    assert clean.rate_bpm == pytest.approx(TRUTH_BPM, abs=0.5)
    assert clean.confidence == 1.0 and clean.degraded_reasons == ()

    # Acceptance: the compound-fault estimate stays within 1.5 bpm ...
    assert abs(degraded.rate_bpm - TRUTH_BPM) <= 1.5
    # ... with lowered confidence and all three fault signatures named.
    assert degraded.confidence < clean.confidence
    assert REASON_GAPS in degraded.degraded_reasons
    assert REASON_TAG_DEATH in degraded.degraded_reasons
    assert REASON_ANTENNA_FAILOVER in degraded.degraded_reasons
    # The outage forced the estimate off the clean run's serving port,
    # and the dead tag is out of the fusion.
    assert degraded.antenna_port != clean.antenna_port
    assert degraded.tags_fused == clean.tags_fused - 1

    # Acceptance: all injectors at severity 0 -> bit-identical estimate.
    assert zero == clean

    # The chain's bookkeeping accounts for every stage.
    assert [s.name for s in chain.last_stats] == \
        ["bursty_drop", "tag_death", "antenna_outage"]
    assert all(s.dropped > 0 for s in chain.last_stats)
