"""Fig. 17 — accuracy at different postures (sitting, standing, lying).

    "We evaluate the monitoring accuracy with different postures, i.e.,
    sitting, standing, and lying. ... the monitoring accuracy remains
    above 90.0% across different postures."

Shape asserted: every posture stays above 90 %.  Lying is the hardest
case (the chest rises mostly vertically, shrinking the radial component
toward a tripod-height antenna), so it is allowed to be lowest but must
clear the paper's 90 % bar.
"""

from conftest import mean_accuracy, print_reproduction, single_user_scenario

POSTURES = ("sitting", "standing", "lying")


def sweep_postures():
    out = {}
    for posture in POSTURES:
        out[posture] = mean_accuracy(
            lambda rate, seed, p=posture: single_user_scenario(
                distance_m=3.0, rate_bpm=rate, seed=seed, posture=p,
            ),
            rates=(8.0, 12.0, 16.0),
        )
    return out


def test_fig17_posture(benchmark, capsys):
    accuracies = benchmark.pedantic(sweep_postures, rounds=1, iterations=1)
    rows = [
        (posture, f"{accuracies[posture] * 100:.1f}%", ">90%")
        for posture in POSTURES
    ]
    print_reproduction(
        capsys, "Fig. 17: accuracy vs posture",
        ("posture", "reproduced", "paper"), rows,
        paper_note="above 90% for sitting, standing, and lying",
    )
    for posture in POSTURES:
        assert accuracies[posture] > 0.90, f"{posture} fell below the paper's 90% bar"
