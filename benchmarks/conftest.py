"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section IV characterisation: Figs. 2-8; Section VI evaluation:
Figs. 12-17 and Table I).  Each prints the reproduced series next to the
paper's reported values and asserts the *shape* (ordering, thresholds,
crossovers) — absolute numbers differ because the substrate is a
simulator, not the authors' office testbed (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
import pytest

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing, Subject

#: Trial length for accuracy benchmarks.  The paper uses 120 s; 60 s keeps
#: the whole benchmark suite to minutes while preserving every shape.
TRIAL_SECONDS = 60.0

#: Metronome rates cycled across repeat trials (the paper draws 5-20 bpm).
TRIAL_RATES_BPM = (5.0, 10.0, 15.0, 20.0)


def single_user_scenario(distance_m: float = 4.0, rate_bpm: float = 10.0,
                         seed: int = 0, **subject_kwargs) -> Scenario:
    """One instrumented user breathing at a metronome rate."""
    return Scenario([Subject(
        user_id=1,
        distance_m=distance_m,
        breathing=MetronomeBreathing(rate_bpm),
        sway_seed=seed,
        **subject_kwargs,
    )])


def accuracy_of_trial(scenario: Scenario, rate_bpm: float, seed: int,
                      duration_s: float = TRIAL_SECONDS,
                      **run_kwargs) -> Optional[float]:
    """Eq. (8) accuracy of one simulated trial (None if no estimate)."""
    result = run_scenario(scenario, duration_s=duration_s, seed=seed, **run_kwargs)
    estimates = TagBreathe(
        user_ids=set(scenario.monitored_user_ids)
    ).process(result.reports)
    if 1 not in estimates:
        return None
    return breathing_rate_accuracy(estimates[1].rate_bpm, rate_bpm)


def mean_accuracy(make_scenario: Callable[[float, int], Scenario],
                  seeds: Sequence[int] = (0, 1),
                  rates: Sequence[float] = TRIAL_RATES_BPM,
                  duration_s: float = TRIAL_SECONDS) -> float:
    """Average Eq. (8) accuracy over a rate x seed grid of trials.

    Failed trials (no estimate) count as zero accuracy, matching how a
    missed measurement would score in the paper's protocol.
    """
    accuracies: List[float] = []
    for rate in rates:
        for seed in seeds:
            scenario = make_scenario(rate, seed)
            acc = accuracy_of_trial(scenario, rate, seed=seed * 7919 + int(rate),
                                    duration_s=duration_s)
            accuracies.append(0.0 if acc is None else acc)
    return float(np.mean(accuracies))


def print_reproduction(capsys, title: str, header: Tuple[str, ...],
                       rows: Sequence[Sequence[object]],
                       paper_note: str) -> None:
    """Print a figure-reproduction table live (bypassing pytest capture)."""
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
              for i, h in enumerate(header)]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    with capsys.disabled():
        print(f"\n=== {title} ===")
        print(fmt(header))
        print(fmt(["-" * w for w in widths]))
        for row in rows:
            print(fmt(row))
        print(f"paper: {paper_note}")


@pytest.fixture(scope="session")
def characterisation_capture():
    """The Section IV-A capture reused by Figs. 2-8: one user, 2 m, 25 s.

        "a user attached with a passive tag on his cloth naturally
        breathes sitting 2 m away from a reader's antenna. We collected
        the low level readings ... for 25 seconds. The data sampling rate
        was around 64 Hz."
    """
    scenario = single_user_scenario(distance_m=2.0, rate_bpm=12.0, seed=0,
                                    num_tags=1)
    return run_scenario(scenario, duration_s=25.0, seed=2017)
