"""Fig. 16 — accuracy at different orientations (with LOS, < 90 deg).

    "when the user faces to the antenna, the measurement accuracy is above
    90%. The accuracy decreases from 90% to 85% as the user rotates to
    90 deg."

Shape asserted: above-90% accuracy facing the antenna, a decline toward
90 deg, and a still-usable estimate at 90 deg (the lateral rib-expansion
component keeps the signal alive).
"""

import numpy as np

from conftest import mean_accuracy, print_reproduction, single_user_scenario

ORIENTATIONS_DEG = (0, 30, 60, 90)

#: Approximate values read off the paper's Fig. 16.
PAPER_ACCURACY = {0: 0.92, 30: 0.91, 60: 0.88, 90: 0.85}


def sweep_orientation_accuracy():
    out = {}
    for orientation in ORIENTATIONS_DEG:
        out[orientation] = mean_accuracy(
            lambda rate, seed, o=orientation: single_user_scenario(
                distance_m=4.0, rate_bpm=rate, seed=seed,
                orientation_deg=float(o),
            ),
            rates=(8.0, 12.0, 16.0),
        )
    return out


def test_fig16_orientation_acc(benchmark, capsys):
    accuracies = benchmark.pedantic(sweep_orientation_accuracy, rounds=1, iterations=1)
    rows = [
        (f"{o} deg", f"{accuracies[o] * 100:.1f}%", f"{PAPER_ACCURACY[o] * 100:.0f}%")
        for o in ORIENTATIONS_DEG
    ]
    print_reproduction(
        capsys, "Fig. 16: accuracy vs orientation (LOS cases)",
        ("orientation", "reproduced", "paper"), rows,
        paper_note="above 90% facing the antenna, declining to ~85% at 90 deg",
    )
    # Facing the antenna: above 90%.
    assert accuracies[0] > 0.90
    # 90 deg is the worst orientation but still delivers estimates.
    assert accuracies[90] == min(accuracies.values())
    assert accuracies[90] > 0.75
    # Monotone-ish decline: 90 deg clearly below the frontal cases.
    assert accuracies[90] <= min(accuracies[0], accuracies[30]) + 0.01
