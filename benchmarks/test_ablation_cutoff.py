"""Ablation — the 0.67 Hz low-pass cutoff of Section IV-B.

The paper chooses 0.67 Hz because human breathing is "generally lower than
40 breaths per minute".  The ablation sweeps the cutoff: too low clips
fast breathing (20 bpm = 0.33 Hz fundamental needs headroom), too high
admits noise.  The paper's choice must sit in the sweet spot.
"""

import numpy as np

from repro import PipelineConfig, Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject

from conftest import print_reproduction

CUTOFFS_HZ = (0.25, 0.4, 0.67, 1.5, 3.0)
RATES = (8.0, 20.0)  # include the Table I maximum


def sweep_cutoffs():
    captures = []
    for i, rate in enumerate(RATES):
        scenario = Scenario([Subject(user_id=1, distance_m=4.0,
                                     breathing=MetronomeBreathing(rate),
                                     sway_seed=i)])
        captures.append((rate, run_scenario(scenario, duration_s=60.0, seed=503 + i)))
    out = {}
    for cutoff in CUTOFFS_HZ:
        errors = []
        config = PipelineConfig(cutoff_hz=cutoff)
        for rate, result in captures:
            estimates = TagBreathe(user_ids={1}, config=config).process(result.reports)
            errors.append(abs(estimates[1].rate_bpm - rate) if 1 in estimates else rate)
        out[cutoff] = float(np.mean(errors))
    return out


def test_ablation_cutoff(benchmark, capsys):
    errors = benchmark.pedantic(sweep_cutoffs, rounds=1, iterations=1)
    rows = [
        (f"{cutoff} Hz" + (" (paper)" if cutoff == 0.67 else ""),
         f"{cutoff * 60:.0f} bpm band", f"{errors[cutoff]:.2f} bpm")
        for cutoff in CUTOFFS_HZ
    ]
    print_reproduction(
        capsys, "Ablation: low-pass cutoff frequency",
        ("cutoff", "pass band", "mean |error|"), rows,
        paper_note="0.67 Hz covers all plausible rates (< 40 bpm) without "
                   "admitting unnecessary noise",
    )
    # A cutoff below the 20 bpm fundamental clips fast breathing.
    assert errors[0.25] > errors[0.67]
    # The paper's cutoff is (near-)optimal across the Table I rate range.
    assert errors[0.67] <= min(errors.values()) + 0.3
    assert errors[0.67] < 1.0
