"""Table I — system parameters and default experiment settings.

Regenerates the paper's Table I from the library's configuration layer and
verifies every range/default is enforced, then runs one trial at the full
default settings to show the default configuration actually monitors
breathing.
"""

import pytest

from repro import (
    PipelineConfig,
    ReaderConfig,
    Scenario,
    ScenarioDefaults,
    TagBreathe,
    breathing_rate_accuracy,
    run_scenario,
)
from repro.body import MetronomeBreathing, Subject
from repro.config import (
    BREATHING_RATE_RANGE_BPM,
    DISTANCE_RANGE_M,
    ORIENTATION_RANGE_DEG,
    POSTURES,
    TAGS_PER_USER_RANGE,
    TX_POWER_RANGE_DBM,
    USERS_RANGE,
)

from conftest import print_reproduction


def run_default_trial():
    defaults = ScenarioDefaults()
    scenario = Scenario([Subject(
        user_id=1,
        distance_m=defaults.distance_m,
        orientation_deg=defaults.orientation_deg,
        posture=defaults.posture,
        num_tags=defaults.tags_per_user,
        breathing=MetronomeBreathing(defaults.breathing_rate_bpm),
        sway_seed=0,
    )])
    result = run_scenario(scenario, duration_s=60.0, seed=1)
    estimate = TagBreathe(user_ids={1}).process(result.reports)[1]
    return defaults, breathing_rate_accuracy(
        estimate.rate_bpm, defaults.breathing_rate_bpm
    )


def test_table1_defaults(benchmark, capsys):
    defaults, accuracy = benchmark.pedantic(run_default_trial, rounds=1, iterations=1)
    reader = ReaderConfig()
    pipeline = PipelineConfig()
    rows = [
        ("Channel", "1 - 10", "Hopping",
         f"{reader.num_channels} channels, {reader.channel_dwell_s}s dwell"),
        ("Tx power", f"{TX_POWER_RANGE_DBM[0]:.0f}-{TX_POWER_RANGE_DBM[1]:.0f} dBm",
         "30 dBm", f"{reader.tx_power_dbm:.0f} dBm"),
        ("Distance", f"{DISTANCE_RANGE_M[0]:.0f}-{DISTANCE_RANGE_M[1]:.0f} m",
         "4 m", f"{defaults.distance_m:.0f} m"),
        ("Orientation", f"{ORIENTATION_RANGE_DEG[0]:.0f}-{ORIENTATION_RANGE_DEG[1]:.0f} deg",
         "front", f"{defaults.orientation_deg:.0f} deg"),
        ("Number of users", f"{USERS_RANGE[0]}-{USERS_RANGE[1]}",
         "1 user", f"{defaults.num_users}"),
        ("Tags per user", f"{TAGS_PER_USER_RANGE[0]}-{TAGS_PER_USER_RANGE[1]}",
         "3 tags", f"{defaults.tags_per_user}"),
        ("Breathing rate", f"{BREATHING_RATE_RANGE_BPM[0]:.0f}-{BREATHING_RATE_RANGE_BPM[1]:.0f} bpm",
         "10 bpm", f"{defaults.breathing_rate_bpm:.0f} bpm"),
        ("Posture", "/".join(POSTURES), "Sitting", defaults.posture),
        ("Propagation path", "with/without LOS", "with LOS",
         "with LOS" if defaults.line_of_sight else "without LOS"),
        ("Pipeline cutoff", "-", "0.67 Hz", f"{pipeline.cutoff_hz} Hz"),
        ("Crossing buffer M", "-", "7", f"{pipeline.zero_crossing_buffer}"),
    ]
    print_reproduction(
        capsys, "Table I: system parameters and defaults",
        ("parameter", "range", "paper default", "library value"), rows,
        paper_note=f"defaults trial accuracy here: {accuracy * 100:.1f}%",
    )
    assert defaults.distance_m == 4.0
    assert defaults.tags_per_user == 3
    assert defaults.breathing_rate_bpm == 10.0
    assert pipeline.cutoff_hz == pytest.approx(0.67)
    assert pipeline.zero_crossing_buffer == 7
    # The default configuration monitors breathing accurately.
    assert accuracy > 0.9
