"""Section IV-B's resolution pitfall, quantified end-to-end.

    "One of the pitfalls of the Fourier transform for a window size of w
    seconds is that it has a resolution of 1/w. ... since the window size
    is 25 seconds, the frequency resolution is 0.04 Hz which corresponds
    to 2.4 breaths per minute."

The benchmark measures both estimators on rates placed OFF the 25 s FFT
grid and shows zero-crossing (Eq. 5) beating the grid-locked FFT peak —
the paper's stated reason for the zero-crossing design.
"""

import numpy as np
import pytest

from repro import FFTPeakEstimator, Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.core.spectral import frequency_resolution_bpm

from conftest import print_reproduction

WINDOW_S = 25.0
#: Rates deliberately halfway between 2.4 bpm FFT bins.
OFF_GRID_RATES = (8.4, 10.8, 13.2, 15.6)


def compare_estimators():
    zc_errors, peak_errors = [], []
    for i, rate in enumerate(OFF_GRID_RATES):
        scenario = Scenario([Subject(user_id=1, distance_m=2.0,
                                     breathing=MetronomeBreathing(rate),
                                     sway_seed=i)])
        result = run_scenario(scenario, duration_s=WINDOW_S, seed=701 + i)
        pipeline = TagBreathe(user_ids={1})
        estimates = pipeline.process(result.reports)
        zc_errors.append(abs(estimates[1].rate_bpm - rate) if 1 in estimates else rate)
        track = pipeline.fused_track(1, result.reports)
        peak_errors.append(abs(FFTPeakEstimator().estimate_rate_bpm(track) - rate))
    return float(np.mean(zc_errors)), float(np.mean(peak_errors))


def test_fftres_pitfall(benchmark, capsys):
    zc_error, peak_error = benchmark.pedantic(compare_estimators, rounds=1, iterations=1)
    resolution = frequency_resolution_bpm(WINDOW_S)
    rows = [
        ("FFT resolution at 25 s", f"{resolution:.2f} bpm"),
        ("FFT-peak mean |error| (off-grid rates)", f"{peak_error:.2f} bpm"),
        ("zero-crossing mean |error|", f"{zc_error:.2f} bpm"),
    ]
    print_reproduction(
        capsys, "Section IV-B pitfall: FFT resolution vs zero crossings",
        ("quantity", "value"), rows,
        paper_note="25 s window -> 2.4 bpm grid; Eq. (5) avoids the grid entirely",
    )
    assert resolution == pytest.approx(2.4)
    # Off-grid truths sit ~1.2 bpm from the nearest FFT bin; the peak
    # estimator cannot do better than that on average.
    assert peak_error > 0.6
    # Zero crossings resolve the same rates with sub-bpm error.
    assert zc_error < 0.8
    assert zc_error < peak_error
