"""Fig. 13 — breathing rate accuracy with different numbers of users.

    "The users sit side by side 4 m away from the antenna. Each user wears
    three commodity passive tags. ... the breathing rate accuracies with
    different number of users remain around 95.0%. Thanks to the RFID
    collision avoidance protocol, the backscattered signals from different
    users do not interfere with each other."

Shape asserted: accuracy stays roughly flat (no multi-user collapse — the
paper's key differentiator vs Doppler/WiFi sensing), and the reader still
sustains enough reads for 4 users x 3 tags = 12 tags.
"""

import numpy as np

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing, Subject

from conftest import TRIAL_SECONDS, print_reproduction

USER_COUNTS = (1, 2, 3, 4)


def run_user_count(num_users: int, seed: int):
    rates = {uid: 6.0 + 4.0 * (uid - 1) for uid in range(1, num_users + 1)}
    subjects = [
        Subject(user_id=uid, distance_m=4.0,
                lateral_offset_m=(uid - (num_users + 1) / 2) * 0.8,
                breathing=MetronomeBreathing(rate), sway_seed=seed * 10 + uid)
        for uid, rate in rates.items()
    ]
    result = run_scenario(Scenario(subjects), duration_s=TRIAL_SECONDS,
                          seed=seed * 131 + num_users)
    estimates = TagBreathe(user_ids=set(rates)).process(result.reports)
    accuracies = [
        breathing_rate_accuracy(estimates[uid].rate_bpm, rate)
        if uid in estimates else 0.0
        for uid, rate in rates.items()
    ]
    return float(np.mean(accuracies)), result.aggregate_read_rate_hz()


def sweep_users():
    out = {}
    for n in USER_COUNTS:
        per_seed = [run_user_count(n, seed) for seed in (0, 1)]
        out[n] = (
            float(np.mean([a for a, _ in per_seed])),
            float(np.mean([r for _, r in per_seed])),
        )
    return out


def test_fig13_users(benchmark, capsys):
    results = benchmark.pedantic(sweep_users, rounds=1, iterations=1)
    rows = [
        (f"{n} user(s)", f"{results[n][0] * 100:.1f}%",
         f"{results[n][1]:.0f} reads/s", "~95%")
        for n in USER_COUNTS
    ]
    print_reproduction(
        capsys, "Fig. 13: accuracy vs number of users",
        ("users", "reproduced", "aggregate rate", "paper"), rows,
        paper_note="~95% regardless of user count; 12 tags still read fast enough",
    )
    accuracies = [results[n][0] for n in USER_COUNTS]
    # Every configuration stays above 90% — no multi-user collapse.
    assert all(acc > 0.90 for acc in accuracies)
    # Flat: worst case within a few points of best case.
    assert max(accuracies) - min(accuracies) < 0.08
    # The MAC sustains reads for all 12 tags.
    assert results[4][1] > 60.0
