"""Ablation — preprocessing representation: samples vs literal increments.

DESIGN.md Section 5: the production pipeline reconstructs per-channel
*unwrapped displacement samples* (Eq. 3/4 telescoped per channel + the
Fig. 6 normalisation), while the paper's text reads as per-read increment
fusion (Eq. 6/7 literally).  The increments form accumulates dwell-
boundary endpoint noise into a random walk; the samples form does not.
This ablation quantifies the gap — the reproduction's most consequential
engineering decision.
"""

import numpy as np

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing, Subject

from conftest import print_reproduction

DISTANCES_M = (2.0, 4.0, 6.0)


def compare_modes():
    out = {}
    for distance in DISTANCES_M:
        accs = {"samples": [], "increments": []}
        for seed, rate in enumerate((9.0, 15.0)):
            scenario = Scenario([Subject(user_id=1, distance_m=distance,
                                         breathing=MetronomeBreathing(rate),
                                         sway_seed=seed)])
            result = run_scenario(scenario, duration_s=60.0,
                                  seed=601 + seed + int(distance))
            for mode in accs:
                estimates = TagBreathe(user_ids={1}, mode=mode).process(result.reports)
                accs[mode].append(
                    breathing_rate_accuracy(estimates[1].rate_bpm, rate)
                    if 1 in estimates else 0.0
                )
        out[distance] = {mode: float(np.mean(vals)) for mode, vals in accs.items()}
    return out


def test_ablation_preprocessing(benchmark, capsys):
    results = benchmark.pedantic(compare_modes, rounds=1, iterations=1)
    rows = [
        (f"{d:.0f} m",
         f"{results[d]['samples'] * 100:.1f}%",
         f"{results[d]['increments'] * 100:.1f}%")
        for d in DISTANCES_M
    ]
    print_reproduction(
        capsys, "Ablation: samples (production) vs increments (paper-literal)",
        ("distance", "samples mode", "increments mode"), rows,
        paper_note="unwrapped-sample preprocessing avoids the dwell-stitch "
                   "random walk; see DESIGN.md",
    )
    # The production representation dominates at every distance.
    for d in DISTANCES_M:
        assert results[d]["samples"] >= results[d]["increments"] - 0.02
    # And keeps the paper's >90% bar where the literal form cannot.
    assert all(results[d]["samples"] > 0.9 for d in DISTANCES_M)
