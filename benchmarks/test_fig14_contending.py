"""Fig. 14 — accuracy with different numbers of contending tags.

    "TagBreathe is able to achieve the accuracy of 91.0% even with 30
    contending tags in the communication range. The main reason is because
    the total reading rates is sufficiently high ... The accuracy
    decreases when more contending tags are in presence which leads to
    lower reading rates of 3 breath monitoring tags."

Shape asserted: the monitoring tags' read rate dilutes sharply as item
tags contend for MAC airtime, yet accuracy degrades only gently and stays
above 90 % with 30 contending tags.
"""

import numpy as np

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing, Subject

from conftest import TRIAL_SECONDS, print_reproduction

CONTENDING_COUNTS = (0, 5, 10, 20, 30)

#: Approximate values read off the paper's Fig. 14.
PAPER_ACCURACY = {0: 0.95, 5: 0.95, 10: 0.94, 20: 0.93, 30: 0.91}


def run_contention(count: int, seed: int):
    scenario = Scenario([Subject(
        user_id=1, distance_m=4.0,
        breathing=MetronomeBreathing(10.0), sway_seed=seed,
    )]).with_contending_tags(count, seed=seed)
    result = run_scenario(scenario, duration_s=TRIAL_SECONDS,
                          seed=seed * 211 + count)
    estimates = TagBreathe(user_ids={1}).process(result.reports)
    accuracy = (breathing_rate_accuracy(estimates[1].rate_bpm, 10.0)
                if 1 in estimates else 0.0)
    monitor_rate = len(result.reports_for_user(1)) / TRIAL_SECONDS
    return accuracy, monitor_rate


def sweep_contention():
    out = {}
    for count in CONTENDING_COUNTS:
        per_seed = [run_contention(count, seed) for seed in (0, 1)]
        out[count] = (
            float(np.mean([a for a, _ in per_seed])),
            float(np.mean([r for _, r in per_seed])),
        )
    return out


def test_fig14_contending(benchmark, capsys):
    results = benchmark.pedantic(sweep_contention, rounds=1, iterations=1)
    rows = [
        (f"{count} tags", f"{results[count][0] * 100:.1f}%",
         f"{results[count][1]:.0f} reads/s",
         f"{PAPER_ACCURACY[count] * 100:.0f}%")
        for count in CONTENDING_COUNTS
    ]
    print_reproduction(
        capsys, "Fig. 14: accuracy vs contending tags",
        ("contending", "reproduced", "monitor-tag rate", "paper"), rows,
        paper_note=">=91% even with 30 contending tags, via diluted but sufficient read rates",
    )
    # The headline: >=90% with 30 contending tags.
    assert results[30][0] > 0.90
    # The mechanism: monitoring-tag read rate collapses with contention...
    assert results[30][1] < 0.4 * results[0][1]
    # ...yet accuracy degrades only gently.
    assert results[0][0] - results[30][0] < 0.08
