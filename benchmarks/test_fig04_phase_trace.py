"""Fig. 4 — raw phase values during the measurement.

    "Due to the channel frequency hopping, the phase values
    discontinuously changes when the reader hops to next channels, even
    when the tag is static."  (Section IV-A-3)

The benchmark regenerates the 25 s raw-phase trace and verifies the
signature the figure shows: small in-channel motion between consecutive
reads but wild jumps whenever the channel index changes.
"""

import numpy as np

from repro.units import TWO_PI
from repro.viz import sparkline

from conftest import print_reproduction


def analyse_phase_trace(capture):
    reports = capture.reports_for_user(1)
    same_channel, cross_channel = [], []
    for prev, cur in zip(reports, reports[1:]):
        delta = abs(cur.phase_rad - prev.phase_rad)
        delta = min(delta, TWO_PI - delta)
        if prev.channel_index == cur.channel_index:
            same_channel.append(delta)
        else:
            cross_channel.append(delta)
    return reports, np.asarray(same_channel), np.asarray(cross_channel)


def test_fig04_phase_trace(benchmark, capsys, characterisation_capture):
    reports, same_ch, cross_ch = benchmark.pedantic(
        analyse_phase_trace, args=(characterisation_capture,),
        rounds=1, iterations=1,
    )
    phases = np.array([r.phase_rad for r in reports])
    rows = [
        ("reports", len(reports)),
        ("phase range", f"{phases.min():.2f} .. {phases.max():.2f} rad"),
        ("median |delta| same channel", f"{np.median(same_ch):.4f} rad"),
        ("median |delta| across hop", f"{np.median(cross_ch):.4f} rad"),
        ("hop / in-channel ratio",
         f"{np.median(cross_ch) / max(np.median(same_ch), 1e-9):.1f}x"),
        ("raw phase trace", sparkline(phases[:240], width=60)),
    ]
    print_reproduction(
        capsys, "Fig. 4: raw phase values (hop discontinuities)",
        ("quantity", "reproduced"), rows,
        paper_note="phase jumps at every 0.2 s channel hop, even for a quasi-static tag",
    )
    # In-channel phase moves a little (breathing + noise)...
    assert np.median(same_ch) < 0.3
    # ...while hopping scrambles it: typical jump much larger.
    assert np.median(cross_ch) > 3.0 * np.median(same_ch)
    # Raw phase uses the reader's full [0, 2*pi) reporting range.
    assert phases.max() - phases.min() > 0.8 * TWO_PI
