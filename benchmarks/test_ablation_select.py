"""Ablation — Gen2 Select filtering vs post-hoc ID filtering (extension).

The paper handles contending tags by reading everything and discarding
non-monitoring EPCs in software (Fig. 14), paying the read-rate dilution
the MAC imposes.  The C1G2 protocol's Select command can exclude item
tags from inventory altogether.  This bench quantifies the difference
under the paper's worst case (30 contending tags): per-tag read rate,
accuracy, and the airtime spent on item tags.
"""

import numpy as np

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.epc import select_user

from conftest import print_reproduction

CONTENDING = 30
DURATION_S = 60.0


def run_both():
    out = {}
    for label, select in (("ID filter (paper)", None),
                          ("Select filter (C1G2)", select_user(1))):
        accuracies, monitor_rates, wasted = [], [], []
        for seed in (0, 1):
            scenario = Scenario([Subject(
                user_id=1, distance_m=4.0,
                breathing=MetronomeBreathing(10.0), sway_seed=seed,
            )]).with_contending_tags(CONTENDING, seed=seed)
            result = run_scenario(scenario, duration_s=DURATION_S,
                                  seed=1001 + seed, select=select)
            monitor = result.reports_for_user(1)
            estimates = TagBreathe(user_ids={1}).process(result.reports)
            accuracies.append(
                breathing_rate_accuracy(estimates[1].rate_bpm, 10.0)
                if 1 in estimates else 0.0
            )
            monitor_rates.append(len(monitor) / DURATION_S)
            wasted.append((len(result.reports) - len(monitor)) / DURATION_S)
        out[label] = (
            float(np.mean(accuracies)),
            float(np.mean(monitor_rates)),
            float(np.mean(wasted)),
        )
    return out


def test_ablation_select(benchmark, capsys):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        (label, f"{acc * 100:.1f}%", f"{rate:.0f}/s", f"{wasted:.0f}/s")
        for label, (acc, rate, wasted) in results.items()
    ]
    print_reproduction(
        capsys, f"Ablation: Select vs ID filtering ({CONTENDING} contending tags)",
        ("strategy", "accuracy", "monitor reads", "item reads"), rows,
        paper_note="extension: Select excludes item tags at the MAC, "
                   "recovering the full monitoring read rate",
    )
    id_filter = results["ID filter (paper)"]
    select = results["Select filter (C1G2)"]
    # Select restores several times the monitoring read rate...
    assert select[1] > 2.5 * id_filter[1]
    # ...and wastes no airtime on item tags.
    assert select[2] == 0.0
    assert id_filter[2] > 20.0
    # Both strategies clear the paper's accuracy bar here.
    assert id_filter[0] > 0.9
    assert select[0] > 0.9