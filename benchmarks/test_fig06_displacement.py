"""Fig. 6 — displacement values during the measurement.

    "We normalize the displacement values and plot the results ... the
    displacement values are not influenced by the frequency hopping and
    track the periodic body movement mainly due to breathing."

The benchmark runs the preprocessing stage (Eq. 3/4 + normalisation) on
the characterisation capture and verifies the two claims: hop immunity
(no discontinuities at hop instants) and periodicity at the breathing
rate.
"""

import numpy as np

from repro import TagBreathe
from repro.viz import sparkline

from conftest import print_reproduction


def build_displacement_track(capture):
    pipeline = TagBreathe(user_ids={1})
    track = pipeline.fused_track(1, capture.reports_for_user(1)).normalize()
    freqs = np.fft.rfftfreq(len(track), d=track.times[1] - track.times[0])
    spectrum = np.abs(np.fft.rfft(track.values))
    return track, freqs, spectrum


def test_fig06_displacement(benchmark, capsys, characterisation_capture):
    track, freqs, spectrum = benchmark.pedantic(
        build_displacement_track, args=(characterisation_capture,),
        rounds=1, iterations=1,
    )
    band = (freqs >= 0.08) & (freqs <= 0.67)
    peak_hz = freqs[band][int(np.argmax(spectrum[band]))]
    # Hop immunity: measure the track's step size at hop boundaries vs
    # elsewhere — a hop-contaminated track would jump at 0.2 s multiples.
    steps = np.abs(np.diff(track.values))
    rows = [
        ("track samples", len(track)),
        ("span", f"{track.duration:.1f} s"),
        ("normalised range", f"{track.values.min():.2f} .. {track.values.max():.2f}"),
        ("spectral peak", f"{peak_hz * 60:.1f} bpm (truth 12.0)"),
        ("max step", f"{steps.max():.3f} (normalised units)"),
        ("track", sparkline(track.values, width=60)),
    ]
    print_reproduction(
        capsys, "Fig. 6: displacement values (hop-immune)",
        ("quantity", "reproduced"), rows,
        paper_note="smooth periodic track, unaffected by channel hopping",
    )
    # Periodic at the breathing rate.
    assert abs(peak_hz - 0.2) < 0.04
    # Hop-immune: raw phase tears span the full 2*pi range (lambda/4 ~
    # 8 cm of apparent displacement); the preprocessed track's residual
    # steps (per-channel multipath mismatch) stay an order of magnitude
    # below the full breathing swing of the normalised plot.
    assert steps.max() < 1.0
    assert float(np.median(steps)) < 0.1
    # Normalised as the paper plots it.
    assert np.abs(track.values).max() <= 1.0 + 1e-9
