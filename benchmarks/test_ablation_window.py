"""Ablation — analysis window length (accuracy vs latency trade-off).

The paper's characterisation uses a 25 s window; its accuracy evaluation
computes averages over two-minute trials.  This ablation quantifies the
trade-off a realtime deployment faces: a longer window makes both the
FFT coarse-search and the crossing statistics more reliable but delays
the first estimate; a window too short cannot buffer Eq. (5)'s seven
crossings at slow rates at all.
"""

import numpy as np

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject

from conftest import print_reproduction

WINDOWS_S = (15.0, 25.0, 40.0, 60.0)
RATES = (8.0, 12.0, 18.0)


def sweep_windows():
    captures = []
    for i, rate in enumerate(RATES):
        scenario = Scenario([Subject(user_id=1, distance_m=4.0,
                                     breathing=MetronomeBreathing(rate),
                                     sway_seed=i)])
        captures.append((rate, run_scenario(scenario, duration_s=65.0,
                                            seed=811 + i)))
    out = {}
    for window in WINDOWS_S:
        errors, failures = [], 0
        for rate, result in captures:
            pipeline = TagBreathe(user_ids={1})
            pipeline.feed_many(result.reports)
            try:
                estimate = pipeline.estimate_user(1, window_s=window)
                errors.append(abs(estimate.rate_bpm - rate))
            except Exception:
                failures += 1
        out[window] = (
            float(np.mean(errors)) if errors else float("nan"),
            failures,
        )
    return out


def test_ablation_window(benchmark, capsys):
    results = benchmark.pedantic(sweep_windows, rounds=1, iterations=1)
    rows = [
        (f"{w:.0f} s" + (" (paper char.)" if w == 25.0 else ""),
         f"{results[w][0]:.2f} bpm" if not np.isnan(results[w][0]) else "-",
         results[w][1])
        for w in WINDOWS_S
    ]
    print_reproduction(
        capsys, "Ablation: analysis window length",
        ("window", "mean |error|", "failures"), rows,
        paper_note="25 s suffices for adult rates; longer windows refine, "
                   "shorter ones cannot buffer 7 crossings at 8 bpm",
    )
    # The paper's 25 s window estimates what it can estimate accurately;
    # the slowest Table I rates are marginal there (8 bpm needs ~26 s to
    # buffer 7 crossings), which is exactly the latency trade-off.
    assert results[25.0][0] < 1.5
    assert results[25.0][1] <= 1
    # 40 s and longer hold the whole adult range with no failures.
    assert results[40.0][1] == 0
    assert results[60.0][1] == 0
    assert results[60.0][0] <= results[40.0][0] + 0.3
    # Shorter windows fail more often than longer ones.
    assert results[15.0][1] >= results[25.0][1] >= results[40.0][1]
