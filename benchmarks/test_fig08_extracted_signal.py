"""Fig. 8 — the extracted breathing signal after the low-pass filter.

    "we see that noise is successfully filtered out. The extracted signal
    exhibits clear trends and we can apply time domain analysis ... we
    detect the zero crossings ... we buffer 7 zero crossings which
    correspond to 3 breaths"

The benchmark runs the full extraction stage on the characterisation
capture and verifies the figure's content: a clean band-limited signal,
zero crossings at half-cycle spacing, and an Eq. (5) rate matching the
metronome.
"""

import numpy as np

from repro import TagBreathe
from repro.viz import sparkline

from conftest import print_reproduction


def extract(capture):
    pipeline = TagBreathe(user_ids={1})
    estimate = pipeline.process(capture.reports_for_user(1))[1]
    return estimate


def test_fig08_extracted_signal(benchmark, capsys, characterisation_capture):
    estimate = benchmark.pedantic(
        extract, args=(characterisation_capture,), rounds=1, iterations=1,
    )
    signal = estimate.estimate.signal
    crossings = estimate.estimate.crossings
    spacings = np.diff(crossings)
    rate_hz = 1.0 / (signal.times[1] - signal.times[0])
    freqs = np.fft.rfftfreq(len(signal), d=1.0 / rate_hz)
    spectrum = np.abs(np.fft.rfft(signal.values))
    out_of_band = spectrum[freqs > 0.67]
    rows = [
        ("crossings found", len(crossings)),
        ("median crossing spacing", f"{np.median(spacings):.2f} s "
                                    f"(half-cycle truth 2.50 s)"),
        ("Eq.5 rate (M=7)", f"{estimate.rate_bpm:.2f} bpm (truth 12.0)"),
        ("out-of-band residue", f"{out_of_band.max() / spectrum.max() * 100:.2f}% of peak"),
        ("signal", sparkline(signal.values, width=60)),
    ]
    print_reproduction(
        capsys, "Fig. 8: extracted breathing signal + zero crossings",
        ("quantity", "reproduced"), rows,
        paper_note="noise filtered out; zero crossings drive the Eq. (5) rate",
    )
    # Noise above the cutoff removed.
    assert out_of_band.max() < 0.05 * spectrum.max()
    # ~2 crossings per 5 s breath over 25 s -> about 10.
    assert 8 <= len(crossings) <= 12
    # Crossings at half-cycle spacing.
    assert np.median(spacings) == np.float64(np.median(spacings))
    assert abs(np.median(spacings) - 2.5) < 0.4
    # Eq. (5) beats the 2.4 bpm FFT resolution of the same window.
    assert abs(estimate.rate_bpm - 12.0) < 1.0
