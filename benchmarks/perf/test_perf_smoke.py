"""CI smoke test for the perf harness.

Runs the abbreviated benchmark grid and checks the *harness* — schema,
consistency between the two synthesis paths, JSON serialisability.  It
deliberately asserts nothing about absolute times or speedup ratios:
CI machines are noisy and shared, so performance regressions are judged
from the uploaded ``BENCH_*.json`` artifacts, not pass/fail here.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import QUICK_GRID, run_benchmarks


@pytest.fixture(scope="module")
def bench_results(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    results = run_benchmarks(quick=True, seed=0, out_dir=str(out))
    return results, out


def test_simulation_suite_schema(bench_results):
    results, _out = bench_results
    sim = results["simulation"]
    assert sim["quick"] is True
    assert len(sim["cases"]) == len(QUICK_GRID)
    for case in sim["cases"]:
        assert case["reports"] > 0
        assert case["scalar"]["seconds"] > 0
        assert case["vectorized"]["seconds"] > 0
        assert case["speedup"] > 0
    assert sim["headline"]["users"] == max(u for u, _ in QUICK_GRID)


def test_pipeline_suite_schema(bench_results):
    results, _out = bench_results
    pipe = results["pipeline"]
    assert len(pipe["cases"]) == len(QUICK_GRID)
    for case in pipe["cases"]:
        assert case["reports"] > 0
        assert case["process_s"] > 0
        assert case["users_estimated"] >= 1


def test_streaming_batched_feed_schema(bench_results):
    results, _out = bench_results
    streaming = results["pipeline"]["streaming"]
    for case in streaming["cases"]:
        assert case["feed_batch_s"] > 0
        assert case["feed_batch_reports_per_s"] > 0
        # Bit-exactness is a correctness contract, not a timing — it
        # must hold on any machine, noisy or not.
        assert case["batch_state_equal"] is True
        assert case["batch_max_rate_diff_bpm"] == 0.0
    assert streaming["headline"]["batch_state_equal"] is True


def test_wire_suite_schema(bench_results):
    results, _out = bench_results
    wire = results["pipeline"]["wire"]
    modes = {case["mode"] for case in wire["cases"]}
    assert modes == {"column", "json"}
    for case in wire["cases"]:
        assert case["acked"] == case["sent"] == case["reports"]
        assert case["bytes_per_report"] > 0
    # Frame sizes are format properties, machine-independent: 48 data
    # bytes per report in a column frame vs ~200 of JSON.
    assert wire["headline"]["bytes_ratio"] >= 2.0
    assert wire["headline"]["acked_equal_sent"] is True


def test_bench_files_written_and_json_clean(bench_results):
    _results, out = bench_results
    for name in ("BENCH_simulation.json", "BENCH_pipeline.json"):
        payload = json.loads((out / name).read_text())
        assert payload["cases"]
        assert payload["machine"]["cpus"] >= 1
