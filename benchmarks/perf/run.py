"""Standalone entry point for the perf benchmark suite.

Equivalent to ``python -m repro bench``; kept here so the perf harness is
discoverable next to the figure benchmarks::

    PYTHONPATH=src python benchmarks/perf/run.py [--quick]

Writes ``BENCH_simulation.json`` and ``BENCH_pipeline.json`` to the
repository root (the current directory).
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
