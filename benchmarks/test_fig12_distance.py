"""Fig. 12 — breathing rate accuracy at different distances.

    "the accuracy of breathing rate measurement is 98.0% at 1 m. Although
    the accuracy decreases slightly as the distance increases, the
    experiment results show that the accuracy remains higher than 90.0%
    throughout the experiments."

Shape asserted: high accuracy at 1 m, a (weakly) declining trend, and
>90 % at every distance in the 1-6 m Table I range.
"""

import numpy as np

from conftest import mean_accuracy, print_reproduction, single_user_scenario

DISTANCES_M = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)

#: Approximate values read off the paper's Fig. 12.
PAPER_ACCURACY = {1.0: 0.98, 2.0: 0.97, 3.0: 0.96, 4.0: 0.95, 5.0: 0.93, 6.0: 0.91}


def sweep_distances():
    accuracies = {}
    for distance in DISTANCES_M:
        accuracies[distance] = mean_accuracy(
            lambda rate, seed, d=distance: single_user_scenario(
                distance_m=d, rate_bpm=rate, seed=seed,
            ),
        )
    return accuracies


def test_fig12_distance(benchmark, capsys):
    accuracies = benchmark.pedantic(sweep_distances, rounds=1, iterations=1)
    rows = [
        (f"{d:.0f} m", f"{accuracies[d] * 100:.1f}%", f"{PAPER_ACCURACY[d] * 100:.0f}%")
        for d in DISTANCES_M
    ]
    print_reproduction(
        capsys, "Fig. 12: accuracy vs distance",
        ("distance", "reproduced", "paper"), rows,
        paper_note="98% at 1 m, slight decline, >90% throughout",
    )
    # >90% at every distance (the paper's headline claim).
    assert all(acc > 0.90 for acc in accuracies.values())
    # High accuracy at close range.
    assert accuracies[1.0] > 0.95
    # Declining trend: far half no better than near half.
    near = np.mean([accuracies[d] for d in (1.0, 2.0, 3.0)])
    far = np.mean([accuracies[d] for d in (4.0, 5.0, 6.0)])
    assert far <= near + 0.01
