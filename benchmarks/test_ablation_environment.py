"""Ablation — deployment environment (extension beyond the paper).

The paper evaluates in one office.  This extension bench sweeps the
bundled environment presets — anechoic reference, home bedroom, the
paper's office, a busy hospital ward — quantifying how moving-clutter
multipath (the error source behind Fig. 12's slope) sets the accuracy
ceiling per deployment.
"""

import numpy as np

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.sim import ENVIRONMENTS

from conftest import print_reproduction

DISTANCE_M = 5.0  # far range, where environments separate


def sweep_environments():
    out = {}
    for name, env in ENVIRONMENTS.items():
        accuracies = []
        for seed, rate in ((0, 9.0), (1, 15.0)):
            scenario = Scenario([Subject(user_id=1, distance_m=DISTANCE_M,
                                         breathing=MetronomeBreathing(rate),
                                         sway_seed=seed)])
            result = run_scenario(
                scenario, duration_s=60.0, seed=901 + seed,
                link_budget=env.link_budget(),
                multipath=env.multipath(rng=np.random.default_rng(seed)),
            )
            estimates = TagBreathe(user_ids={1}).process(result.reports)
            accuracies.append(
                breathing_rate_accuracy(estimates[1].rate_bpm, rate)
                if 1 in estimates else 0.0
            )
        out[name] = float(np.mean(accuracies))
    return out


def test_ablation_environment(benchmark, capsys):
    accuracies = benchmark.pedantic(sweep_environments, rounds=1, iterations=1)
    order = sorted(accuracies, key=accuracies.get, reverse=True)
    rows = [
        (name, f"{accuracies[name] * 100:.1f}%",
         ENVIRONMENTS[name].description)
        for name in order
    ]
    print_reproduction(
        capsys, f"Ablation: environment at {DISTANCE_M:.0f} m",
        ("environment", "accuracy", "description"), rows,
        paper_note="extension: the office preset reproduces the paper's venue",
    )
    # The clean reference bounds every realistic environment.
    assert accuracies["anechoic"] >= max(
        accuracies[n] for n in ("office", "ward")
    ) - 0.01
    # Every preset remains usable at range.
    assert all(acc > 0.75 for acc in accuracies.values())
