"""Ablation — multi-antenna coverage and optimal-antenna selection.

Section IV-D-3 describes but never plots this: multiple round-robin
antennas restore coverage for users the single antenna cannot see (LOS
blocked past 90 degrees), and each user is served by the antenna with the
best data quality.  The bench quantifies it with two opposite-facing
users and one vs two antennas.
"""

import numpy as np

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.config import ReaderConfig
from repro.reader import Antenna

from conftest import print_reproduction

DURATION_S = 60.0


def build_scenario(seed):
    return Scenario([
        Subject(user_id=1, distance_m=3.0, lateral_offset_m=-0.8,
                orientation_deg=0.0, breathing=MetronomeBreathing(11.0),
                sway_seed=seed),
        Subject(user_id=2, distance_m=3.0, lateral_offset_m=0.8,
                orientation_deg=180.0, breathing=MetronomeBreathing(17.0),
                sway_seed=seed + 10),
    ])


def run_configuration(antennas, seed):
    scenario = build_scenario(seed)
    config = ReaderConfig(num_antennas=len(antennas))
    result = run_scenario(scenario, duration_s=DURATION_S, seed=1100 + seed,
                          reader_config=config, antennas=antennas)
    estimates, _ = TagBreathe(user_ids={1, 2}).process_detailed(result.reports)
    accuracies = {}
    for uid, truth in ((1, 11.0), (2, 17.0)):
        accuracies[uid] = (
            breathing_rate_accuracy(estimates[uid].rate_bpm, truth)
            if uid in estimates else 0.0
        )
    ports = {uid: estimates[uid].antenna_port for uid in estimates}
    return accuracies, ports


def sweep_antennas():
    wall_a = Antenna(port=1, position_m=(0.0, 0.0, 1.0), boresight=(1, 0, 0))
    wall_b = Antenna(port=2, position_m=(6.0, 0.0, 1.0), boresight=(-1, 0, 0))
    out = {}
    for label, antennas in (("1 antenna", [wall_a]),
                            ("2 antennas", [wall_a, wall_b])):
        per_seed = [run_configuration(antennas, seed) for seed in (0, 1)]
        out[label] = {
            "facing": float(np.mean([acc[1] for acc, _ in per_seed])),
            "away": float(np.mean([acc[2] for acc, _ in per_seed])),
            "ports": per_seed[0][1],
        }
    return out


def test_ablation_antennas(benchmark, capsys):
    results = benchmark.pedantic(sweep_antennas, rounds=1, iterations=1)
    rows = [
        (label,
         f"{values['facing'] * 100:.1f}%",
         f"{values['away'] * 100:.1f}%",
         str(values["ports"]))
        for label, values in results.items()
    ]
    print_reproduction(
        capsys, "Ablation: multi-antenna coverage (two opposite-facing users)",
        ("configuration", "facing user", "away-facing user", "selected ports"),
        rows,
        paper_note="Section IV-D-3: round-robin antennas restore blocked "
                   "users; each user served by its optimal antenna",
    )
    single = results["1 antenna"]
    double = results["2 antennas"]
    # One antenna: the facing user works, the away-facing user is lost.
    assert single["facing"] > 0.9
    assert single["away"] == 0.0
    # Two antennas: both recovered, each via its own port.
    assert double["facing"] > 0.9
    assert double["away"] > 0.9
    assert double["ports"].get(1) == 1
    assert double["ports"].get(2) == 2
