"""Fig. 3 — raw Doppler frequency shift during the measurement.

The paper observes that raw Doppler "is noisy" yet its envelope "roughly
tracks periodic changes": the intra-packet phase rotation from
breathing-speed motion is tiny, so per-report noise dominates.  The
benchmark quantifies exactly that: per-report SNR far below 1, yet the
averaged/smoothed trace retains breathing-band energy above chance.
"""

import numpy as np

from repro.rf.doppler import doppler_shift_from_velocity
from repro.streams import TimeSeries
from repro.streams.resample import bin_mean
from repro.viz import sparkline

from conftest import print_reproduction


def build_doppler_trace(capture):
    reports = capture.reports_for_user(1)
    times = [r.timestamp_s for r in reports]
    doppler = [r.doppler_hz for r in reports]
    keep = np.concatenate([[True], np.diff(times) > 0])
    series = TimeSeries(np.asarray(times)[keep], np.asarray(doppler)[keep])
    smoothed = bin_mean(series, 0.5)
    return series, smoothed


def test_fig03_doppler_trace(benchmark, capsys, characterisation_capture):
    series, smoothed = benchmark.pedantic(
        build_doppler_trace, args=(characterisation_capture,),
        rounds=1, iterations=1,
    )
    # The largest Doppler a 12 bpm, 10 mm breath can produce under Eq. (2).
    peak_velocity = 0.010 * np.pi * 12.0 / 60.0
    max_true = doppler_shift_from_velocity(peak_velocity, 0.3276)
    raw_std = float(series.values.std())
    rows = [
        ("reports", len(series)),
        ("raw std", f"{raw_std:.2f} Hz"),
        ("max true Doppler", f"{max_true:.4f} Hz"),
        ("per-report SNR", f"{max_true / raw_std:.4f}"),
        ("smoothed trace", sparkline(smoothed.values, width=60)),
    ]
    print_reproduction(
        capsys, "Fig. 3: raw Doppler frequency shift",
        ("quantity", "reproduced"), rows,
        paper_note="'although the raw Doppler frequency shifts are noisy, we "
                   "can still observe some periodic changes'",
    )
    # The paper's central observation: raw Doppler is unreliable because
    # per-packet phase rotation is small at breathing speeds.
    assert raw_std > 5.0 * max_true
    # But it is unbiased: the mean sits near zero (no net body motion).
    assert abs(series.values.mean()) < raw_std
