"""Fig. 5 — channel hopping during the measurement.

    "the reader hops among 10 frequency channels and resides in each
    channel for around 0.2 s"

The benchmark reconstructs the channel-index-versus-time staircase from
the capture's reports and verifies the dwell time, the channel count, and
the uniform coverage the figure shows.
"""

import numpy as np

from conftest import print_reproduction


def analyse_hopping(capture):
    reports = capture.reports
    dwells = []
    current_channel = reports[0].channel_index
    dwell_start = reports[0].timestamp_s
    last_time = dwell_start
    for report in reports[1:]:
        if report.channel_index != current_channel:
            dwells.append((current_channel, last_time - dwell_start))
            current_channel = report.channel_index
            dwell_start = report.timestamp_s
        last_time = report.timestamp_s
    channels = sorted({r.channel_index for r in reports})
    visits = {ch: sum(1 for c, _ in dwells if c == ch) for ch in channels}
    durations = np.array([d for _, d in dwells if d > 0.05])
    return channels, visits, durations


def test_fig05_channel_hopping(benchmark, capsys, characterisation_capture):
    channels, visits, durations = benchmark.pedantic(
        analyse_hopping, args=(characterisation_capture,), rounds=1, iterations=1,
    )
    rows = [
        ("channels observed", len(channels)),
        ("channel indices", f"{channels[0]} .. {channels[-1]}"),
        ("median dwell", f"{np.median(durations):.3f} s"),
        ("dwell IQR", f"{np.percentile(durations, 25):.3f} .. "
                      f"{np.percentile(durations, 75):.3f} s"),
        ("visits per channel", f"{min(visits.values())} .. {max(visits.values())}"),
    ]
    print_reproduction(
        capsys, "Fig. 5: channel hopping",
        ("quantity", "reproduced"), rows,
        paper_note="10 channels, ~0.2 s residency each, uniformly visited",
    )
    assert len(channels) == 10
    # Observed dwell (clipped by read timing) sits near the 0.2 s residency.
    assert 0.12 <= float(np.median(durations)) <= 0.22
    # Every channel visited repeatedly over 25 s (~12.5 sweeps).
    assert min(visits.values()) >= 8
