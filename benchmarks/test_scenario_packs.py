"""The scenario-pack handbook numbers, regenerated.

No figure in the paper corresponds to these — the paper's evaluation
(Section VI) covers still, metronome-paced subjects.  The packs stress
exactly what that protocol leaves out: gross motion artifacts, apnea
holds, a crowded ward under heavy phase noise, and an overnight run.
The published reference numbers live under the ``"scenarios"`` key of
``BENCH_simulation.json`` (full grid) and are gated absolutely by
``tools/check_bench_regression.py``; this benchmark regenerates the
quick grid and asserts the same machine-independent contracts:

* motion packs: **zero** confident-but-wrong estimates during injected
  motion, zero-ish false/missed alarm rates;
* ward: ``auto`` holds accuracy >= 0.85 through the RSS fallback while
  the ``phase_only`` control collapses below 0.60;
* event packs: clean-tick accuracy >= 0.90.
"""

from repro.bench import run_scenario_pack_benchmark

from conftest import print_reproduction


def test_scenario_packs(benchmark, capsys):
    scenarios = benchmark.pedantic(
        lambda: run_scenario_pack_benchmark(quick=True, seed=0),
        rounds=1, iterations=1)
    rows = []
    for name, pack in scenarios["packs"].items():
        for case_name, case in pack["cases"].items():
            rows.append((
                name, case_name, case["ticks"],
                f"{case['mean_accuracy']:.3f}",
                f"{case['mean_accuracy_clean']:.3f}"
                if case["mean_accuracy_clean"] is not None else "-",
                case["confident_wrong_in_motion"],
                f"{case['false_alarm_rate']:.3f}",
                f"{case['missed_alarm_rate']:.3f}",
            ))
    print_reproduction(
        capsys, "Scenario packs (quick grid)",
        ("pack", "engine", "ticks", "accuracy", "clean-acc",
         "conf-wrong(motion)", "false-alarm", "missed-alarm"), rows,
        paper_note="no counterpart — regimes the paper's still-subject "
                   "protocol never exercised",
    )
    packs = scenarios["packs"]
    for name, pack in packs.items():
        for case_name, case in pack["cases"].items():
            tag = f"{name}/{case_name}"
            assert case["confident_wrong_in_motion"] == 0, tag
            assert case["false_alarm_rate"] <= 0.05, tag
            assert case["missed_alarm_rate"] <= 0.20, tag
    ward = packs["ward"]["cases"]
    assert ward["auto"]["mean_accuracy"] >= 0.85
    assert ward["phase_only"]["mean_accuracy"] < 0.60
    assert ward["auto"]["estimator_ticks"].get("rss", 0) > 0
    for name in ("motion_bursts", "apnea_sigh", "overnight"):
        assert packs[name]["cases"]["auto"]["mean_accuracy_clean"] >= 0.90, name
