"""Ablation — the zero-crossing buffer M of Eq. (5).

The paper buffers M = 7 crossings ("correspond to 3 breaths") "to enhance
the robustness".  The ablation sweeps M and shows the trade-off: small M
reacts fast but jitters; large M smooths but lags (and needs more data
before the first estimate).
"""

import numpy as np

from repro import PipelineConfig, Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject

from conftest import print_reproduction

M_VALUES = (3, 5, 7, 9, 11)
TRUE_RATE = 12.0


def sweep_m():
    scenario = Scenario([Subject(user_id=1, distance_m=4.0,
                                 breathing=MetronomeBreathing(TRUE_RATE),
                                 sway_seed=5)])
    result = run_scenario(scenario, duration_s=60.0, seed=401)
    out = {}
    for m in M_VALUES:
        config = PipelineConfig(zero_crossing_buffer=m)
        estimates = TagBreathe(user_ids={1}, config=config).process(result.reports)
        series = estimates[1].estimate.rate_series
        out[m] = (
            abs(float(np.median(series.values)) - TRUE_RATE),
            float(np.std(series.values)),
            len(series),
        )
    return out


def test_ablation_m(benchmark, capsys):
    results = benchmark.pedantic(sweep_m, rounds=1, iterations=1)
    rows = [
        (f"M={m}" + (" (paper)" if m == 7 else ""),
         f"{results[m][0]:.2f} bpm",
         f"{results[m][1]:.2f} bpm",
         results[m][2])
        for m in M_VALUES
    ]
    print_reproduction(
        capsys, "Ablation: Eq. (5) crossing buffer M",
        ("buffer", "|median err|", "instant-rate std", "estimates"), rows,
        paper_note="M=7 (3 breaths) balances robustness and latency",
    )
    # Larger buffers smooth the instantaneous series (monotone trend).
    assert results[11][1] <= results[3][1] + 1e-9
    # The paper's M=7 delivers an accurate median on this capture.
    assert results[7][0] < 1.0
    # More buffering means fewer (later) estimates from the same window.
    assert results[11][2] <= results[3][2]
