"""Fig. 7 — FFT of the displacement values.

    "the peak of the FFT output corresponds to the breathing rate ...
    since the window size is 25 seconds, the frequency resolution is
    0.04 Hz which corresponds to 2.4 breaths per minute."

The benchmark regenerates the spectrum, confirms the peak sits at the
breathing rate, and reproduces the resolution-pitfall arithmetic that
motivates the zero-crossing estimator.
"""

import numpy as np
import pytest

from repro import TagBreathe, fft_peak_rate_bpm
from repro.core.spectral import fft_spectrum, frequency_resolution_bpm

from conftest import print_reproduction


def build_spectrum(capture):
    pipeline = TagBreathe(user_ids={1})
    track = pipeline.fused_track(1, capture.reports_for_user(1))
    freqs, spectrum = fft_spectrum(track)
    peak_bpm = fft_peak_rate_bpm(track)
    return track, freqs, spectrum, peak_bpm


def test_fig07_fft(benchmark, capsys, characterisation_capture):
    track, freqs, spectrum, peak_bpm = benchmark.pedantic(
        build_spectrum, args=(characterisation_capture,), rounds=1, iterations=1,
    )
    resolution = frequency_resolution_bpm(track.duration)
    band = (freqs >= 0.08) & (freqs <= 0.67)
    in_band = spectrum[band]
    prominence = in_band.max() / np.median(in_band)
    rows = [
        ("window", f"{track.duration:.1f} s"),
        ("bin width", f"{freqs[1] - freqs[0]:.4f} Hz"),
        ("FFT-peak estimate", f"{peak_bpm:.2f} bpm (truth 12.0)"),
        ("rate resolution", f"{resolution:.2f} bpm"),
        ("peak prominence", f"{prominence:.1f}x median in-band bin"),
    ]
    print_reproduction(
        capsys, "Fig. 7: FFT of displacement values",
        ("quantity", "reproduced"), rows,
        paper_note="peak at the breathing rate; 25 s window -> 0.04 Hz -> 2.4 bpm resolution",
    )
    # The paper's resolution arithmetic for a ~25 s window.
    assert resolution == pytest.approx(60.0 / track.duration)
    assert 2.2 <= resolution <= 2.6
    # The peak lands on the breathing rate within one resolution cell.
    assert abs(peak_bpm - 12.0) <= resolution
    # And it is a real peak, not noise.
    assert prominence > 3.0
