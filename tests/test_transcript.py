"""Tests for command-level inventory transcripts (repro.epc.transcript)."""

import numpy as np
import pytest

from repro.epc import (
    EPC96,
    Gen2Config,
    QueryCommand,
    TranscriptBuilder,
    airtime_of_successful_slot,
    decode_ack,
    decode_query_rep,
    parse_epc_reply,
)
from repro.errors import EPCError


def make_builder(seed=0, **kwargs):
    return TranscriptBuilder(rng=np.random.default_rng(seed), **kwargs)


class TestTranscriptBuilder:
    def test_single_read_round(self):
        epc = EPC96.from_user_tag(7, 2)
        transcript = make_builder().build_round(0, [("read", epc)])
        assert transcript.reads() == [epc]
        exchange = transcript.exchanges[0]
        assert exchange.outcome == "read"
        # Query, then ACK, from the reader; RN16 + EPC reply from the tag.
        assert len(exchange.reader_frames) == 2
        assert len(exchange.tag_frames) == 2

    def test_frames_decode_consistently(self):
        """Every frame in the transcript is decodable and cross-consistent."""
        epc = EPC96.from_user_tag(3, 1)
        transcript = make_builder().build_round(
            2, [("empty", None), ("read", epc), ("collision", None)]
        )
        read_exchange = transcript.exchanges[1]
        # The reader's ACK echoes the tag's RN16.
        rn16 = int.from_bytes(read_exchange.tag_frames[0], "big")
        assert decode_ack(read_exchange.reader_frames[1]) == rn16
        # The tag's EPC reply CRC-verifies and carries the right EPC.
        recovered = parse_epc_reply(read_exchange.tag_frames[1])
        assert int.from_bytes(recovered, "big") == epc.value
        # Non-first slots open with a QueryRep in the builder's session.
        assert decode_query_rep(transcript.exchanges[1].reader_frames[0]) == 0

    def test_query_encodes_q(self):
        transcript = make_builder().build_round(5, [("empty", None)])
        assert transcript.query.q == 5
        assert QueryCommand.decode(transcript.query.encode()).q == 5

    def test_empty_slot_is_cheapest(self):
        # Slot 0 carries the long Query command, so compare slots 1+
        # which all open with the same 4-bit QueryRep.
        epc = EPC96.from_user_tag(1, 1)
        transcript = make_builder().build_round(
            2, [("empty", None), ("empty", None), ("collision", None),
                ("read", epc)]
        )
        _, empty, collision, read = [e.airtime_s for e in transcript.exchanges]
        assert empty < collision < read

    def test_airtime_positive_and_summed(self):
        epc = EPC96.from_user_tag(1, 1)
        transcript = make_builder().build_round(1, [("read", epc), ("empty", None)])
        assert transcript.total_airtime_s == pytest.approx(
            sum(e.airtime_s for e in transcript.exchanges)
        )
        assert transcript.frame_count() >= 4

    def test_read_without_epc_rejected(self):
        with pytest.raises(EPCError):
            make_builder().build_round(0, [("read", None)])

    def test_unknown_outcome_rejected(self):
        with pytest.raises(EPCError):
            make_builder().build_round(0, [("teleport", None)])

    def test_validation(self):
        with pytest.raises(EPCError):
            TranscriptBuilder(forward_rate_bps=0)
        with pytest.raises(EPCError):
            TranscriptBuilder(turnaround_s=-1.0)
        with pytest.raises(EPCError):
            TranscriptBuilder(session=5)

    def test_link_fail_costs_reply_airtime(self):
        epc = EPC96.from_user_tag(1, 1)
        builder = make_builder()
        ok = builder.build_round(0, [("read", epc)]).exchanges[0]
        failed = make_builder().build_round(0, [("link_fail", None)]).exchanges[0]
        # A garbled reply still burns comparable airtime.
        assert failed.airtime_s == pytest.approx(ok.airtime_s, rel=0.2)


class TestAirtimeCrossValidation:
    def test_successful_slot_matches_gen2_config_scale(self):
        """The MAC simulator's t_success_s must be within a small factor
        of the command-level first-principles airtime."""
        config = Gen2Config()
        first_principles = airtime_of_successful_slot()
        assert first_principles == pytest.approx(config.t_success_s, rel=1.0)
        # And in the right absolute ballpark (milliseconds).
        assert 0.5e-3 < first_principles < 10e-3

    def test_rates_scale_airtime(self):
        slow = TranscriptBuilder(forward_rate_bps=26_500,
                                 reverse_rate_bps=80_000,
                                 rng=np.random.default_rng(1))
        fast = TranscriptBuilder(rng=np.random.default_rng(1))
        assert airtime_of_successful_slot(slow) > airtime_of_successful_slot(fast)
