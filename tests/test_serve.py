"""Tests for the streaming ingest service (repro.serve).

Covers the wire protocol, shard backpressure/shed accounting, the
checkpoint → resume continuity contract, graceful drain, and the
end-to-end acceptance property: estimates streamed through the real TCP
service agree with batch ``TagBreathe.process()`` to within 0.1 bpm.
"""

import asyncio
import warnings

import pytest

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.errors import (
    CheckpointCorruptError,
    DegradedEstimateWarning,
    ProtocolError,
    ServeError,
    ServeTimeoutError,
)
from repro.serve import (
    BreathServer,
    FrameDecoder,
    IngestClient,
    SessionConfig,
    SessionShard,
    UserSession,
    encode_frame,
    load_checkpoint,
    negotiate_codec,
    previous_path,
    report_to_wire,
    save_checkpoint,
    watch_estimates,
)
from repro.serve.protocol import MAX_FRAME_BYTES, wire_to_report
from repro.sim.trace_io import load_trace_csv, save_trace_csv


def run(coro):
    """Run one coroutine to completion (the suite has no asyncio plugin)."""
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _quiet_degraded():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstimateWarning)
        yield


def make_capture(users=2, duration_s=40.0, seed=7):
    scenario = Scenario([
        Subject(user_id=uid, distance_m=3.0,
                lateral_offset_m=(uid - (users + 1) / 2) * 0.8,
                breathing=MetronomeBreathing(10.0 + 2.0 * uid),
                sway_seed=uid)
        for uid in range(1, users + 1)
    ])
    return run_scenario(scenario, duration_s=duration_s, seed=seed)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_roundtrip(self):
        message = {"type": "hello", "role": "ingest", "n": 3, "x": 1.5}
        decoder = FrameDecoder("json")
        assert decoder.feed(encode_frame(message)) == [message]

    def test_decoder_handles_byte_at_a_time(self):
        frame = encode_frame({"type": "bye"})
        decoder = FrameDecoder()
        messages = []
        for i in range(len(frame)):
            messages.extend(decoder.feed(frame[i:i + 1]))
        assert messages == [{"type": "bye"}]
        assert decoder.pending_bytes() == 0

    def test_decoder_handles_many_frames_per_feed(self):
        data = b"".join(encode_frame({"type": "report", "i": i})
                        for i in range(5))
        decoder = FrameDecoder()
        messages = decoder.feed(data)
        assert [m["i"] for m in messages] == [0, 1, 2, 3, 4]

    def test_oversized_length_prefix_rejected(self):
        import struct
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(struct.pack("!I", MAX_FRAME_BYTES + 1) + b"x")

    def test_non_object_payload_rejected(self):
        import struct
        payload = b"[1,2,3]"
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(struct.pack("!I", len(payload)) + payload)

    def test_report_wire_roundtrip(self):
        result = make_capture(users=1, duration_s=2.0)
        for report in result.reports[:20]:
            back = wire_to_report(report_to_wire(report))
            assert back == report

    def test_wire_to_report_validates(self):
        message = report_to_wire(make_capture(1, 2.0).reports[0])
        message["antenna_port"] = 0  # LLRP ports are 1-based
        with pytest.raises(ProtocolError):
            wire_to_report(message)
        with pytest.raises(ProtocolError):
            wire_to_report({"type": "report"})

    def test_negotiate_codec_falls_back_to_json(self):
        assert negotiate_codec("json") == "json"
        assert negotiate_codec("no-such-codec") == "json"
        assert negotiate_codec(None) == "json"


# ----------------------------------------------------------------------
# Streaming-state snapshot on the engine (serves the checkpoint layer)
# ----------------------------------------------------------------------
class TestEngineStreamingState:
    def test_buffered_reports_roundtrip(self):
        result = make_capture(users=2, duration_s=30.0)
        engine = TagBreathe(user_ids={1, 2})
        engine.feed_many(result.reports)
        snapshot = engine.buffered_reports()
        assert len(snapshot) == len(result.reports)
        restored = TagBreathe(user_ids={1, 2})
        restored.restore_streaming(snapshot,
                                   {"late": 3, "duplicate": 1})
        assert restored.feed_drop_counts["late"] == 3
        a = engine.estimate_user(1, window_s=30.0)
        b = restored.estimate_user(1, window_s=30.0)
        assert a.rate_bpm == pytest.approx(b.rate_bpm, abs=1e-12)

    def test_buffered_reports_per_user_filter(self):
        result = make_capture(users=2, duration_s=10.0)
        engine = TagBreathe(user_ids={1, 2})
        engine.feed_many(result.reports)
        only_one = engine.buffered_reports(1)
        assert only_one and all(r.user_id == 1 for r in only_one)

    def test_reset_streaming_zeroes_drop_counts(self):
        engine = TagBreathe()
        engine.restore_streaming([], {"late": 5})
        assert engine.feed_drop_counts["late"] == 5
        engine.reset_streaming()
        assert engine.dropped_report_count == 0


# ----------------------------------------------------------------------
# Backpressure and shedding
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_shed_oldest_first(self):
        result = make_capture(users=1, duration_s=10.0)
        reports = result.reports[:32]
        config = SessionConfig(queue_capacity=8)
        published = []

        async def scenario():
            shard = SessionShard(0, config, published.append)
            for report in reports:
                shard.submit(report)
            assert shard.backlog == 8
            return shard

        shard = run(scenario())
        assert shard.shed_count == len(reports) - 8
        assert shard.frames_in == len(reports)

    def test_shed_keeps_newest_reports(self):
        result = make_capture(users=1, duration_s=10.0)
        reports = result.reports[:20]
        config = SessionConfig(queue_capacity=4)

        async def scenario():
            shard = SessionShard(0, config, lambda m: None)
            for report in reports:
                shard.submit(report)
            kept = []
            while shard._queue.qsize():
                kept.append(shard._queue.get_nowait())
            return kept

        kept = run(scenario())
        assert kept == reports[-4:]

    def test_watermarks(self):
        config = SessionConfig(queue_capacity=100,
                               high_watermark=10, low_watermark=2)
        assert config.high == 10 and config.low == 2
        result = make_capture(users=1, duration_s=10.0)

        async def scenario():
            shard = SessionShard(0, config, lambda m: None)
            for report in result.reports[:10]:
                shard.submit(report)
            assert shard.over_high
            shard.start()
            await asyncio.wait_for(shard.wait_below_low(), timeout=5.0)
            assert shard.backlog <= config.high
            await shard.drain()
            await shard.stop()
            return shard.sessions

        sessions = run(scenario())
        assert 1 in sessions and sessions[1].reports_in == 10

    def test_default_watermarks_derive_from_capacity(self):
        config = SessionConfig(queue_capacity=100)
        assert config.high == 75
        assert config.low == 25

    def test_shed_counted_in_obs_metrics(self):
        from repro import obs
        result = make_capture(users=1, duration_s=5.0)
        config = SessionConfig(queue_capacity=2)

        async def scenario():
            shard = SessionShard(0, config, lambda m: None)
            for report in result.reports[:10]:
                shard.submit(report)

        with obs.capture() as (_tracer, registry):
            run(scenario())
            values = registry.values("repro_serve_shed_total")
        assert sum(values.values()) == 8


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
class TestUserSession:
    def test_cadence_and_warmup(self):
        result = make_capture(users=1, duration_s=40.0)
        config = SessionConfig(window_s=25.0, estimate_interval_s=5.0,
                               warmup_s=25.0)
        session = UserSession(1, config)
        estimates = []
        for report in result.reports:
            session.ingest(report)
            message = session.maybe_estimate()
            if message:
                estimates.append(message)
        # 40 s of stream, first estimate ~25 s, then every 5 s: 25/30/35/40
        assert 3 <= len(estimates) <= 5
        assert estimates[0]["t"] >= 25.0
        assert all(m["type"] == "estimate" for m in estimates)
        assert all(m["user_id"] == 1 for m in estimates)
        assert "drop_counts" in estimates[0]
        # The estimator lattice and motion gate are wire-visible.
        assert all(m["estimator"] in ("zero_crossing", "spectral", "rss")
                   for m in estimates)
        assert all(m["motion_gated"] is False for m in estimates)

    def test_signal_embedding(self):
        result = make_capture(users=1, duration_s=30.0)
        session = UserSession(1, SessionConfig(include_signal=True,
                                               signal_points=40))
        for report in result.reports:
            session.ingest(report)
        message = session.estimate_now()
        assert message is not None
        assert len(message["signal"]["values"]) >= 20
        assert len(message["signal"]["times"]) == len(message["signal"]["values"])

    def test_insufficient_data_returns_none(self):
        session = UserSession(1, SessionConfig())
        assert session.estimate_now() is None


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_save_load_roundtrip(self, tmp_path):
        result = make_capture(users=2, duration_s=20.0)
        session = UserSession(1, SessionConfig())
        for report in result.reports:
            session.ingest(report)
        path = tmp_path / "serve.ckpt"
        n = save_checkpoint(path, [session.state()], {"frames_total": 99})
        assert n == len(session.engine.buffered_reports(1))
        saved = load_checkpoint(path)
        assert saved["counters"]["frames_total"] == 99
        [state] = saved["sessions"]
        assert state["user_id"] == 1
        assert state["reports"] == session.engine.buffered_reports(1)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("not json")
        with pytest.raises(ServeError):
            load_checkpoint(path)
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ServeError):
            load_checkpoint(path)
        with pytest.raises(ServeError):
            load_checkpoint(tmp_path / "missing.ckpt")

    def test_load_rejects_newer_version(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_text('{"format": "repro-serve-checkpoint", "version": 99}')
        with pytest.raises(ServeError):
            load_checkpoint(path)

    def test_restore_into_session_is_lossless(self):
        result = make_capture(users=1, duration_s=30.0)
        config = SessionConfig(window_s=30.0)
        original = UserSession(1, config)
        for report in result.reports:
            original.ingest(report)
        state = original.state()
        clone = UserSession(1, config)
        clone.restore(state, state["reports"])
        a = original.estimate_now()
        b = clone.estimate_now()
        assert a["rate_bpm"] == pytest.approx(b["rate_bpm"], abs=1e-12)
        assert clone.reports_in == original.reports_in


class TestCheckpointHardening:
    """The crash-safety contract: rotation, fallback, typed corruption."""

    def _save(self, path, marker):
        result = make_capture(users=1, duration_s=15.0)
        session = UserSession(1, SessionConfig())
        for report in result.reports:
            session.ingest(report)
        return save_checkpoint(path, [session.state()],
                               {"frames_total": marker})

    def test_rotation_keeps_previous_generation(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        self._save(path, marker=1)
        self._save(path, marker=2)
        assert previous_path(path).exists()
        assert load_checkpoint(path)["counters"]["frames_total"] == 2
        prev = load_checkpoint(previous_path(path), allow_fallback=False)
        assert prev["counters"]["frames_total"] == 1

    def test_corrupt_live_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        self._save(path, marker=1)
        self._save(path, marker=2)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        saved = load_checkpoint(path)
        assert saved["fallback"] is True
        assert saved["counters"]["frames_total"] == 1
        [state] = saved["sessions"]
        assert state["reports"]  # the previous generation's data is whole

    def test_corrupt_without_previous_is_typed_error(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        self._save(path, marker=1)
        path.write_text("{torn")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)
        # CheckpointCorruptError is a ServeError: old handlers still work.
        with pytest.raises(ServeError):
            load_checkpoint(path)

    def test_fallback_can_be_disabled(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        self._save(path, marker=1)
        self._save(path, marker=2)
        path.write_text("{torn")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, allow_fallback=False)

    def test_server_boots_from_fallback_checkpoint(self, tmp_path):
        """A torn live checkpoint must not keep the server down."""
        path = tmp_path / "serve.ckpt"
        self._save(path, marker=1)
        self._save(path, marker=2)
        path.write_bytes(b"\x00" * 64)

        async def scenario():
            server = BreathServer(port=0, checkpoint_path=str(path),
                                  checkpoint_interval_s=0)
            await server.start()
            sessions = server.session_count()
            await server.drain()
            return sessions

        assert run(scenario()) == 1


class TestRestoreDropAccounting:
    def test_replay_drops_kept_out_of_live_counters(self):
        """last_restore_drop_counts: restore-time drops are a property of
        the snapshot, not of live traffic."""
        result = make_capture(users=1, duration_s=20.0)
        original = UserSession(1, SessionConfig(window_s=20.0))
        for report in result.reports:
            original.ingest(report)
        state = original.state()
        # A torn snapshot: one report duplicated (same stream, same
        # timestamp) — the replay must drop exactly the duplicate.
        reports = state["reports"] + [state["reports"][-1]]
        clone = UserSession(1, SessionConfig(window_s=20.0))
        clone.restore(state, reports)
        replay_drops = clone.engine.last_restore_drop_counts
        assert sum(replay_drops.values()) == 1
        # ...and the restored *live* counters still equal the
        # checkpointed ones: nothing leaked across the boundary.
        assert clone.engine.feed_drop_counts == state["drop_counts"]

    def test_clean_restore_reports_zero_replay_drops(self):
        result = make_capture(users=1, duration_s=20.0)
        original = UserSession(1, SessionConfig(window_s=20.0))
        for report in result.reports:
            original.ingest(report)
        state = original.state()
        clone = UserSession(1, SessionConfig(window_s=20.0))
        clone.restore(state, state["reports"])
        assert sum(clone.engine.last_restore_drop_counts.values()) == 0


# ----------------------------------------------------------------------
# The server, end to end over real TCP
# ----------------------------------------------------------------------
class TestServerEndToEnd:
    def test_replay_estimates_match_batch(self):
        """Acceptance: 5 users / 60 s streamed vs batch, within 0.1 bpm."""
        result = make_capture(users=5, duration_s=60.0, seed=11)
        reports = result.reports

        async def scenario():
            server = BreathServer(port=0, n_shards=3, config=SessionConfig(
                window_s=60.0, estimate_interval_s=10.0, warmup_s=30.0))
            await server.start()
            collected = []

            async def consume():
                async for message in watch_estimates(
                        "127.0.0.1", server.port):
                    collected.append(message)

            consumer = asyncio.ensure_future(consume())
            await asyncio.sleep(0.05)
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            stats = await client.replay(reports, speed=0)
            await client.close()
            await server.drain()
            await consumer
            return server, stats, collected

        server, stats, collected = run(scenario())
        assert stats.sent == len(reports)
        assert stats.acked == len(reports)
        assert server.counters["reports_total"] == len(reports)

        batch = TagBreathe(user_ids=set(range(1, 6))).process(reports)
        finals = {m["user_id"]: m for m in collected if m.get("final")}
        assert set(finals) == set(batch)
        for uid, estimate in batch.items():
            assert finals[uid]["rate_bpm"] == pytest.approx(
                estimate.rate_bpm, abs=0.1)
        # Interim estimates were streamed too, not just finals.
        assert len(collected) > len(finals)

    def test_kill_and_checkpoint_resume_continuity(self, tmp_path):
        """A restarted server picks up mid-breath from its checkpoint."""
        result = make_capture(users=2, duration_s=40.0)
        reports = result.reports
        half = len(reports) // 2
        path = str(tmp_path / "serve.ckpt")

        async def run_server(batch, expect_resumed):
            server = BreathServer(
                port=0, n_shards=2, checkpoint_path=path,
                checkpoint_interval_s=0,  # checkpoint on drain only
                config=SessionConfig(window_s=40.0))
            await server.start()
            assert (server.counters["resumed_reports"] > 0) == expect_resumed
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(batch, speed=0)
            await client.close()
            finals = {s.user_id: s.estimate_now() for s in server.sessions()}
            await server.drain()  # kill point: writes the checkpoint
            return finals

        run(run_server(reports[:half], expect_resumed=False))
        finals = run(run_server(reports[half:], expect_resumed=True))

        uninterrupted = TagBreathe(user_ids={1, 2})
        uninterrupted.feed_many(reports)
        for uid in (1, 2):
            expected = uninterrupted.estimate_user(uid, window_s=40.0)
            assert finals[uid]["rate_bpm"] == pytest.approx(
                expected.rate_bpm, abs=0.1)

    def test_graceful_drain_notifies_watchers(self):
        result = make_capture(users=1, duration_s=30.0)

        async def scenario():
            server = BreathServer(port=0, config=SessionConfig(
                window_s=30.0, warmup_s=35.0))  # warmup > capture: no ticks
            await server.start()
            seen = []

            async def consume():
                async for message in watch_estimates(
                        "127.0.0.1", server.port, user_id=1):
                    seen.append(message)

            consumer = asyncio.ensure_future(consume())
            await asyncio.sleep(0.05)
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(result.reports, speed=0)
            await client.close()
            await server.drain()
            # The iterator must terminate on its own (draining message).
            await asyncio.wait_for(consumer, timeout=5.0)
            return seen

        seen = run(scenario())
        # No cadence ticks fired, so everything seen is the drain farewell.
        assert len(seen) == 1
        assert seen[0]["final"] is True

    def test_protocol_error_answered_not_fatal(self):
        async def scenario():
            server = BreathServer(port=0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(encode_frame({"type": "report"}))  # no hello
            await writer.drain()
            decoder = FrameDecoder()
            data = await asyncio.wait_for(reader.read(1 << 16), timeout=5.0)
            messages = decoder.feed(data)
            writer.close()
            await server.drain()
            return server, messages

        server, messages = run(scenario())
        assert messages and messages[0]["type"] == "error"
        assert server.counters["protocol_errors_total"] == 1

    def test_reconnects_counted(self):
        async def scenario():
            server = BreathServer(port=0)
            await server.start()
            for _ in range(3):
                client = IngestClient("127.0.0.1", server.port,
                                      client_id="flaky-reader")
                await client.connect()
                await client.close()
            await server.drain()
            return server.counters

        counters = run(scenario())
        assert counters["connections_total"] == 3
        assert counters["reconnects_total"] == 2

    def test_serve_metrics_in_obs_registry(self):
        from repro import obs
        result = make_capture(users=1, duration_s=10.0)

        async def scenario():
            server = BreathServer(port=0)
            await server.start()
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(result.reports, speed=0)
            await client.close()
            await server.drain()

        with obs.capture() as (_tracer, registry):
            run(scenario())
            frames = registry.values("repro_serve_frames_total")
            conns = registry.values("repro_serve_connections_total")
            active = registry.values("repro_serve_active_connections")
        assert sum(frames.values()) >= len(result.reports)
        assert sum(conns.values()) == 1
        assert sum(active.values()) == 0  # gauge returned to zero

    def test_flush_is_an_ingest_barrier(self):
        result = make_capture(users=1, duration_s=20.0)

        async def scenario():
            server = BreathServer(port=0, config=SessionConfig(
                window_s=20.0))
            await server.start()
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            stats = await client.replay(result.reports, speed=0)
            # replay() ends with a flush barrier, so ingestion is done:
            sessions = server.sessions()
            await client.close()
            await server.drain()
            return stats, sessions

        stats, sessions = run(scenario())
        assert stats.acked == len(result.reports)
        assert sessions and sessions[0].reports_in == len(result.reports)


class TestDrainStuck:
    def test_stuck_handler_cancelled_and_counted(self):
        """Drain never hangs on a wedged connection: after the grace
        period the handler is cancelled and the stall is *counted*."""
        from repro import obs

        async def scenario():
            server = BreathServer(port=0)
            server.drain_grace_s = 0.05
            await server.start()
            # An ingest connection that handshakes and then goes silent:
            # its handler blocks in read() and never sees the drain.
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await server.drain()
            await client.close(polite=False)
            return server.counters

        with obs.capture() as (_tracer, registry):
            counters = run(scenario())
            stuck = registry.values("repro_serve_drain_stuck_total")
        assert counters["drain_stuck_total"] == 1
        assert sum(stuck.values()) == 1

    def test_clean_drain_counts_nothing(self):
        async def scenario():
            server = BreathServer(port=0)
            await server.start()
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await client.close()  # polite bye: the handler winds down
            await server.drain()
            return server.counters

        assert run(scenario())["drain_stuck_total"] == 0


class TestClientTimeouts:
    def test_connect_timeout_is_typed(self):
        """A server that accepts but never answers hello must surface a
        ServeTimeoutError, not hang the caller forever."""

        async def scenario():
            async def mute(reader, writer):
                await reader.read()  # accept, say nothing, wait for EOF
                writer.close()

            listener = await asyncio.start_server(mute, "127.0.0.1", 0)
            port = listener.sockets[0].getsockname()[1]
            client = IngestClient("127.0.0.1", port,
                                  connect_timeout_s=0.1)
            try:
                with pytest.raises(ServeTimeoutError):
                    await client.connect()
                assert not client.connected
            finally:
                listener.close()
                await listener.wait_closed()

        run(scenario())

    def test_timeout_is_a_serve_error(self):
        assert issubclass(ServeTimeoutError, ServeError)


class TestIdempotentResume:
    def test_welcome_answers_last_seq_and_filters_duplicates(self):
        result = make_capture(users=1, duration_s=10.0)
        reports = result.reports[:20]

        async def scenario():
            server = BreathServer(port=0)
            await server.start()
            first = IngestClient("127.0.0.1", server.port,
                                 client_id="reader-7")
            await first.connect()
            assert first.last_seq == 0
            for seq, report in enumerate(reports, start=1):
                await first.send_report(report, seq=seq)
            await first.flush()
            await first.close()

            second = IngestClient("127.0.0.1", server.port,
                                  client_id="reader-7")
            await second.connect()
            resumed_from = second.last_seq
            # A crashed reader resends a suffix it is not sure about:
            # everything at or below the watermark must be dropped.
            for seq, report in enumerate(reports, start=1):
                if seq > 10:
                    await second.send_report(report, seq=seq)
            await second.flush()
            await second.close()
            counters = dict(server.counters)
            total = server.counters["reports_total"]
            await server.drain()
            return resumed_from, counters, total

        resumed_from, counters, total = run(scenario())
        assert resumed_from == len(reports)
        assert counters["seq_filtered_total"] == len(reports) - 10
        # Duplicates were filtered before ingest: no report counted twice.
        assert total == len(reports)

    def test_seq_watermark_survives_checkpoint(self, tmp_path):
        result = make_capture(users=1, duration_s=10.0)
        reports = result.reports[:10]
        path = str(tmp_path / "serve.ckpt")

        async def phase_one():
            server = BreathServer(port=0, checkpoint_path=path,
                                  checkpoint_interval_s=0)
            await server.start()
            client = IngestClient("127.0.0.1", server.port,
                                  client_id="reader-9")
            await client.connect()
            for seq, report in enumerate(reports, start=1):
                await client.send_report(report, seq=seq)
            await client.flush()
            await client.close()
            await server.drain()  # checkpoint carries the watermark

        async def phase_two():
            server = BreathServer(port=0, checkpoint_path=path,
                                  checkpoint_interval_s=0)
            await server.start()
            client = IngestClient("127.0.0.1", server.port,
                                  client_id="reader-9")
            await client.connect()
            seq = client.last_seq
            await client.close()
            await server.drain()
            return seq

        run(phase_one())
        assert run(phase_two()) == len(reports)


# ----------------------------------------------------------------------
# Hibernation (the cold tier, through the real server)
# ----------------------------------------------------------------------
class TestHibernation:
    def _scenario(self, reports, second_half_frames=()):
        """Replay half, park everyone, replay the rest; return the books."""
        half = len(reports) // 2

        async def scenario():
            server = BreathServer(port=0, n_shards=2, config=SessionConfig(
                window_s=40.0, idle_after_s=30.0))
            await server.start()
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(reports[:half], speed=0)
            await client.close()
            # Everyone went quiet 100 s ago (wall clock): the sweep
            # must park both sessions and free their engines.
            for session in server.sessions():
                session.last_active -= 100.0
            parked = server.hibernate_idle_now()
            mid = server.summary()
            client2 = IngestClient("127.0.0.1", server.port,
                                   frames=second_half_frames)
            await client2.connect()
            await client2.replay(reports[half:], speed=0)
            await client2.close()
            finals = {s.user_id: s.estimate_now() for s in server.sessions()}
            end = server.summary()
            await server.drain()
            return parked, mid, finals, end

        return run(scenario())

    def _assert_continuity(self, reports, parked, mid, finals, end):
        assert parked == 2
        assert mid["resident"] == 0 and mid["hibernated"] == 2
        assert mid["sessions"] == 2  # parked users still counted as owned
        assert end["resident"] == 2 and end["hibernated"] == 0
        uninterrupted = TagBreathe(user_ids={1, 2})
        uninterrupted.feed_many(reports)
        for uid in (1, 2):
            expected = uninterrupted.estimate_user(uid, window_s=40.0)
            assert finals[uid]["rate_bpm"] == pytest.approx(
                expected.rate_bpm, abs=0.1)

    def test_idle_sweep_parks_and_next_report_wakes(self):
        reports = make_capture(users=2, duration_s=40.0).reports
        self._assert_continuity(reports, *self._scenario(reports))

    def test_wake_via_binary_column_frames(self):
        """The wake can land on the batched SoA path (feed_batch)."""
        reports = make_capture(users=2, duration_s=40.0).reports
        self._assert_continuity(
            reports, *self._scenario(reports,
                                     second_half_frames=("column",)))

    def test_hibernated_sessions_survive_checkpoint_restart(self, tmp_path):
        """Parked docs ride the checkpoint, resume cold, then wake."""
        reports = make_capture(users=2, duration_s=40.0).reports
        half = len(reports) // 2
        path = str(tmp_path / "serve.ckpt")

        def server_config():
            return dict(port=0, n_shards=2, checkpoint_path=path,
                        checkpoint_interval_s=0,
                        config=SessionConfig(window_s=40.0,
                                             idle_after_s=30.0))

        async def first_run():
            server = BreathServer(**server_config())
            await server.start()
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(reports[:half], speed=0)
            await client.close()
            for session in server.sessions():
                session.last_active -= 100.0
            assert server.hibernate_idle_now() == 2
            await server.drain()  # kill point: checkpoint holds cold docs

        async def second_run():
            server = BreathServer(**server_config())
            await server.start()
            # Resumed cold: owned but no engine was materialised.
            resumed = server.summary()
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(reports[half:], speed=0)
            await client.close()
            finals = {s.user_id: s.estimate_now() for s in server.sessions()}
            await server.drain()
            return resumed, finals

        run(first_run())
        resumed, finals = run(second_run())
        assert resumed["sessions"] == 2
        assert resumed["resident"] == 0 and resumed["hibernated"] == 2
        uninterrupted = TagBreathe(user_ids={1, 2})
        uninterrupted.feed_many(reports)
        for uid in (1, 2):
            expected = uninterrupted.estimate_user(uid, window_s=40.0)
            assert finals[uid]["rate_bpm"] == pytest.approx(
                expected.rate_bpm, abs=0.1)

    def test_idle_sweep_loop_runs_on_its_own(self):
        """With a tiny idle_after_s the background sweep parks sessions
        without anyone calling hibernate_idle_now."""
        reports = make_capture(users=1, duration_s=20.0).reports

        async def scenario():
            server = BreathServer(port=0, config=SessionConfig(
                window_s=20.0, idle_after_s=0.1))
            await server.start()
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(reports, speed=0)
            await client.close()
            for _ in range(100):  # sweep interval is idle_after_s / 2
                if server.hibernated_count():
                    break
                await asyncio.sleep(0.05)
            counts = (server.resident_count(), server.hibernated_count())
            await server.drain()
            return counts

        resident, hibernated = run(scenario())
        assert (resident, hibernated) == (0, 1)

    def test_max_resident_budget_enforced_per_shard(self):
        reports = make_capture(users=3, duration_s=10.0).reports

        async def scenario():
            server = BreathServer(port=0, n_shards=1, config=SessionConfig(
                window_s=10.0, max_resident=1))
            await server.start()
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(reports, speed=0)
            await client.close()
            counts = (server.resident_count(), server.hibernated_count(),
                      server.session_count())
            await server.drain()
            return counts

        resident, hibernated, total = run(scenario())
        assert resident == 1
        assert hibernated == 2
        assert total == 3

    def test_hibernation_metrics_registered(self):
        from repro import obs
        reports = make_capture(users=1, duration_s=10.0).reports

        async def scenario():
            server = BreathServer(port=0, config=SessionConfig(
                window_s=10.0, idle_after_s=30.0))
            await server.start()
            client = IngestClient("127.0.0.1", server.port)
            await client.connect()
            await client.replay(reports, speed=0)
            await client.close()
            server.sessions()[0].last_active -= 100.0
            server.hibernate_idle_now()
            # Touching the user again wakes them through the histogram.
            server.shard_for(1).session_for(1)
            await server.drain()

        with obs.capture() as (_tracer, registry):
            run(scenario())
            parked = registry.values("repro_serve_hibernated_total")
            woken = registry.values("repro_serve_woken_total")
            latency = registry.histogram("repro_serve_wake_latency_seconds")
            observed = latency.count
        assert sum(parked.values()) == 1
        assert sum(woken.values()) == 1
        assert observed == 1  # the wake histogram saw the inflate+replay


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_parser_accepts_serve_replay_watch(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--shards", "2"])
        assert args.command == "serve" and args.shards == 2
        args = parser.parse_args(["replay", "cap.csv", "--speed", "4"])
        assert args.command == "replay" and args.speed == 4.0
        args = parser.parse_args(["watch", "3"])
        assert args.command == "watch" and args.user == 3

    def test_parser_accepts_hibernation_knobs(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0",
                                  "--max-resident-users", "5000",
                                  "--idle-after", "120"])
        assert args.max_resident_users == 5000
        assert args.idle_after == 120.0
        # Both default to off: sessions stay resident forever.
        args = parser.parse_args(["serve", "--port", "0"])
        assert args.max_resident_users is None and args.idle_after is None

    def test_per_shard_budget_split(self):
        from repro.cli import _per_shard_budget
        assert _per_shard_budget(None, 4) is None
        assert _per_shard_budget(100, 4) == 25
        assert _per_shard_budget(10, 4) == 3  # ceil division
        assert _per_shard_budget(1, 8) == 1   # floor of one per shard

    def test_replay_against_dead_server_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main
        result = make_capture(users=1, duration_s=5.0)
        trace = tmp_path / "cap.csv"
        save_trace_csv(result.reports, trace)
        assert load_trace_csv(trace)  # sanity: the capture round-trips
        code = main(["replay", str(trace), "--port", "1",
                     "--speed", "0"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err
