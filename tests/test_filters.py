"""Tests for the FFT/FIR low-pass filters and detrending (Section IV-B)."""

import numpy as np
import pytest

from repro.core.filters import (
    PAPER_CUTOFF_HZ,
    detrend_series,
    fft_lowpass,
    fir_lowpass,
)
from repro.errors import StreamError
from repro.streams import TimeSeries


def two_tone(rate_hz=20.0, duration=30.0, f_low=0.2, f_high=3.0):
    t = np.arange(0.0, duration, 1.0 / rate_hz)
    values = np.sin(2 * np.pi * f_low * t) + 0.8 * np.sin(2 * np.pi * f_high * t)
    return TimeSeries(t, values), t


class TestFFTLowpass:
    def test_keeps_breathing_band(self):
        series, t = two_tone()
        filtered = fft_lowpass(series, PAPER_CUTOFF_HZ)
        expected = np.sin(2 * np.pi * 0.2 * t)
        assert np.corrcoef(filtered.values, expected)[0, 1] > 0.99

    def test_removes_high_frequency(self):
        series, t = two_tone()
        filtered = fft_lowpass(series, PAPER_CUTOFF_HZ)
        high = 0.8 * np.sin(2 * np.pi * 3.0 * t)
        residual = np.abs(np.fft.rfft(filtered.values - np.sin(2 * np.pi * 0.2 * t)))
        assert np.max(residual) < 0.05 * np.max(np.abs(np.fft.rfft(high)))

    def test_removes_dc(self):
        series = TimeSeries.regular(np.ones(100) * 5.0 + np.sin(np.arange(100)), 10.0)
        filtered = fft_lowpass(series, 0.67)
        assert abs(filtered.values.mean()) < 1e-9

    def test_highpass_edge(self):
        rate = 20.0
        t = np.arange(0, 60, 1 / rate)
        slow = np.sin(2 * np.pi * 0.01 * t)  # below the 0.05 Hz edge
        breath = np.sin(2 * np.pi * 0.2 * t)
        filtered = fft_lowpass(TimeSeries(t, slow + breath), 0.67, highpass_hz=0.05)
        assert np.corrcoef(filtered.values, breath)[0, 1] > 0.99

    def test_preserves_time_grid(self):
        series, _ = two_tone()
        filtered = fft_lowpass(series)
        np.testing.assert_array_equal(filtered.times, series.times)

    def test_rejects_irregular(self):
        irregular = TimeSeries([0.0, 0.1, 0.3, 0.35], [1, 2, 3, 4])
        with pytest.raises(StreamError):
            fft_lowpass(irregular)

    def test_rejects_cutoff_above_nyquist(self):
        series = TimeSeries.regular(np.sin(np.arange(40)), rate_hz=1.0)
        with pytest.raises(StreamError):
            fft_lowpass(series, cutoff_hz=0.67)

    def test_rejects_bad_band(self):
        series, _ = two_tone()
        with pytest.raises(StreamError):
            fft_lowpass(series, 0.67, highpass_hz=0.7)
        with pytest.raises(StreamError):
            fft_lowpass(series, 0.0)

    def test_rejects_too_few_samples(self):
        with pytest.raises(StreamError):
            fft_lowpass(TimeSeries([0.0, 0.1], [1.0, 2.0]))


class TestFIRLowpass:
    def test_keeps_breathing_band(self):
        series, t = two_tone()
        filtered = fir_lowpass(series, PAPER_CUTOFF_HZ)
        expected = np.sin(2 * np.pi * 0.2 * t)
        assert np.corrcoef(filtered.values, expected)[0, 1] > 0.98

    def test_agrees_with_fft_filter(self):
        """The paper says an FIR filter 'can also be adopted' — the two
        implementations must agree on a clean in-band signal."""
        series, _ = two_tone()
        a = fft_lowpass(series, PAPER_CUTOFF_HZ)
        b = fir_lowpass(series, PAPER_CUTOFF_HZ)
        # Ignore the edges where filtfilt ramps.
        core = slice(50, -50)
        assert np.corrcoef(a.values[core], b.values[core])[0, 1] > 0.99

    def test_short_series_shrinks_taps(self):
        series = TimeSeries.regular(np.sin(np.arange(40) * 0.3), rate_hz=10.0)
        filtered = fir_lowpass(series, 0.67, num_taps=101)
        assert len(filtered) == len(series)

    def test_highpass_edge(self):
        rate = 20.0
        t = np.arange(0, 60, 1 / rate)
        slow = np.sin(2 * np.pi * 0.01 * t)
        breath = np.sin(2 * np.pi * 0.2 * t)
        filtered = fir_lowpass(TimeSeries(t, slow + breath), 0.67, highpass_hz=0.05)
        assert np.corrcoef(filtered.values, breath)[0, 1] > 0.98

    def test_validation(self):
        series, _ = two_tone()
        with pytest.raises(StreamError):
            fir_lowpass(series, 0.0)
        with pytest.raises(StreamError):
            fir_lowpass(series, 0.67, num_taps=1)
        with pytest.raises(StreamError):
            fir_lowpass(series, 0.67, highpass_hz=1.0)


class TestDetrend:
    def test_removes_linear_ramp(self):
        t = np.arange(0, 10, 0.1)
        values = 3.0 * t + 1.0 + np.sin(2 * np.pi * 0.5 * t)
        detrended = detrend_series(TimeSeries(t, values))
        assert abs(np.polyfit(t, detrended.values, 1)[0]) < 1e-9

    def test_preserves_oscillation(self):
        t = np.arange(0, 10, 0.1)
        wave = np.sin(2 * np.pi * 0.5 * t)
        detrended = detrend_series(TimeSeries(t, 2.0 * t + wave))
        assert np.corrcoef(detrended.values, wave)[0, 1] > 0.98

    def test_short_series_noop(self):
        ts = TimeSeries([0.0], [5.0])
        assert detrend_series(ts) == ts
