"""Tests for capture persistence (repro.sim.trace_io)."""

import pytest

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.sim import (
    TraceFormatError,
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
    trace_summary,
)


@pytest.fixture(scope="module")
def capture():
    scenario = Scenario([Subject(user_id=1, distance_m=2.0,
                                 breathing=MetronomeBreathing(12.0),
                                 sway_seed=0)])
    return run_scenario(scenario, duration_s=20.0, seed=19)


class TestCSVRoundtrip:
    def test_exact_roundtrip(self, capture, tmp_path):
        path = tmp_path / "capture.csv"
        written = save_trace_csv(capture.reports, path)
        loaded = load_trace_csv(path)
        assert written == len(capture.reports) == len(loaded)
        for original, restored in zip(capture.reports, loaded):
            assert restored == original

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert save_trace_csv([], path) == 0
        assert load_trace_csv(path) == []

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a,real,header\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "void.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_malformed_row_rejected(self, capture, tmp_path):
        path = tmp_path / "corrupt.csv"
        save_trace_csv(capture.reports[:3], path)
        with open(path, "a") as handle:
            handle.write("zzz,not_a_number,1,2,3,4,5\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)


class TestJSONLRoundtrip:
    def test_exact_roundtrip(self, capture, tmp_path):
        path = tmp_path / "capture.jsonl"
        written = save_trace_jsonl(capture.reports, path)
        loaded = load_trace_jsonl(path)
        assert written == len(loaded)
        assert loaded == sorted(capture.reports, key=lambda r: r.timestamp_s)

    def test_blank_lines_tolerated(self, capture, tmp_path):
        path = tmp_path / "gaps.jsonl"
        save_trace_jsonl(capture.reports[:5], path)
        content = path.read_text().replace("\n", "\n\n")
        path.write_text(content)
        assert len(load_trace_jsonl(path)) == 5

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(TraceFormatError):
            load_trace_jsonl(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text('{"epc": "000000000000000100000001"}\n')
        with pytest.raises(TraceFormatError):
            load_trace_jsonl(path)


class TestReplayThroughPipeline:
    def test_saved_trace_reproduces_estimate(self, capture, tmp_path):
        """The deployment workflow: record, reload, re-analyse."""
        path = tmp_path / "session.csv"
        save_trace_csv(capture.reports, path)
        replayed = load_trace_csv(path)
        live = TagBreathe(user_ids={1}).process(capture.reports)[1]
        offline = TagBreathe(user_ids={1}).process(replayed)[1]
        assert offline.rate_bpm == pytest.approx(live.rate_bpm, abs=1e-9)


class TestPropertyRoundtrip:
    """Hypothesis round-trips over arbitrary (valid) report contents."""

    from hypothesis import given, settings, strategies as st

    report_values = st.tuples(
        st.integers(min_value=0, max_value=(1 << 96) - 1),   # epc
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),  # time
        st.floats(min_value=0.0, max_value=6.28, allow_nan=False),  # phase
        st.floats(min_value=-90.0, max_value=-20.0),          # rssi
        st.floats(min_value=-500.0, max_value=500.0),         # doppler
        st.integers(min_value=0, max_value=49),               # channel
        st.integers(min_value=1, max_value=4),                # antenna
    )

    @given(st.lists(report_values, min_size=1, max_size=20, unique_by=lambda v: v[1]))
    @settings(max_examples=25, deadline=None)
    def test_csv_roundtrip_any_reports(self, tmp_path_factory, raw):
        from repro.epc import EPC96
        from repro.reader import TagReport
        reports = [
            TagReport(epc=EPC96(e), timestamp_s=t, phase_rad=p,
                      rssi_dbm=r, doppler_hz=d, channel_index=c,
                      antenna_port=a)
            for e, t, p, r, d, c, a in raw
        ]
        path = tmp_path_factory.mktemp("traces") / "t.csv"
        save_trace_csv(reports, path)
        loaded = load_trace_csv(path)
        assert sorted(loaded, key=lambda r: r.timestamp_s) == \
            sorted(reports, key=lambda r: r.timestamp_s)


class TestSummary:
    def test_summary_fields(self, capture):
        text = trace_summary(capture.reports)
        assert "reports" in text
        assert "3 tag streams" in text
        assert "1 user" in text

    def test_empty_summary(self):
        assert trace_summary([]) == "empty trace"
