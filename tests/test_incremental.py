"""Tests for the incremental streaming estimation path (DESIGN.md §12).

The contract under test is *bit-for-bit equivalence*: an incremental
``estimate_user`` tick must return exactly what the from-scratch
``estimate_user_recompute`` reference returns over the same pinned
trailing window, at every tick, across pruning and across
checkpoint/restore.  Rates are therefore compared with ``==``, not
``pytest.approx``.
"""

import warnings

import numpy as np
import pytest

from repro import Scenario, TagBreathe, obs, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.core.pipeline import FEED_DROP_KEYS
from repro.core.preprocess import PhaseChainCursor, displacement_samples
from repro.epc import EPC96
from repro.errors import DegradedEstimateWarning, InsufficientDataError
from repro.reader.tagreport import TagReport
from repro.streams import GrowableArray, WindowIndex, trailing_window_bounds
from repro.streams.windows import StreamError


@pytest.fixture(scope="module")
def capture():
    """One shared two-user 60 s capture at distinct metronome rates."""
    scenario = Scenario([
        Subject(user_id=1, distance_m=2.0,
                breathing=MetronomeBreathing(12.0), sway_seed=1),
        Subject(user_id=2, distance_m=2.4,
                breathing=MetronomeBreathing(17.0), sway_seed=2),
    ])
    return run_scenario(scenario, duration_s=60.0, seed=5)


def make_reports(times, *, user_id=1, tag=0, channel=0, port=1,
                 phase=1.0, rssi=-60.0):
    epc = EPC96.from_user_tag(user_id, tag)
    return [TagReport(epc=epc, timestamp_s=float(t), phase_rad=phase,
                      rssi_dbm=rssi, doppler_hz=0.0,
                      channel_index=channel, antenna_port=port)
            for t in times]


def assert_same_estimate(a, b):
    assert a.rate_bpm == b.rate_bpm
    assert a.confidence == b.confidence
    assert sorted(a.degraded_reasons) == sorted(b.degraded_reasons)
    assert a.tags_fused == b.tags_fused
    assert a.read_count == b.read_count
    assert a.antenna_port == b.antenna_port


def tick_both(inc_engine, ref_engine, user_id, window_s=None):
    """Tick both engines; assert identical outcome (value or error)."""
    try:
        a = inc_engine.estimate_user(user_id, window_s=window_s)
    except InsufficientDataError as exc_a:
        with pytest.raises(InsufficientDataError) as exc_b:
            ref_engine.estimate_user_recompute(user_id, window_s=window_s)
        assert str(exc_a) == str(exc_b.value)
        return None
    b = ref_engine.estimate_user_recompute(user_id, window_s=window_s)
    assert_same_estimate(a, b)
    return a


# ----------------------------------------------------------------------
# Substrate: GrowableArray / WindowIndex / trailing_window_bounds
# ----------------------------------------------------------------------
class TestGrowableArray:
    def test_append_and_view(self):
        arr = GrowableArray(np.float64)
        for x in range(100):
            arr.append(float(x))
        assert len(arr) == 100
        np.testing.assert_array_equal(arr.view(), np.arange(100.0))

    def test_drop_front(self):
        arr = GrowableArray(np.float64)
        for x in range(10):
            arr.append(float(x))
        arr.drop_front(4)
        np.testing.assert_array_equal(arr.view(), np.arange(4.0, 10.0))

    def test_view_tracks_further_appends(self):
        arr = GrowableArray(np.float64)
        arr.append(1.0)
        arr.append(2.0)
        before = arr.view().copy()
        arr.append(3.0)
        np.testing.assert_array_equal(before, [1.0, 2.0])
        np.testing.assert_array_equal(arr.view(), [1.0, 2.0, 3.0])


class TestWindowBounds:
    def test_half_open_below(self):
        lo, hi = trailing_window_bounds(100.0, 25.0)
        assert lo == 75.0
        assert hi == 100.0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(StreamError):
            trailing_window_bounds(10.0, 0.0)

    def test_pinned_shared_by_recompute_and_incremental(self, capture):
        """A sample landing exactly on ``t_latest - window_s`` is OUT.

        This pins the single window-boundary definition: the trailing
        window is half-open below, ``(t_latest - window_s, t_latest]``.
        Both tick paths must agree on the boundary sample's exclusion,
        so their read_counts (and everything downstream) match.
        """
        reports = [r for r in capture.reports if r.user_id == 1]
        engine = TagBreathe(user_ids={1})
        for r in reports:
            engine.feed(r)
        t_latest = reports[-1].timestamp_s
        # Choose the window so an actual report sits EXACTLY on the
        # lower boundary; strict > must exclude it on both paths.
        boundary = next(r.timestamp_s for r in reports
                        if t_latest - r.timestamp_s <= 30.0)
        window = t_latest - boundary
        in_window = sum(1 for r in reports
                        if r.timestamp_s > boundary)
        assert in_window < sum(
            1 for r in reports if r.timestamp_s >= boundary)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            inc_est = engine.estimate_user(1, window_s=window)
            rec_est = engine.estimate_user_recompute(1, window_s=window)
        assert inc_est.read_count == in_window
        assert rec_est.read_count == in_window


# ----------------------------------------------------------------------
# Cursor-level bit-equality against the batch builder
# ----------------------------------------------------------------------
class TestPhaseChainCursor:
    FREQS = [920.625e6 + 250e3 * k for k in range(16)]

    def random_reports(self, n, seed=7):
        rng = np.random.default_rng(seed)
        epc = EPC96.from_user_tag(1, 0)
        out, t = [], 0.0
        for _ in range(n):
            # Mostly dense reads, occasional segment-splitting gaps.
            t += (float(rng.uniform(0.02, 0.06)) if rng.random() > 0.02
                  else float(rng.uniform(6.0, 8.0)))
            out.append(TagReport(
                epc=epc, timestamp_s=t,
                phase_rad=float(rng.uniform(0, 2 * np.pi)),
                rssi_dbm=-60.0, doppler_hz=0.0,
                channel_index=int(rng.integers(0, 16)), antenna_port=1))
        return out

    def test_window_matches_batch_bit_for_bit(self):
        reports = self.random_reports(1200)
        cursor = PhaseChainCursor(self.FREQS)
        for i, report in enumerate(reports):
            cursor.push(report)
            if i % 300 != 299:
                continue
            t_hi = report.timestamp_s
            t_lo = t_hi - 25.0
            got = cursor.window_displacement(t_lo, t_hi)
            want = displacement_samples(
                [r for r in reports[:i + 1]
                 if t_lo < r.timestamp_s <= t_hi], self.FREQS)
            np.testing.assert_array_equal(got.times, want.times)
            # uint64 view: compares the exact float bit patterns.
            np.testing.assert_array_equal(
                got.values.view(np.uint64), want.values.view(np.uint64))

    def test_equality_survives_pruning_and_cache_reuse(self):
        reports = self.random_reports(2000, seed=11)
        cursor = PhaseChainCursor(self.FREQS)
        pruned = False
        for i, report in enumerate(reports):
            cursor.push(report)
            if i % 250 != 249:
                continue
            t_hi = report.timestamp_s
            cursor.prune_before(t_hi - 60.0)
            pruned = pruned or any(
                c.base > 0 for c in cursor._groups.values())
            got = cursor.window_displacement(t_hi - 25.0, t_hi)
            want = displacement_samples(
                [r for r in reports[:i + 1]
                 if t_hi - 25.0 < r.timestamp_s <= t_hi], self.FREQS)
            np.testing.assert_array_equal(got.times, want.times)
            np.testing.assert_array_equal(
                got.values.view(np.uint64), want.values.view(np.uint64))
        assert pruned, "scenario never pruned; test lost its teeth"
        assert any(c.segcache for c in cursor._groups.values())


# ----------------------------------------------------------------------
# Engine-level equivalence
# ----------------------------------------------------------------------
class TestIncrementalEquivalence:
    def test_interleaved_ticks_match_recompute(self, capture):
        inc = TagBreathe(user_ids={1, 2})
        ref = TagBreathe(user_ids={1, 2}, incremental=False)
        next_tick, matched = 20.0, 0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            for report in capture.reports:
                inc.feed(report)
                ref.feed(report)
                if report.timestamp_s >= next_tick:
                    next_tick += 4.0
                    for uid in (1, 2):
                        if tick_both(inc, ref, uid) is not None:
                            matched += 1
        assert matched >= 10

    def test_incremental_false_uses_recompute(self, capture):
        """The two constructions give identical results on every tick."""
        inc = TagBreathe(user_ids={1})
        plain = TagBreathe(user_ids={1}, incremental=False)
        for report in capture.reports:
            inc.feed(report)
            plain.feed(report)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            a = inc.estimate_user(1)
            b = plain.estimate_user(1)
        assert_same_estimate(a, b)

    def test_streamed_equals_batch_process(self, capture):
        """Satellite: feed_many + estimate_user == process over the
        same pinned trailing window (one shared boundary definition)."""
        streaming = TagBreathe(user_ids={1, 2})
        batch = TagBreathe(user_ids={1, 2})
        streaming.feed_many(capture.reports)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            batch_estimates = batch.process(capture.reports, window_s=25.0)
            for uid in (1, 2):
                streamed = streaming.estimate_user(uid, window_s=25.0)
                assert abs(streamed.rate_bpm
                           - batch_estimates[uid].rate_bpm) < 1e-9
                assert streamed.read_count == batch_estimates[uid].read_count

    def test_memoized_tick_returns_same_object(self, capture):
        engine = TagBreathe(user_ids={1})
        engine.feed_many(capture.reports)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            with obs.capture() as (_tracer, _registry):
                first = engine.estimate_user(1)
                again = engine.estimate_user(1)
                assert again is first
                hits = obs.counter("repro_pipeline_tick_cache_total",
                                   result="hit").value
                misses = obs.counter("repro_pipeline_tick_cache_total",
                                     result="miss").value
        assert misses == 1.0
        assert hits == 1.0

    def test_new_report_invalidates_memo(self, capture):
        engine = TagBreathe(user_ids={1})
        mid = len(capture.reports) // 2
        engine.feed_many(capture.reports[:mid])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            first = engine.estimate_user(1)
            engine.feed_many(capture.reports[mid:])
            second = engine.estimate_user(1)
            assert second is not first
            reference = engine.estimate_user_recompute(1)
        assert_same_estimate(second, reference)

    def test_cached_insufficient_data_reraises(self):
        engine = TagBreathe(user_ids={1})
        for r in make_reports([0.0, 0.1, 0.2, 0.3]):
            engine.feed(r)
        with pytest.raises(InsufficientDataError) as first:
            engine.estimate_user(1)
        with pytest.raises(InsufficientDataError) as second:
            engine.estimate_user(1)
        assert str(first.value) == str(second.value)

    def test_unknown_user_raises(self, capture):
        engine = TagBreathe(user_ids={1, 99})
        engine.feed_many(capture.reports)
        with pytest.raises(InsufficientDataError):
            engine.estimate_user(99)


# ----------------------------------------------------------------------
# Satellite: restore must not conflate replay drops with restored counters
# ----------------------------------------------------------------------
class TestRestoreDropAccounting:
    def duplicate_snapshot(self):
        """A snapshot whose replay itself triggers a duplicate drop."""
        reports = make_reports([0.0, 0.5, 1.0, 1.5, 2.0])
        # Same stream, same timestamp as the newest buffered report: the
        # replaying feed() classifies this as a duplicate.
        reports.append(make_reports([2.0])[0])
        return reports

    def test_replay_drops_kept_out_of_restored_counters(self):
        engine = TagBreathe(user_ids={1})
        saved = {"late": 3, "duplicate": 7, "invalid_channel": 0}
        engine.restore_streaming(self.duplicate_snapshot(), saved)
        # The restored production counters are exactly the checkpointed
        # ones — NOT checkpointed + 1 replay artifact.
        assert engine.feed_drop_counts == saved
        assert engine.last_restore_drop_counts["duplicate"] == 1

    def test_clean_restore_reports_zero_replay_drops(self):
        engine = TagBreathe(user_ids={1})
        engine.restore_streaming(make_reports([0.0, 0.5, 1.0]),
                                 {"late": 2, "duplicate": 0,
                                  "invalid_channel": 1})
        assert engine.last_restore_drop_counts == dict.fromkeys(
            FEED_DROP_KEYS, 0)
        assert engine.feed_drop_counts["late"] == 2

    def test_restore_without_counts_zeroes_counters(self):
        engine = TagBreathe(user_ids={1})
        engine.restore_streaming(self.duplicate_snapshot())
        assert engine.feed_drop_counts == dict.fromkeys(FEED_DROP_KEYS, 0)
        assert engine.last_restore_drop_counts["duplicate"] == 1

    def test_reset_clears_replay_accounting(self):
        engine = TagBreathe(user_ids={1})
        engine.restore_streaming(self.duplicate_snapshot())
        engine.reset_streaming()
        assert engine.last_restore_drop_counts == dict.fromkeys(
            FEED_DROP_KEYS, 0)

    def test_restored_engine_estimates_match(self, capture):
        """Restore = re-feed: estimates after restore are bit-identical
        to an engine that never checkpointed."""
        original = TagBreathe(user_ids={1})
        original.feed_many(capture.reports)
        restored = TagBreathe(user_ids={1})
        restored.restore_streaming(original.buffered_reports(),
                                   original.feed_drop_counts)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            assert_same_estimate(original.estimate_user(1),
                                 restored.estimate_user(1))
