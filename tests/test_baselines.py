"""Tests for the RSSI / Doppler / FFT-peak baselines (Section IV-A/B)."""

import numpy as np
import pytest

from repro import (
    DopplerBreathEstimator,
    FFTPeakEstimator,
    RSSIBreathEstimator,
    Scenario,
    TagBreathe,
    breathing_rate_accuracy,
    run_scenario,
)
from repro.body import MetronomeBreathing, Subject
from repro.errors import InsufficientDataError
from repro.streams import TimeSeries


@pytest.fixture(scope="module")
def close_capture():
    """The paper's ideal case: one tag-rich user, close range, 12 bpm."""
    scenario = Scenario([Subject(user_id=1, distance_m=1.5,
                                 breathing=MetronomeBreathing(12.0),
                                 sway_seed=0)])
    return run_scenario(scenario, duration_s=40.0, seed=21)


class TestRSSIBaseline:
    def test_tracks_breathing_in_ideal_case(self):
        """Fig. 2's setting: ONE tag, close range — RSSI periodicity is
        visible and the estimate lands near the truth (loosely: the
        paper's point is that RSSI is usable only in the ideal case)."""
        scenario = Scenario([Subject(user_id=1, distance_m=1.5, num_tags=1,
                                     breathing=MetronomeBreathing(12.0),
                                     sway_seed=3)])
        capture = run_scenario(scenario, duration_s=40.0, seed=33)
        estimate = RSSIBreathEstimator().estimate(capture.reports)
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.4)

    def test_too_few_reads_rejected(self):
        with pytest.raises(InsufficientDataError):
            RSSIBreathEstimator().estimate([])


class TestDopplerBaseline:
    def test_roughly_tracks_breathing(self, close_capture):
        """Fig. 3: the Doppler envelope 'roughly tracks' breathing —
        noisy, sometimes unable to estimate at all.  The paper's point is
        that this observable is unreliable, so both outcomes are valid;
        what matters is that a produced estimate stays in a sane band."""
        try:
            estimate = DopplerBreathEstimator().estimate(close_capture.reports)
        except InsufficientDataError:
            return  # noise swamped the crossings: the expected failure mode
        assert 2.0 < estimate.rate_bpm < 45.0

    def test_too_few_reads_rejected(self):
        with pytest.raises(InsufficientDataError):
            DopplerBreathEstimator().estimate([])


class TestFFTPeakBaseline:
    def test_peak_matches_rate_with_long_window(self, close_capture):
        pipeline = TagBreathe(user_ids={1})
        track = pipeline.fused_track(1, close_capture.reports)
        rate = FFTPeakEstimator().estimate_rate_bpm(track)
        assert rate == pytest.approx(12.0, abs=1.6)  # 40 s -> 1.5 bpm grid

    def test_resolution_limited_at_25s(self):
        """The Section IV-B pitfall: 25 s window -> 2.4 bpm grid."""
        t = np.arange(0, 25.0, 0.05)
        track = TimeSeries(t, np.sin(2 * np.pi * (13.0 / 60.0) * t))
        rate = FFTPeakEstimator().estimate_rate_bpm(track)
        assert rate % 2.4 == pytest.approx(0.0, abs=1e-6)
        assert abs(rate - 13.0) <= 2.4


class TestPhaseBeatsBaselines:
    def test_phase_pipeline_is_most_accurate(self, close_capture):
        """The paper's core design argument, quantified."""
        truth = 12.0
        phase = TagBreathe(user_ids={1}).process(close_capture.reports)[1]
        rssi = RSSIBreathEstimator().estimate(close_capture.reports)
        phase_acc = breathing_rate_accuracy(phase.rate_bpm, truth)
        rssi_acc = breathing_rate_accuracy(rssi.rate_bpm, truth)
        assert phase_acc >= rssi_acc
        assert phase_acc > 0.95
