"""Tests for configuration validation (Table I ranges)."""

import pytest

from repro.config import (
    NoiseConfig,
    PipelineConfig,
    ReaderConfig,
    RobustnessConfig,
    ScenarioDefaults,
    SystemConfig,
    default_config,
)
from repro.errors import ConfigError


class TestReaderConfig:
    def test_defaults_match_table1(self):
        config = ReaderConfig()
        assert config.tx_power_dbm == 30.0
        assert config.num_channels == 10
        assert config.channel_dwell_s == pytest.approx(0.2)
        assert config.rssi_resolution_db == 0.5

    def test_tx_power_range(self):
        ReaderConfig(tx_power_dbm=15.0)  # lower Table I bound
        with pytest.raises(ConfigError):
            ReaderConfig(tx_power_dbm=14.0)
        with pytest.raises(ConfigError):
            ReaderConfig(tx_power_dbm=31.0)

    def test_antenna_limit(self):
        ReaderConfig(num_antennas=4)  # R420 port count
        with pytest.raises(ConfigError):
            ReaderConfig(num_antennas=5)

    def test_other_validation(self):
        with pytest.raises(ConfigError):
            ReaderConfig(num_channels=0)
        with pytest.raises(ConfigError):
            ReaderConfig(channel_dwell_s=0.0)
        with pytest.raises(ConfigError):
            ReaderConfig(rssi_resolution_db=0.0)


class TestPipelineConfig:
    def test_defaults_match_paper(self):
        config = PipelineConfig()
        assert config.cutoff_hz == pytest.approx(0.67)
        assert config.zero_crossing_buffer == 7

    def test_band_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(cutoff_hz=0.0)
        with pytest.raises(ConfigError):
            PipelineConfig(highpass_hz=-0.1)
        with pytest.raises(ConfigError):
            PipelineConfig(highpass_hz=0.7, cutoff_hz=0.67)
        with pytest.raises(ConfigError):
            PipelineConfig(band_halfwidth_hz=0.0)

    def test_buffer_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(zero_crossing_buffer=1)

    def test_literal_paper_mode_constructible(self):
        config = PipelineConfig(highpass_hz=0.0, adaptive_band=False)
        assert config.highpass_hz == 0.0


class TestScenarioDefaults:
    def test_defaults_match_table1(self):
        defaults = ScenarioDefaults()
        assert defaults.distance_m == 4.0
        assert defaults.num_users == 1
        assert defaults.tags_per_user == 3
        assert defaults.breathing_rate_bpm == 10.0
        assert defaults.posture == "sitting"
        assert defaults.line_of_sight

    def test_table1_ranges_enforced(self):
        with pytest.raises(ConfigError):
            ScenarioDefaults(distance_m=0.5)
        with pytest.raises(ConfigError):
            ScenarioDefaults(distance_m=7.0)
        with pytest.raises(ConfigError):
            ScenarioDefaults(num_users=5)
        with pytest.raises(ConfigError):
            ScenarioDefaults(tags_per_user=4)
        with pytest.raises(ConfigError):
            ScenarioDefaults(breathing_rate_bpm=25.0)
        with pytest.raises(ConfigError):
            ScenarioDefaults(posture="hovering")


class TestNoiseConfig:
    def test_defaults_valid(self):
        NoiseConfig()

    def test_validation(self):
        with pytest.raises(ConfigError):
            NoiseConfig(rssi_noise_db=-1.0)
        with pytest.raises(ConfigError):
            NoiseConfig(breathing_rate_jitter=1.5)
        with pytest.raises(ConfigError):
            NoiseConfig(body_sway_amplitude_m=-0.1)


class TestRobustnessConfig:
    def test_defaults_valid(self):
        rb = RobustnessConfig()
        assert rb.outlier_rejection is True
        assert rb.warn_confidence == pytest.approx(0.7)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RobustnessConfig(hampel_window=0)
        with pytest.raises(ConfigError):
            RobustnessConfig(hampel_n_sigmas=0.0)
        with pytest.raises(ConfigError):
            RobustnessConfig(stale_stream_s=-1.0)
        with pytest.raises(ConfigError):
            RobustnessConfig(antenna_stale_s=0.0)
        with pytest.raises(ConfigError):
            RobustnessConfig(gap_warn_s=0.0)
        with pytest.raises(ConfigError):
            RobustnessConfig(outlier_warn_fraction=1.0)
        with pytest.raises(ConfigError):
            RobustnessConfig(warn_confidence=1.5)


class TestSystemConfig:
    def test_default_bundle(self):
        config = default_config()
        assert isinstance(config, SystemConfig)
        assert config.reader.tx_power_dbm == 30.0
        assert config.pipeline.cutoff_hz == pytest.approx(0.67)
        assert config.robustness == RobustnessConfig()
