"""The observability layer: tracer, metrics registry, exporters, manifests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs, perf
from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    Tracer,
    events_to_jsonl,
    read_events_jsonl,
    run_manifest,
    strip_volatile,
    to_prometheus,
)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer") as span:
            span.set(x=1)
            tracer.event("ping")
        assert tracer.events == []

    def test_span_ids_sequential_in_emission_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            tracer.event("p")
        with tracer.span("b"):
            pass
        ids = [e["span"] for e in tracer.events if e["event"] != "span_end"]
        assert ids == [1, 2, 3]

    def test_nesting_sets_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("leaf")
        by_name = {e["name"]: e for e in tracer.events
                   if e["event"] != "span_end"}
        assert "parent" not in by_name["outer"]
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["leaf"]["parent"] == by_name["inner"]["span"]

    def test_handle_attrs_land_on_span_end(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", phase=1) as span:
            span.set(result=42)
        start, end = tracer.events
        assert start["attrs"] == {"phase": 1}
        assert end["attrs"] == {"result": 42}

    def test_exception_closes_span_and_stamps_error(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        end = tracer.events[-1]
        assert end["event"] == "span_end"
        assert end["error"] == "ValueError"
        # The stack unwound: new spans are root spans again.
        with tracer.span("after"):
            pass
        assert "parent" not in tracer.events[-2]

    def test_wall_clock_opt_in(self):
        silent = Tracer(enabled=True, wall_clock=False)
        with silent.span("a"):
            pass
        assert "wall_s" not in silent.events[-1]
        timed = Tracer(enabled=True, wall_clock=True)
        with timed.span("a"):
            pass
        assert timed.events[-1]["wall_s"] >= 0.0

    def test_numpy_attrs_coerced_to_json_types(self):
        tracer = Tracer(enabled=True)
        tracer.event("e", n=np.int64(3), x=np.float64(0.5), pair=(1, 2))
        attrs = tracer.events[0]["attrs"]
        assert attrs == {"n": 3, "x": 0.5, "pair": [1, 2]}
        json.dumps(tracer.events)  # must not raise

    def test_detail_validation(self):
        with pytest.raises(ValueError):
            Tracer(detail="nope")
        tracer = Tracer(enabled=True, detail="slot")
        assert tracer.slot_detail
        assert not Tracer(enabled=False, detail="slot").slot_detail

    def test_absorb_rebases_and_reparents(self):
        worker = Tracer(enabled=True)
        with worker.span("scenario"):
            worker.event("gen2.round")
        parent = Tracer(enabled=True)
        with parent.span("sweep") as _:
            parent.absorb(worker.events, trial=7)
        events = parent.events
        absorbed = [e for e in events if e.get("attrs", {}).get("trial") == 7]
        assert len(absorbed) == len(worker.events)
        # Worker's root span hangs under the sweep span; IDs are unique.
        scenario_start = next(e for e in absorbed if e["name"] == "scenario"
                              and e["event"] == "span_start")
        assert scenario_start["parent"] == 1
        ids = [e["span"] for e in events if e["event"] == "span_start"]
        assert len(ids) == len(set(ids))
        # The counter advanced past absorbed IDs: no future collision.
        with parent.span("later"):
            pass
        later = [e for e in parent.events if e["name"] == "later"][0]
        assert later["span"] > max(e["span"] for e in absorbed)

    def test_clear_resets_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        tracer.clear()
        with tracer.span("b"):
            pass
        assert tracer.events[0]["span"] == 1


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("reads_total", tag="x")
        b = reg.counter("reads_total", tag="x")
        c = reg.counter("reads_total", tag="y")
        assert a is b and a is not c
        a.inc(2)
        assert reg.values("reads_total") == {(("tag", "x"),): 2.0,
                                             (("tag", "y"),): 0.0}

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("c").inc(-1)

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("bad name")
        with pytest.raises(ObservabilityError):
            reg.counter("ok", **{"bad-label": "v"})

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", bounds=(1.0, 2.0))
        hist.observe_many([0.5, 1.5, 99.0])
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == pytest.approx(101.0)

    def test_histogram_bad_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.histogram("h", bounds=())
        with pytest.raises(ObservabilityError):
            reg.histogram("h", bounds=(2.0, 1.0))
        reg.histogram("ok", bounds=(1.0, 2.0))
        with pytest.raises(ObservabilityError):
            reg.histogram("ok", bounds=(1.0, 3.0))  # incompatible re-register

    def test_snapshot_deterministic_order(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a", tag="2").inc()
        reg.counter("a", tag="1").inc()
        names = [(r["name"], tuple(sorted(r["labels"].items())))
                 for r in reg.snapshot()["counters"]]
        assert names == sorted(names)

    def test_snapshot_excludes_volatile_on_request(self):
        reg = MetricsRegistry()
        reg.counter("stable").inc()
        reg.histogram("timer", volatile=True).observe(0.5)
        full = reg.snapshot(include_volatile=True)
        det = reg.snapshot(include_volatile=False)
        assert len(full["histograms"]) == 1
        assert det["histograms"] == []
        assert len(det["counters"]) == 1

    def test_merge_adds_counters_and_histograms(self):
        a = MetricsRegistry()
        a.counter("c", k="v").inc(2)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        a.gauge("g").set(1.0)
        b = MetricsRegistry()
        b.counter("c", k="v").inc(3)
        b.histogram("h", bounds=(1.0,)).observe(5.0)
        b.gauge("g").set(9.0)
        a.merge(b.snapshot())
        assert a.counter("c", k="v").value == 5.0
        hist = a.histogram("h", bounds=(1.0,))
        assert hist.count == 2 and hist.counts == [1, 1]
        assert a.gauge("g").value == 9.0  # last-merge-wins

    def test_merge_malformed_raises(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().merge({"counters": [{"name": "x"}]})

    def test_merge_is_idempotent_on_empty(self):
        reg = MetricsRegistry()
        reg.merge(MetricsRegistry().snapshot())
        assert reg.snapshot() == {"counters": [], "gauges": [],
                                  "histograms": []}


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("a", n=1):
            tracer.event("p", x=0.5)
        path = tmp_path / "trace.jsonl"
        n = obs.write_events_jsonl(tracer.events, path)
        assert n == 3
        assert read_events_jsonl(path) == tracer.events

    def test_jsonl_is_compact_sorted_and_newline_terminated(self):
        text = events_to_jsonl([{"b": 1, "a": 2}])
        assert text == '{"a":2,"b":1}\n'
        assert events_to_jsonl([]) == ""

    def test_strip_volatile_removes_wall_clock(self):
        events = [{"event": "span_end", "span": 1, "wall_s": 0.25}]
        stripped = strip_volatile(events)
        assert stripped == [{"event": "span_end", "span": 1}]
        assert "wall_s" in events[0]  # original untouched

    def test_prometheus_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("reads_total", tag="(1, 1)").inc(5)
        reg.gauge("q_now").set(2.5)
        text = to_prometheus(reg)
        assert "# TYPE reads_total counter" in text
        assert 'reads_total{tag="(1, 1)"} 5' in text
        assert "q_now 2.5" in text

    def test_prometheus_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", bounds=(1.0, 2.0))
        hist.observe_many([0.5, 1.5, 9.0])
        text = to_prometheus(reg)
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_prometheus_type_header_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("c", tag="a").inc()
        reg.counter("c", tag="b").inc()
        text = to_prometheus(reg)
        assert text.count("# TYPE c counter") == 1

    def test_manifest_contents_and_hash_stability(self):
        from repro.config import PipelineConfig

        m1 = run_manifest(config=PipelineConfig(), seeds=[1, 2],
                          command=["repro", "obs"])
        m2 = run_manifest(config=PipelineConfig(), seeds=[1, 2],
                          command=["repro", "obs"])
        assert m1["schema"] == 1
        assert m1["command"] == ["repro", "obs"]
        assert m1["seeds"] == [1, 2]
        assert m1["config_sha256"] == m2["config_sha256"]
        assert "python" in m1["versions"] and "numpy" in m1["versions"]
        changed = run_manifest(config=PipelineConfig(cutoff_hz=0.9))
        assert changed["config_sha256"] != m1["config_sha256"]

    def test_write_manifest(self, tmp_path):
        path = tmp_path / "manifest.json"
        written = obs.write_manifest(path, seeds=[3])
        on_disk = json.loads(path.read_text())
        assert on_disk["seeds"] == [3]
        assert on_disk["config_sha256"] == written["config_sha256"]


# ----------------------------------------------------------------------
# Global session / perf facade integration
# ----------------------------------------------------------------------
class TestGlobalSession:
    def test_capture_isolates_and_restores(self):
        before = obs.get_registry()
        with obs.capture() as (tracer, registry):
            assert obs.get_tracer() is tracer
            assert obs.enabled()
            obs.event("inside")
        assert obs.get_registry() is before
        assert not obs.enabled()
        assert tracer.events[0]["name"] == "inside"

    def test_perf_follows_session_swap(self):
        with obs.capture() as (_tracer, registry):
            perf.count("probe", 4)
            assert perf.get_recorder().counters["probe"] == 4
        # Outside the capture the probe counter is gone from perf's view.
        assert "probe" not in perf.get_recorder().counters
        rows = registry.snapshot()["counters"]
        assert any(r["labels"].get("name") == "probe" and r["value"] == 4
                   for r in rows)

    def test_telemetry_scope_collects_events_and_metrics(self):
        with obs.capture():
            with perf.telemetry_scope() as scope:
                obs.event("w")
                perf.count("inner", 2)
                collected = scope.collect()
            # Restored: the outer capture session is live again.
            obs.event("outer")
        assert collected["events"][0]["name"] == "w"
        assert any(r["labels"].get("name") == "inner" and r["value"] == 2
                   for r in collected["metrics"]["counters"])

    def test_obs_snapshot_shape(self):
        with obs.capture():
            obs.counter("c").inc()
            obs.event("e")
            snap = obs.snapshot()
        assert set(snap) == {"events", "metrics"}
        assert len(snap["events"]) == 1
