"""Scalar-vs-vectorized equivalence of the report-synthesis paths.

The determinism contract (DESIGN.md, "Performance architecture"):

* With per-read noise disabled, both paths consume identical RNG streams
  — lazy per-link state (multipath tones, circuit offsets, static fades,
  ripple phases) is materialised through the same draws in the same
  order — so they emit *identical* report streams for a given seed.
  Timestamps and integer fields match exactly; float physics matches to
  1e-9 (math-vs-numpy associativity).
* With noise enabled, each path is deterministic per seed, both see the
  same read-event stream, and end-to-end estimates agree to 0.1 bpm.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.body.subject import Subject
from repro.config import ReaderConfig
from repro.core.pipeline import TagBreathe
from repro.errors import DegradedEstimateWarning
from repro.reader.reader import Reader
from repro.rf.noise import PhaseNoiseModel
from repro.sim.scenario import Scenario


def _scenario(users: int = 1, contending: int = 5) -> Scenario:
    subjects = [
        Subject(user_id=uid, distance_m=2.0 + 0.5 * uid,
                lateral_offset_m=0.6 * (uid - 1), sway_seed=uid)
        for uid in range(1, users + 1)
    ]
    scenario = Scenario(subjects)
    if contending:
        scenario = scenario.with_contending_tags(contending, seed=3)
    return scenario


def _run(vectorized: bool, scenario: Scenario, seed: int = 42,
         duration_s: float = 5.0, noise_free: bool = True,
         num_antennas: int = 1):
    kwargs = {}
    if noise_free:
        kwargs["phase_noise"] = PhaseNoiseModel(floor_rad=0.0, ref_rad=0.0)
    reader = Reader(
        config=ReaderConfig(vectorized=vectorized, num_antennas=num_antennas),
        rng=np.random.default_rng(seed),
        **kwargs,
    )
    if noise_free:
        reader.RSSI_JITTER_DB = 0.0
    return reader.run(scenario, duration_s=duration_s)


def _assert_reports_equivalent(a, b, float_tol: float = 1e-9) -> None:
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.timestamp_s == y.timestamp_s
        assert x.epc == y.epc
        assert x.channel_index == y.channel_index
        assert x.antenna_port == y.antenna_port
        assert x.phase_rad == pytest.approx(y.phase_rad, abs=float_tol)
        assert x.rssi_dbm == pytest.approx(y.rssi_dbm, abs=float_tol)
        assert x.doppler_hz == pytest.approx(y.doppler_hz, abs=float_tol)


class TestExactEquivalence:
    """RNG-free per-read noise: identical streams, lazy draws and all."""

    def test_single_user_with_contention(self):
        scenario = _scenario()
        vec = _run(True, scenario)
        ref = _run(False, scenario)
        assert len(vec) > 100
        _assert_reports_equivalent(vec, ref)

    def test_multi_user(self):
        scenario = _scenario(users=3, contending=0)
        _assert_reports_equivalent(
            _run(True, scenario), _run(False, scenario)
        )

    def test_multi_antenna(self):
        scenario = _scenario(users=2)
        vec = _run(True, scenario, num_antennas=2)
        ref = _run(False, scenario, num_antennas=2)
        assert {r.antenna_port for r in vec} == {1, 2}
        _assert_reports_equivalent(vec, ref)

    def test_items_only_environment(self):
        items = Scenario.single_user(2.0, sway_seed=0) \
            .with_contending_tags(6, seed=9).contending_tags
        scenario = Scenario([], items)
        _assert_reports_equivalent(
            _run(True, scenario), _run(False, scenario)
        )


class TestNoisyPath:
    """Default noise models: per-seed determinism + shared event stream."""

    def test_vectorized_deterministic_per_seed(self):
        scenario = _scenario()
        a = _run(True, scenario, noise_free=False)
        b = _run(True, scenario, noise_free=False)
        assert a == b

    def test_scalar_deterministic_per_seed(self):
        scenario = _scenario()
        a = _run(False, scenario, noise_free=False)
        b = _run(False, scenario, noise_free=False)
        assert a == b

    def test_same_event_stream_across_paths(self):
        # MAC arbitration consumes identical draws on both paths, so the
        # (timestamp, EPC, channel, antenna) skeleton is shared even
        # though per-read noise values differ.
        scenario = _scenario(users=2)
        vec = _run(True, scenario, noise_free=False)
        ref = _run(False, scenario, noise_free=False)
        assert [(r.timestamp_s, r.epc, r.channel_index, r.antenna_port)
                for r in vec] == \
               [(r.timestamp_s, r.epc, r.channel_index, r.antenna_port)
                for r in ref]

    def test_end_to_end_estimates_within_tolerance(self):
        # Different noise interleaving must not move the breathing-rate
        # estimate: both paths' captures agree to 0.1 bpm per user.
        scenario = _scenario(users=2, contending=5)
        estimates = {}
        for vectorized in (True, False):
            reports = _run(vectorized, scenario, duration_s=40.0,
                           noise_free=False)
            pipeline = TagBreathe(user_ids={1, 2})
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedEstimateWarning)
                estimates[vectorized] = pipeline.process(reports)
        assert set(estimates[True]) == set(estimates[False])
        for uid in estimates[True]:
            assert estimates[True][uid].rate_bpm == pytest.approx(
                estimates[False][uid].rate_bpm, abs=0.1
            )


class TestConfigFlag:
    def test_vectorized_defaults_on(self):
        assert ReaderConfig().vectorized is True

    def test_scalar_fallback_selectable(self):
        assert ReaderConfig(vectorized=False).vectorized is False
