"""Tests for the RSS-amplitude fallback estimator (repro.core.rss_estimator).

Covers the coherent group combining (per-link standing-wave signs must
not cancel), the tag-label invariance the streaming path depends on,
the insufficient-data contract, and the end-to-end fallback behaviour
under heavy phase noise.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Scenario, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.config import EstimatorConfig
from repro.core.degradation import REASON_RSS_FALLBACK
from repro.core.estimators import EstimationWindow
from repro.core.extraction import BreathExtractor
from repro.core.pipeline import TagBreathe
from repro.core.rss_estimator import RSSEstimator
from repro.errors import DegradedEstimateWarning, InsufficientDataError
from repro.rf.noise import PhaseNoiseModel
from repro.streams.timeseries import TimeSeries

RATE_BPM = 15.0


def make_window(n_groups=6, duration_s=40.0, rate_hz=40.0, seed=0,
                sign=None, noise_db=0.15, quantize=True, n=None,
                tag_labels=None):
    """A synthetic RSSI window: per-group random-sign breathing ripple.

    Mimics what the reader synthesises: each (tag, channel, antenna)
    link sees the same chest motion through its own standing-wave
    operating point — here reduced to a per-group sign and scale — on
    top of per-read jitter and 0.5 dB quantisation.
    """
    rng = np.random.default_rng(seed)
    total = n if n is not None else int(duration_s * rate_hz)
    times = np.sort(rng.uniform(0.0, duration_s, size=total))
    times += np.arange(total) * 1e-9  # strictly increasing
    group = rng.integers(0, n_groups, size=total)
    if sign is None:
        sign = rng.choice((-1.0, 1.0), size=n_groups)
    scale = rng.uniform(0.3, 0.6, size=n_groups)
    level = rng.uniform(-60.0, -50.0, size=n_groups)
    ripple = np.sin(2 * np.pi * (RATE_BPM / 60.0) * times)
    rssi = (level[group] + sign[group] * scale[group] * ripple
            + rng.normal(0.0, noise_db, size=total))
    if quantize:
        rssi = np.round(rssi * 2.0) / 2.0
    labels = tag_labels if tag_labels is not None else group
    track = TimeSeries(times, np.zeros(total))
    return EstimationWindow(
        track=track, times=times, rssi=rssi,
        channel=np.zeros(total, dtype=np.int64),
        antenna=np.ones(total, dtype=np.int64),
        tag=np.asarray(labels, dtype=np.int64))


@pytest.fixture
def estimator():
    return RSSEstimator(BreathExtractor())


class TestRecovery:
    def test_recovers_metronome_rate(self, estimator):
        window = make_window(seed=1)
        estimate = estimator.estimate(window)
        assert estimate.rate_bpm == pytest.approx(RATE_BPM, abs=1.0)

    def test_opposite_sign_groups_do_not_cancel(self, estimator):
        """The regression the PCA combiner exists for: two groups with
        equal-and-opposite ripple would cancel under naive merging."""
        window = make_window(n_groups=2, sign=np.array([1.0, -1.0]), seed=2)
        estimate = estimator.estimate(window)
        assert estimate.rate_bpm == pytest.approx(RATE_BPM, abs=1.0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_random_sign_patterns_recover(self, seed):
        window = make_window(seed=seed)
        estimate = RSSEstimator(BreathExtractor()).estimate(window)
        assert estimate.rate_bpm == pytest.approx(RATE_BPM, abs=1.5)


class TestLabelInvariance:
    def test_tag_relabeling_is_bit_identical(self, estimator):
        """Only the partition is contracted: the streaming path labels
        the same groups with different ids and must get the same bits."""
        base = make_window(seed=3)
        relabeled = make_window(
            seed=3, tag_labels=(base.tag * 977 + 13) % 4099)
        a = estimator.estimate(base)
        b = estimator.estimate(relabeled)
        assert a.rate_bpm == b.rate_bpm
        assert np.array_equal(a.signal.values, b.signal.values)


class TestInsufficientData:
    def test_too_few_reads(self, estimator):
        window = make_window(n=5, seed=4)
        with pytest.raises(InsufficientDataError):
            estimator.estimate(window)

    def test_too_few_bins(self, estimator):
        window = make_window(n=40, duration_s=1.0, seed=5)
        with pytest.raises(InsufficientDataError):
            estimator.estimate(window)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def degraded_capture(self):
        """Heavy phase noise: the regime the fallback exists for."""
        scenario = Scenario([Subject(user_id=1, distance_m=1.8,
                                     breathing=MetronomeBreathing(12.0),
                                     sway_seed=2)])
        return run_scenario(
            scenario, duration_s=50.0, seed=9,
            phase_noise=PhaseNoiseModel(floor_rad=1.2, ref_rad=0.3))

    def test_auto_falls_back_to_rss(self, degraded_capture):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            estimate = TagBreathe(user_ids={1}).process(
                degraded_capture.reports, window_s=40.0)[1]
        assert estimate.estimator == "rss"
        assert REASON_RSS_FALLBACK in estimate.degraded_reasons
        assert estimate.confidence < 1.0
        assert estimate.rate_bpm == pytest.approx(12.0, abs=1.5)

    def test_explicit_rss_engine_matches_fallback_rate(self, degraded_capture):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            auto = TagBreathe(user_ids={1}).process(
                degraded_capture.reports, window_s=40.0)[1]
            explicit = TagBreathe(
                user_ids={1}, estimators=EstimatorConfig(estimator="rss"),
            ).process(degraded_capture.reports, window_s=40.0)[1]
        assert explicit.estimator == "rss"
        assert REASON_RSS_FALLBACK not in explicit.degraded_reasons
        assert explicit.rate_bpm == auto.rate_bpm

    def test_streamed_fallback_matches_batch(self, degraded_capture):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            batch = TagBreathe(user_ids={1}).process(
                degraded_capture.reports, window_s=40.0)[1]
            engine = TagBreathe(user_ids={1})
            for report in degraded_capture.reports:
                engine.feed(report)
            streamed = engine.estimate_user(1, window_s=40.0)
        assert streamed.estimator == batch.estimator == "rss"
        assert streamed.rate_bpm == batch.rate_bpm
