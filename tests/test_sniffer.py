"""Tests for the protocol sniffer (repro.reader.sniffer)."""

import numpy as np
import pytest

from repro.epc import EPC96, TranscriptBuilder, encode_ack, encode_query_rep
from repro.epc.commands import QueryCommand, frame_epc_reply
from repro.reader import ProtocolSniffer
from repro.reader.sniffer import classify_reader_frame, classify_tag_frame


class TestFrameClassification:
    def test_query(self):
        frame = classify_reader_frame(QueryCommand(q=6, session=2).encode())
        assert frame.kind == "query"
        assert frame.fields["q"] == 6
        assert frame.fields["session"] == 2

    def test_query_rep(self):
        frame = classify_reader_frame(encode_query_rep(1))
        assert frame.kind == "query_rep"
        assert frame.fields["session"] == 1

    def test_ack(self):
        frame = classify_reader_frame(encode_ack(0xABCD))
        assert frame.kind == "ack"
        assert frame.fields["rn16"] == 0xABCD

    def test_corrupted_query_is_unknown(self):
        bits = QueryCommand().encode()
        corrupted = bits[:-1] + ("1" if bits[-1] == "0" else "0")
        assert classify_reader_frame(corrupted).kind == "unknown"

    def test_garbage_is_unknown(self):
        assert classify_reader_frame("11111").kind == "unknown"

    def test_rn16(self):
        frame = classify_tag_frame((0xBEEF).to_bytes(2, "big"))
        assert frame.kind == "rn16"
        assert frame.fields["rn16"] == 0xBEEF

    def test_epc_reply(self):
        epc = EPC96.from_user_tag(4, 2)
        frame = classify_tag_frame(frame_epc_reply(epc.value.to_bytes(12, "big")))
        assert frame.kind == "epc_reply"
        assert frame.fields["epc"] == epc

    def test_corrupt_reply_is_unknown(self):
        reply = bytearray(frame_epc_reply(bytes(12)))
        reply[3] ^= 0xFF
        assert classify_tag_frame(bytes(reply)).kind == "unknown"


class TestGarbledFrames:
    """A sniffer must classify, never crash, on corrupted air frames."""

    @pytest.mark.parametrize("bits", [
        "",                       # empty frame
        "1",                      # single bit
        "10" * 50,                # overlong garbage
        "1000" + "2" * 18,        # query-length but non-binary payload
        "00" + "xy",              # query_rep-length with garbage tail
        "1001" + "abcde",         # query_adjust-length garbage
        "01" + "z" * 16,          # ack-length garbage
    ])
    def test_garbled_reader_frames_are_unknown(self, bits):
        frame = classify_reader_frame(bits)
        assert frame.kind == "unknown"
        assert frame.fields["bits"] == bits

    def test_truncated_query_is_unknown(self):
        bits = QueryCommand(q=6, session=2).encode()
        assert classify_reader_frame(bits[:-3]).kind == "unknown"

    @pytest.mark.parametrize("payload", [
        b"",                       # empty
        b"\x01",                   # 1 byte: neither RN16 nor reply
        b"\x00" * 7,               # mid-length garbage
        bytes(range(100)),         # overlong garbage
    ])
    def test_garbled_tag_frames_are_unknown(self, payload):
        frame = classify_tag_frame(payload)
        assert frame.kind == "unknown"
        assert frame.fields["bytes"] == payload

    def test_sniffer_survives_garbled_session(self):
        """Garbled frames interleaved with a good round: the good reads
        still count, the garbage is tallied as unknown."""
        sniffer = ProtocolSniffer()
        sniffer.feed_reader_frame("11111")
        sniffer.feed_tag_frame(b"\x00" * 5)
        builder = TranscriptBuilder(rng=np.random.default_rng(3))
        sniffer.feed_transcript(
            builder.build_round(1, [("read", EPC96.from_user_tag(2, 1))])
        )
        sniffer.feed_reader_frame("")
        report = sniffer.report
        assert report.rounds == 1
        assert report.identified == [EPC96.from_user_tag(2, 1)]
        assert report.frame_counts["unknown"] == 3
        assert "unknown=3" in report.summary()

    def test_all_zero_ack_length_frame_decodes_or_unknown(self):
        # 18 zero bits: right length for an ack but wrong prefix ("01").
        frame = classify_reader_frame("0" * 18)
        assert frame.kind == "unknown"


class TestSnifferSession:
    def test_transcript_roundtrip(self):
        """Frames built by TranscriptBuilder decode back losslessly."""
        epc_a = EPC96.from_user_tag(1, 1)
        epc_b = EPC96.from_user_tag(1, 2)
        builder = TranscriptBuilder(rng=np.random.default_rng(0))
        transcript = builder.build_round(2, [
            ("read", epc_a), ("empty", None), ("collision", None),
            ("read", epc_b),
        ])
        sniffer = ProtocolSniffer()
        sniffer.feed_transcript(transcript)
        report = sniffer.report
        assert report.rounds == 1
        assert report.q_values == [2]
        assert report.identified == [epc_a, epc_b]
        assert report.frame_counts["ack"] == 2
        assert report.frame_counts["query_rep"] == 3  # slots 1-3

    def test_multi_round_counting(self):
        sniffer = ProtocolSniffer()
        builder = TranscriptBuilder(rng=np.random.default_rng(1))
        for q in (1, 2, 3):
            sniffer.feed_transcript(builder.build_round(q, [("empty", None)]))
        assert sniffer.report.rounds == 3
        assert sniffer.report.q_values == [1, 2, 3]

    def test_summary_readable(self):
        sniffer = ProtocolSniffer()
        builder = TranscriptBuilder(rng=np.random.default_rng(2))
        sniffer.feed_transcript(
            builder.build_round(0, [("read", EPC96.from_user_tag(9, 1))])
        )
        summary = sniffer.report.summary()
        assert "1 rounds" in summary
        assert "1 EPCs identified" in summary

    def test_empty_session(self):
        report = ProtocolSniffer().report
        assert report.rounds == 0
        assert "0 frames" in report.summary()
