"""Tests for the protocol sniffer (repro.reader.sniffer)."""

import numpy as np
import pytest

from repro.epc import EPC96, TranscriptBuilder, encode_ack, encode_query_rep
from repro.epc.commands import QueryCommand, frame_epc_reply
from repro.reader import ProtocolSniffer
from repro.reader.sniffer import classify_reader_frame, classify_tag_frame


class TestFrameClassification:
    def test_query(self):
        frame = classify_reader_frame(QueryCommand(q=6, session=2).encode())
        assert frame.kind == "query"
        assert frame.fields["q"] == 6
        assert frame.fields["session"] == 2

    def test_query_rep(self):
        frame = classify_reader_frame(encode_query_rep(1))
        assert frame.kind == "query_rep"
        assert frame.fields["session"] == 1

    def test_ack(self):
        frame = classify_reader_frame(encode_ack(0xABCD))
        assert frame.kind == "ack"
        assert frame.fields["rn16"] == 0xABCD

    def test_corrupted_query_is_unknown(self):
        bits = QueryCommand().encode()
        corrupted = bits[:-1] + ("1" if bits[-1] == "0" else "0")
        assert classify_reader_frame(corrupted).kind == "unknown"

    def test_garbage_is_unknown(self):
        assert classify_reader_frame("11111").kind == "unknown"

    def test_rn16(self):
        frame = classify_tag_frame((0xBEEF).to_bytes(2, "big"))
        assert frame.kind == "rn16"
        assert frame.fields["rn16"] == 0xBEEF

    def test_epc_reply(self):
        epc = EPC96.from_user_tag(4, 2)
        frame = classify_tag_frame(frame_epc_reply(epc.value.to_bytes(12, "big")))
        assert frame.kind == "epc_reply"
        assert frame.fields["epc"] == epc

    def test_corrupt_reply_is_unknown(self):
        reply = bytearray(frame_epc_reply(bytes(12)))
        reply[3] ^= 0xFF
        assert classify_tag_frame(bytes(reply)).kind == "unknown"


class TestSnifferSession:
    def test_transcript_roundtrip(self):
        """Frames built by TranscriptBuilder decode back losslessly."""
        epc_a = EPC96.from_user_tag(1, 1)
        epc_b = EPC96.from_user_tag(1, 2)
        builder = TranscriptBuilder(rng=np.random.default_rng(0))
        transcript = builder.build_round(2, [
            ("read", epc_a), ("empty", None), ("collision", None),
            ("read", epc_b),
        ])
        sniffer = ProtocolSniffer()
        sniffer.feed_transcript(transcript)
        report = sniffer.report
        assert report.rounds == 1
        assert report.q_values == [2]
        assert report.identified == [epc_a, epc_b]
        assert report.frame_counts["ack"] == 2
        assert report.frame_counts["query_rep"] == 3  # slots 1-3

    def test_multi_round_counting(self):
        sniffer = ProtocolSniffer()
        builder = TranscriptBuilder(rng=np.random.default_rng(1))
        for q in (1, 2, 3):
            sniffer.feed_transcript(builder.build_round(q, [("empty", None)]))
        assert sniffer.report.rounds == 3
        assert sniffer.report.q_values == [1, 2, 3]

    def test_summary_readable(self):
        sniffer = ProtocolSniffer()
        builder = TranscriptBuilder(rng=np.random.default_rng(2))
        sniffer.feed_transcript(
            builder.build_round(0, [("read", EPC96.from_user_tag(9, 1))])
        )
        summary = sniffer.report.summary()
        assert "1 rounds" in summary
        assert "1 EPCs identified" in summary

    def test_empty_session(self):
        report = ProtocolSniffer().report
        assert report.rounds == 0
        assert "0 frames" in report.summary()
