"""Tests for the EPC codec (Fig. 9) and the Gen2 MAC simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.epc import (
    EPC96,
    EPCMappingTable,
    Gen2Config,
    Gen2Inventory,
    decode_user_tag,
    encode_user_tag,
    expected_aggregate_read_rate,
    expected_per_tag_rate,
    expected_round_stats,
)
from repro.epc.codec import EPC_BITS, TAG_ID_BITS, USER_ID_BITS
from repro.epc.inventory import breathing_nyquist_margin, optimal_q
from repro.errors import ConfigError, EPCFormatError


class TestEPCCodec:
    def test_bit_layout(self):
        assert USER_ID_BITS + TAG_ID_BITS == EPC_BITS == 96

    def test_encode_decode_roundtrip(self):
        value = encode_user_tag(1234, 5678)
        assert decode_user_tag(value) == (1234, 5678)

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_roundtrip_property(self, user_id, tag_id):
        assert decode_user_tag(encode_user_tag(user_id, tag_id)) == (user_id, tag_id)

    def test_user_id_overflow(self):
        with pytest.raises(EPCFormatError):
            encode_user_tag(1 << 64, 0)

    def test_tag_id_overflow(self):
        with pytest.raises(EPCFormatError):
            encode_user_tag(0, 1 << 32)

    def test_negative_rejected(self):
        with pytest.raises(EPCFormatError):
            encode_user_tag(-1, 0)

    def test_epc96_hex_roundtrip(self):
        epc = EPC96.from_user_tag(7, 3)
        assert EPC96.from_hex(epc.to_hex()) == epc

    def test_hex_length(self):
        assert len(EPC96(0).to_hex()) == 24

    def test_from_hex_tolerates_separators(self):
        epc = EPC96.from_user_tag(7, 3)
        spaced = " ".join([epc.to_hex()[i:i + 4] for i in range(0, 24, 4)])
        assert EPC96.from_hex(spaced) == epc

    def test_from_hex_rejects_wrong_length(self):
        with pytest.raises(EPCFormatError):
            EPC96.from_hex("abcd")

    def test_from_hex_rejects_non_hex(self):
        with pytest.raises(EPCFormatError):
            EPC96.from_hex("z" * 24)

    def test_split_matches_fields(self):
        epc = EPC96.from_user_tag(42, 9)
        assert epc.split() == (42, 9)
        assert epc.user_id == 42
        assert epc.tag_id == 9

    def test_value_overflow_rejected(self):
        with pytest.raises(EPCFormatError):
            EPC96(1 << 96)


class TestMappingTable:
    def test_register_and_lookup(self):
        table = EPCMappingTable()
        factory = EPC96.from_hex("0123456789abcdef01234567")
        table.register(factory, user_id=5, tag_id=2)
        assert table.lookup(factory) == (5, 2)
        assert table.is_monitoring_tag(factory)

    def test_unregistered_lookup(self):
        table = EPCMappingTable()
        assert table.lookup(EPC96(99)) is None
        assert not table.is_monitoring_tag(EPC96(99))

    def test_idempotent_register(self):
        table = EPCMappingTable()
        table.register(EPC96(1), 1, 1)
        table.register(EPC96(1), 1, 1)  # same mapping: fine
        assert len(table) == 1

    def test_conflicting_remap_rejected(self):
        table = EPCMappingTable()
        table.register(EPC96(1), 1, 1)
        with pytest.raises(EPCFormatError):
            table.register(EPC96(1), 2, 2)

    def test_identity_collision_rejected(self):
        table = EPCMappingTable()
        table.register(EPC96(1), 1, 1)
        with pytest.raises(EPCFormatError):
            table.register(EPC96(2), 1, 1)


class TestGen2Config:
    def test_defaults_valid(self):
        Gen2Config()

    def test_rejects_bad_timing(self):
        with pytest.raises(ConfigError):
            Gen2Config(t_success_s=0.0)

    def test_rejects_bad_q_range(self):
        with pytest.raises(ConfigError):
            Gen2Config(q_initial=5, q_min=6)


class TestGen2Inventory:
    def test_single_tag_read_every_round(self):
        inv = Gen2Inventory(["t1"], rng=np.random.default_rng(0))
        events, stats = inv.run_round(0.0)
        assert len(events) == 1
        assert stats.reads == 1
        assert stats.collisions == 0

    def test_single_tag_rate_near_64hz(self):
        """The paper reports ~64 Hz for a lone tag (Section IV-A)."""
        inv = Gen2Inventory(["t1"], rng=np.random.default_rng(0))
        events = inv.run_for(10.0)
        rate = len(events) / 10.0
        assert 50.0 <= rate <= 85.0

    def test_many_tags_all_get_read(self):
        keys = [f"t{i}" for i in range(12)]
        inv = Gen2Inventory(keys, rng=np.random.default_rng(1))
        events = inv.run_for(5.0)
        seen = {k for _, k in events}
        assert seen == set(keys)

    def test_q_adapts_upward_for_population(self):
        keys = [f"t{i}" for i in range(30)]
        inv = Gen2Inventory(keys, rng=np.random.default_rng(2))
        inv.run_for(3.0)
        assert inv.current_q >= 3

    def test_per_tag_rate_dilutes_with_population(self):
        """Fig. 14's mechanism: contending tags dilute per-tag rate."""
        def per_tag_rate(n):
            inv = Gen2Inventory([f"t{i}" for i in range(n)],
                                rng=np.random.default_rng(3))
            events = inv.run_for(8.0)
            return len(events) / 8.0 / n
        assert per_tag_rate(1) > per_tag_rate(6) > per_tag_rate(24)

    def test_aggregate_rate_grows_then_saturates(self):
        def agg(n):
            inv = Gen2Inventory([f"t{i}" for i in range(n)],
                                rng=np.random.default_rng(4))
            return len(inv.run_for(8.0)) / 8.0
        assert agg(6) > agg(1)  # more tags fill more slots per round

    def test_unenergized_tag_never_reads(self):
        inv = Gen2Inventory(
            ["a", "b"],
            rng=np.random.default_rng(5),
            energized=lambda key, t: key != "b",
        )
        events = inv.run_for(3.0)
        assert all(k == "a" for _, k in events)

    def test_link_failure_blocks_read(self):
        inv = Gen2Inventory(
            ["a"], rng=np.random.default_rng(6),
            link_ok=lambda key, t: False,
        )
        events, stats = inv.run_round(0.0)
        assert events == []
        assert stats.link_failures == 1

    def test_timestamps_increase(self):
        inv = Gen2Inventory([f"t{i}" for i in range(5)],
                            rng=np.random.default_rng(7))
        events = inv.run_for(4.0)
        times = [t for t, _ in events]
        assert times == sorted(times)

    def test_events_respect_duration(self):
        inv = Gen2Inventory(["a"], rng=np.random.default_rng(8))
        events = inv.run_for(2.0, t_start=1.0)
        assert all(1.0 <= t < 3.0 for t, _ in events)

    def test_rejects_empty_population(self):
        with pytest.raises(ConfigError):
            Gen2Inventory([])

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ConfigError):
            Gen2Inventory(["a", "a"])

    def test_rejects_bad_duration(self):
        inv = Gen2Inventory(["a"])
        with pytest.raises(ConfigError):
            inv.run_for(0.0)

    def test_round_log_accumulates(self):
        inv = Gen2Inventory(["a"], rng=np.random.default_rng(9))
        inv.run_for(1.0)
        assert len(inv.round_log) > 10
        for stats in inv.round_log:
            assert stats.duration_s > 0


class TestAnalyticInventory:
    def test_expected_counts_sum_to_slots(self):
        stats = expected_round_stats(10, 4)
        total = stats.expected_singles + stats.expected_empties + stats.expected_collisions
        assert total == pytest.approx(stats.slots, rel=1e-9)

    def test_single_tag_single_slot(self):
        stats = expected_round_stats(1, 0)
        assert stats.expected_singles == 1.0
        assert stats.expected_collisions == 0.0

    def test_two_tags_one_slot_always_collide(self):
        stats = expected_round_stats(2, 0)
        assert stats.expected_singles == 0.0
        assert stats.expected_collisions == 1.0

    def test_optimal_q_grows_with_population(self):
        assert optimal_q(1) <= optimal_q(10) <= optimal_q(100)

    def test_per_tag_rate_monotone_decreasing(self):
        rates = [expected_per_tag_rate(n) for n in (1, 3, 12, 33)]
        assert rates == sorted(rates, reverse=True)

    def test_analytic_matches_simulation_at_frozen_q(self):
        """With Q frozen at the analytic optimum, the event-driven
        simulator reproduces the closed-form throughput."""
        n = 12
        q = optimal_q(n)
        config = Gen2Config(q_initial=q, q_min=q, q_max=q)
        inv = Gen2Inventory([f"t{i}" for i in range(n)], config=config,
                            rng=np.random.default_rng(10))
        sim_rate = len(inv.run_for(20.0)) / 20.0
        stats = expected_round_stats(n, q)
        assert sim_rate == pytest.approx(stats.reads_per_second, rel=0.15)

    def test_adaptive_q_within_factor_of_optimum(self):
        """The Q algorithm oscillates but stays within ~2x of optimal."""
        n = 12
        inv = Gen2Inventory([f"t{i}" for i in range(n)],
                            rng=np.random.default_rng(10))
        sim_rate = len(inv.run_for(20.0)) / 20.0
        analytic = expected_aggregate_read_rate(n)
        assert analytic / 2.5 < sim_rate <= analytic * 1.1

    def test_link_success_scales_rate(self):
        full = expected_aggregate_read_rate(5, link_success=1.0)
        half = expected_aggregate_read_rate(5, link_success=0.5)
        assert half < full

    def test_link_success_validation(self):
        with pytest.raises(ConfigError):
            expected_aggregate_read_rate(5, link_success=1.5)

    def test_nyquist_margin(self):
        # 7 Hz per-tag sampling vs 20 bpm breathing: ample margin.
        assert breathing_nyquist_margin(7.0, 20.0) == pytest.approx(10.5)

    def test_nyquist_margin_validation(self):
        with pytest.raises(ConfigError):
            breathing_nyquist_margin(7.0, 0.0)

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=8))
    @settings(max_examples=40)
    def test_expected_counts_nonnegative(self, n, q):
        stats = expected_round_stats(n, q)
        assert stats.expected_singles >= 0
        assert stats.expected_empties >= 0
        assert stats.expected_collisions >= 0
        assert stats.expected_duration_s > 0
