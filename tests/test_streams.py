"""Unit and property tests for repro.streams."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    EmptyStreamError,
    NonMonotonicTimeError,
    StreamError,
)
from repro.streams import (
    RingBuffer,
    StreamBuffer,
    TimeSeries,
    bin_mean,
    bin_sum,
    resample_linear,
    sample_interval_stats,
    sliding_windows,
    window_slices,
)


def make_series(n=10, rate=5.0):
    return TimeSeries.regular(np.sin(np.arange(n)), rate)


class TestTimeSeriesConstruction:
    def test_basic(self):
        ts = TimeSeries([0.0, 1.0, 2.0], [5.0, 6.0, 7.0])
        assert len(ts) == 3
        assert ts.start == 0.0
        assert ts.end == 2.0

    def test_empty(self):
        ts = TimeSeries.empty()
        assert len(ts) == 0
        assert not ts

    def test_rejects_length_mismatch(self):
        with pytest.raises(StreamError):
            TimeSeries([0.0, 1.0], [1.0])

    def test_rejects_non_monotonic(self):
        with pytest.raises(NonMonotonicTimeError):
            TimeSeries([0.0, 2.0, 1.0], [1.0, 2.0, 3.0])

    def test_rejects_duplicate_times(self):
        with pytest.raises(NonMonotonicTimeError):
            TimeSeries([0.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_rejects_2d(self):
        with pytest.raises(StreamError):
            TimeSeries([[0.0], [1.0]], [[1.0], [2.0]])

    def test_from_pairs(self):
        ts = TimeSeries.from_pairs([(0.0, 1.0), (0.5, 2.0)])
        assert len(ts) == 2
        assert ts.values[1] == 2.0

    def test_from_pairs_empty(self):
        assert not TimeSeries.from_pairs([])

    def test_regular(self):
        ts = TimeSeries.regular([1, 2, 3, 4], rate_hz=2.0, t0=10.0)
        assert ts.times[0] == 10.0
        assert ts.times[-1] == pytest.approx(11.5)

    def test_regular_rejects_bad_rate(self):
        with pytest.raises(StreamError):
            TimeSeries.regular([1, 2], rate_hz=0.0)

    def test_values_read_only(self):
        ts = make_series()
        with pytest.raises(ValueError):
            ts.values[0] = 99.0


class TestFromTrusted:
    def test_wraps_without_copy(self):
        t = np.array([0.0, 1.0, 2.0])
        v = np.array([5.0, 6.0, 7.0])
        ts = TimeSeries.from_trusted(t, v)
        assert ts.times is t
        assert ts.values is v
        assert len(ts) == 3

    def test_arrays_become_read_only(self):
        t = np.array([0.0, 1.0])
        v = np.array([1.0, 2.0])
        ts = TimeSeries.from_trusted(t, v)
        with pytest.raises(ValueError):
            ts.times[0] = 9.0
        with pytest.raises(ValueError):
            ts.values[0] = 9.0

    def test_equivalent_to_validating_constructor(self):
        t = np.linspace(0.0, 5.0, 20)
        v = np.sin(t)
        assert TimeSeries.from_trusted(t.copy(), v.copy()) == \
            TimeSeries(t, v)


class TestTimeSeriesProperties:
    def test_duration(self):
        ts = TimeSeries([1.0, 2.0, 4.0], [0, 0, 0])
        assert ts.duration == pytest.approx(3.0)

    def test_duration_single_sample(self):
        assert TimeSeries([1.0], [0.0]).duration == 0.0

    def test_mean_rate(self):
        ts = TimeSeries.regular(range(11), rate_hz=10.0)
        assert ts.mean_rate_hz() == pytest.approx(10.0)

    def test_start_of_empty_raises(self):
        with pytest.raises(EmptyStreamError):
            _ = TimeSeries.empty().start

    def test_equality(self):
        assert make_series() == make_series()
        assert make_series(5) != make_series(6)

    def test_iteration(self):
        pairs = list(TimeSeries([0.0, 1.0], [5.0, 6.0]))
        assert pairs == [(0.0, 5.0), (1.0, 6.0)]


class TestTimeSeriesTransforms:
    def test_slice_time(self):
        ts = TimeSeries.regular(range(10), rate_hz=1.0)
        sub = ts.slice_time(2.0, 5.0)
        assert list(sub.times) == [2.0, 3.0, 4.0]

    def test_shift_time(self):
        ts = make_series().shift_time(5.0)
        assert ts.start == pytest.approx(5.0)

    def test_demean(self):
        ts = TimeSeries([0, 1, 2], [1.0, 2.0, 3.0]).demean()
        assert ts.values.mean() == pytest.approx(0.0)

    def test_demean_empty_noop(self):
        assert not TimeSeries.empty().demean()

    def test_normalize_peak_is_one(self):
        ts = TimeSeries([0, 1, 2, 3], [0.0, 5.0, -10.0, 0.0]).normalize()
        assert np.abs(ts.values).max() == pytest.approx(1.0)
        assert ts.values.mean() == pytest.approx(0.0, abs=1e-12)

    def test_normalize_constant_series(self):
        ts = TimeSeries([0, 1], [3.0, 3.0]).normalize()
        assert np.all(ts.values == 0.0)

    def test_cumsum(self):
        ts = TimeSeries([0, 1, 2], [1.0, 2.0, 3.0]).cumsum()
        assert list(ts.values) == [1.0, 3.0, 6.0]

    def test_diff(self):
        ts = TimeSeries([0, 1, 2], [1.0, 4.0, 9.0]).diff()
        assert list(ts.values) == [3.0, 5.0]
        assert list(ts.times) == [1.0, 2.0]

    def test_diff_short(self):
        assert not TimeSeries([0.0], [1.0]).diff()

    def test_cumsum_diff_inverse(self):
        ts = make_series(20)
        recovered = ts.cumsum().diff()
        np.testing.assert_allclose(recovered.values, ts.values[1:], atol=1e-12)

    def test_concat(self):
        a = TimeSeries([0, 1], [1.0, 2.0])
        b = TimeSeries([2, 3], [3.0, 4.0])
        joined = a.concat(b)
        assert len(joined) == 4

    def test_concat_rejects_overlap(self):
        a = TimeSeries([0, 2], [1.0, 2.0])
        b = TimeSeries([1, 3], [3.0, 4.0])
        with pytest.raises(NonMonotonicTimeError):
            a.concat(b)

    def test_merge_interleaves(self):
        a = TimeSeries([0.0, 2.0], [1.0, 1.0])
        b = TimeSeries([1.0, 3.0], [2.0, 2.0])
        merged = TimeSeries.merge([a, b])
        assert list(merged.times) == [0.0, 1.0, 2.0, 3.0]
        assert list(merged.values) == [1.0, 2.0, 1.0, 2.0]

    def test_merge_drops_duplicate_times(self):
        a = TimeSeries([0.0, 1.0], [1.0, 1.0])
        b = TimeSeries([1.0, 2.0], [2.0, 2.0])
        merged = TimeSeries.merge([a, b])
        assert list(merged.times) == [0.0, 1.0, 2.0]

    def test_merge_empty_inputs(self):
        assert not TimeSeries.merge([TimeSeries.empty(), TimeSeries.empty()])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_cumsum_last_equals_sum(self, values):
        ts = TimeSeries.regular(values, rate_hz=1.0)
        assert ts.cumsum().values[-1] == pytest.approx(sum(values), rel=1e-9, abs=1e-6)


class TestRingBuffer:
    def test_append_and_snapshot(self):
        rb = RingBuffer(4)
        for i in range(3):
            rb.append(float(i), float(i * 10))
        snap = rb.snapshot()
        assert list(snap.values) == [0.0, 10.0, 20.0]

    def test_eviction(self):
        rb = RingBuffer(3)
        for i in range(5):
            rb.append(float(i), float(i))
        snap = rb.snapshot()
        assert list(snap.times) == [2.0, 3.0, 4.0]
        assert rb.full

    def test_rejects_non_monotonic(self):
        rb = RingBuffer(3)
        rb.append(1.0, 0.0)
        with pytest.raises(NonMonotonicTimeError):
            rb.append(1.0, 0.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(StreamError):
            RingBuffer(0)

    def test_clear(self):
        rb = RingBuffer(3)
        rb.append(0.0, 1.0)
        rb.clear()
        assert len(rb) == 0
        assert rb.last_time() is None

    def test_extend(self):
        rb = RingBuffer(10)
        rb.extend(make_series(5))
        assert len(rb) == 5

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=60))
    @settings(max_examples=30)
    def test_snapshot_keeps_newest(self, capacity, n):
        rb = RingBuffer(capacity)
        for i in range(n):
            rb.append(float(i), float(i))
        snap = rb.snapshot()
        assert len(snap) == min(capacity, n)
        if n:
            assert snap.times[-1] == float(n - 1)

    def test_eviction_at_exact_capacity(self):
        """Wrap-around with an exactly-full buffer: the next append must
        evict precisely the oldest sample and keep snapshot order."""
        rb = RingBuffer(4)
        for i in range(4):
            rb.append(float(i), float(i * 10))
        assert rb.full and len(rb) == 4
        rb.append(4.0, 40.0)  # first eviction: head wraps to slot 1
        assert rb.full and len(rb) == 4
        snap = rb.snapshot()
        assert list(snap.times) == [1.0, 2.0, 3.0, 4.0]
        assert list(snap.values) == [10.0, 20.0, 30.0, 40.0]

    def test_eviction_full_wraparound_cycle(self):
        """Appending capacity more samples into a full buffer replaces
        every slot; the snapshot stays sorted across the wrap point."""
        rb = RingBuffer(3)
        for i in range(3):
            rb.append(float(i), float(i))
        for i in range(3, 6):
            rb.append(float(i), float(i))
        snap = rb.snapshot()
        assert list(snap.times) == [3.0, 4.0, 5.0]
        assert rb.last_time() == 5.0

    def test_capacity_one_always_newest(self):
        rb = RingBuffer(1)
        for i in range(5):
            rb.append(float(i), float(i))
        assert len(rb) == 1
        assert list(rb.snapshot().times) == [4.0]

    def test_offer_drops_and_counts(self):
        rb = RingBuffer(4)
        assert rb.offer(1.0, 0.0) is True
        assert rb.offer(1.0, 0.0) is False  # duplicate time
        assert rb.offer(0.5, 0.0) is False  # late
        assert rb.offer(2.0, 0.0) is True
        assert rb.dropped == 2
        assert len(rb) == 2

    def test_clear_resets_dropped(self):
        rb = RingBuffer(2)
        rb.offer(1.0, 0.0)
        rb.offer(0.5, 0.0)
        rb.clear()
        assert rb.dropped == 0

    def test_lazy_allocation_grows_toward_capacity(self):
        """A large-capacity buffer allocates 64 slots up front and doubles
        as it fills, never past capacity."""
        rb = RingBuffer(1000)
        assert rb.allocated == 64
        for i in range(65):
            rb.append(float(i), float(i))
        assert rb.allocated == 128
        for i in range(65, 1001):
            rb.append(float(i), float(i))
        assert rb.allocated == 1000
        assert rb.nbytes == 2 * 1000 * 8

    def test_growth_preserves_order_and_oldest_sample(self):
        """Regression: when appends exactly fill the allocation the write
        head wraps to 0, and growth must move it back past the live prefix
        or the next append silently overwrites the oldest sample."""
        rb = RingBuffer(200)
        for i in range(70):  # crosses the 64-slot initial allocation
            rb.append(float(i), float(i * 2))
        snap = rb.snapshot()
        assert list(snap.times) == [float(i) for i in range(70)]
        assert snap.values[0] == 0.0 and snap.values[-1] == 138.0

    def test_clear_releases_grown_allocation(self):
        rb = RingBuffer(1000)
        for i in range(500):
            rb.append(float(i), float(i))
        assert rb.allocated >= 512
        rb.clear()
        assert rb.allocated == 64
        assert len(rb) == 0


class TestStreamBuffer:
    def test_append_and_window(self):
        sb = StreamBuffer()
        for i in range(10):
            sb.append(float(i), float(i))
        window = sb.window(3.0)
        assert window.times[0] >= 6.0

    def test_trim(self):
        sb = StreamBuffer()
        for i in range(10):
            sb.append(float(i), float(i))
        dropped = sb.trim_before(5.0)
        assert dropped == 5
        assert sb.snapshot().times[0] == 5.0

    def test_last(self):
        sb = StreamBuffer()
        assert sb.last() is None
        sb.append(1.0, 2.0)
        assert sb.last() == (1.0, 2.0)

    def test_rejects_non_monotonic(self):
        sb = StreamBuffer()
        sb.append(1.0, 0.0)
        with pytest.raises(NonMonotonicTimeError):
            sb.append(0.5, 0.0)

    def test_offer_drops_and_counts(self):
        sb = StreamBuffer()
        assert sb.offer(1.0, 0.0) is True
        assert sb.offer(1.0, 0.0) is False
        assert sb.offer(0.5, 0.0) is False
        assert sb.offer(2.0, 1.0) is True
        assert sb.dropped == 2
        assert len(sb) == 2


class TestBinning:
    def test_bin_sum_basic(self):
        ts = TimeSeries([0.1, 0.2, 1.1, 1.2], [1.0, 2.0, 3.0, 4.0])
        binned = bin_sum(ts, 1.0, t_start=0.0, t_end=2.0)
        assert list(binned.values) == [3.0, 7.0]

    def test_bin_sum_empty_bins_are_zero(self):
        ts = TimeSeries([0.1, 2.1], [1.0, 1.0])
        binned = bin_sum(ts, 1.0, t_start=0.0, t_end=3.0)
        assert list(binned.values) == [1.0, 0.0, 1.0]

    def test_bin_sum_total_preserved(self):
        ts = make_series(50, rate=7.0)
        binned = bin_sum(ts, 0.5)
        assert binned.values.sum() == pytest.approx(ts.values.sum())

    def test_bin_sum_empty_needs_range(self):
        with pytest.raises(EmptyStreamError):
            bin_sum(TimeSeries.empty(), 1.0)

    def test_bin_mean_interpolates_gaps(self):
        ts = TimeSeries([0.5, 2.5], [1.0, 3.0])
        binned = bin_mean(ts, 1.0, t_start=0.0, t_end=3.0)
        assert binned.values[1] == pytest.approx(2.0)

    def test_bin_rejects_bad_width(self):
        with pytest.raises(StreamError):
            bin_sum(make_series(), 0.0)

    def test_bin_sum_range_without_samples_raises(self):
        """The shared empty-range contract: a requested range containing
        no samples is an error, not an all-zero series."""
        ts = TimeSeries([10.0, 11.0], [1.0, 2.0])
        with pytest.raises(EmptyStreamError):
            bin_sum(ts, 1.0, t_start=0.0, t_end=5.0)

    def test_bin_mean_range_without_samples_raises(self):
        """bin_mean shares bin_sum's contract — it must not silently
        interpolate a flat signal out of nothing."""
        ts = TimeSeries([10.0, 11.0], [1.0, 2.0])
        with pytest.raises(EmptyStreamError):
            bin_mean(ts, 1.0, t_start=0.0, t_end=5.0)

    def test_bin_mean_empty_series_needs_range(self):
        with pytest.raises(EmptyStreamError):
            bin_mean(TimeSeries.empty(), 1.0)

    def test_sorted_histogram_matches_numpy(self):
        """The hot-path binning kernel is bit-identical to np.histogram
        on sorted unique times (the TimeSeries invariant)."""
        from repro.streams.resample import _sorted_histogram

        rng = np.random.default_rng(3)
        t = np.unique(np.sort(rng.uniform(0.0, 20.0, 500)))
        w = rng.normal(size=t.size)
        edges = -1.0 + np.arange(101) * 0.22
        counts_ref, _ = np.histogram(t, bins=edges)
        sums_ref, _ = np.histogram(t, bins=edges, weights=w)
        np.testing.assert_array_equal(_sorted_histogram(t, edges),
                                      counts_ref)
        np.testing.assert_array_equal(
            _sorted_histogram(t, edges, weights=w).view(np.uint64),
            sums_ref.view(np.uint64))


class TestResample:
    def test_linear_grid(self):
        ts = TimeSeries([0.0, 1.0], [0.0, 10.0])
        regular = resample_linear(ts, 4.0)
        assert regular.values[1] == pytest.approx(2.5)

    def test_needs_two_samples(self):
        with pytest.raises(EmptyStreamError):
            resample_linear(TimeSeries([0.0], [1.0]), 10.0)

    def test_interval_stats(self):
        ts = TimeSeries([0.0, 1.0, 3.0], [0, 0, 0])
        mean, lo, hi = sample_interval_stats(ts)
        assert (mean, lo, hi) == (1.5, 1.0, 2.0)


class TestWindows:
    def test_slices_cover_span(self):
        slices = window_slices(0.0, 10.0, 4.0, 2.0)
        assert slices[0] == (0.0, 4.0)
        assert slices[-1][1] == pytest.approx(10.0)

    def test_short_span_single_window(self):
        assert window_slices(0.0, 3.0, 10.0, 1.0) == [(0.0, 3.0)]

    def test_rejects_bad_params(self):
        with pytest.raises(StreamError):
            window_slices(0.0, 10.0, 0.0, 1.0)
        with pytest.raises(StreamError):
            window_slices(5.0, 5.0, 1.0, 1.0)

    def test_sliding_windows_yield_subseries(self):
        ts = TimeSeries.regular(range(100), rate_hz=10.0)
        windows = list(sliding_windows(ts, 2.0, 1.0))
        assert len(windows) >= 8
        assert all(w.duration <= 2.0 + 1e-9 for w in windows)

    def test_sliding_windows_empty(self):
        assert list(sliding_windows(TimeSeries.empty(), 1.0, 1.0)) == []
