"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.users == 1
        assert args.distance == 3.0
        assert args.duration == 60.0

    def test_record_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["record"])


class TestCommands:
    def test_regions(self, capsys):
        assert main(["regions"]) == 0
        out = capsys.readouterr().out
        assert "FCC" in out and "ETSI" in out
        assert "hopping" in out

    def test_demo_single_user(self, capsys):
        code = main(["demo", "--duration", "30", "--rate", "12",
                     "--distance", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "estimate" in out
        assert "bpm" in out
        assert "accuracy" in out

    def test_demo_multi_user(self, capsys):
        code = main(["demo", "--users", "2", "--duration", "30",
                     "--distance", "2", "--seed", "4"])
        out = capsys.readouterr().out
        assert code == 0
        # Two user rows with estimates.
        assert out.count("bpm") >= 2

    def test_record_then_analyze(self, tmp_path, capsys):
        trace = tmp_path / "capture.csv"
        assert main(["record", "--duration", "30", "--distance", "2",
                     "--seed", "5", "--out", str(trace)]) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["analyze", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "reports over" in out
        assert "bpm" in out

    def test_analyze_custom_cutoff(self, tmp_path, capsys):
        trace = tmp_path / "capture.csv"
        main(["record", "--duration", "30", "--distance", "2",
              "--rate", "18", "--seed", "6", "--out", str(trace)])
        capsys.readouterr()
        assert main(["analyze", str(trace), "--cutoff-hz", "1.0"]) == 0
