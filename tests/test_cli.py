"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.users == 1
        assert args.distance == 3.0
        assert args.duration == 60.0

    def test_record_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["record"])

    def test_faults_defaults(self):
        # None (not 0.0): an explicit ``--drop 0`` must be distinguishable
        # from an absent flag, so zero severities are honoured as no-ops.
        args = build_parser().parse_args(["faults"])
        assert args.drop is None
        assert args.bursty_drop is None
        assert args.fault_seed == 0

    def test_faults_bad_severity_fails_before_simulation(self, capsys):
        assert main(["faults", "--bursty-drop", "1.5"]) == 2
        captured = capsys.readouterr()
        assert "severity must be in [0, 1]" in captured.err
        assert "simulating" not in captured.out

    def test_faults_explicit_zero_severity_is_noop(self, capsys):
        code = main(["faults", "--duration", "30", "--seed", "3",
                     "--drop", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "severity=0" in out
        # The zero-severity chain is a no-op: the data row shows the same
        # bpm for the clean and the faulted run.
        row = [ln for ln in out.splitlines() if ln.startswith("1 ")][0]
        _, _, clean_bpm, faulted_bpm = row.split()[:4]
        assert clean_bpm == faulted_bpm


class TestCommands:
    def test_regions(self, capsys):
        assert main(["regions"]) == 0
        out = capsys.readouterr().out
        assert "FCC" in out and "ETSI" in out
        assert "hopping" in out

    def test_demo_single_user(self, capsys):
        code = main(["demo", "--duration", "30", "--rate", "12",
                     "--distance", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "estimate" in out
        assert "bpm" in out
        assert "accuracy" in out

    def test_faults_explicit_chain(self, capsys):
        code = main(["faults", "--duration", "30", "--rate", "12",
                     "--distance", "2", "--seed", "3",
                     "--bursty-drop", "0.3", "--tag-death", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "injected faults" in out
        assert "bursty_drop" in out and "tag_death" in out
        assert "clean bpm" in out and "faulted bpm" in out
        assert "conf" in out

    def test_faults_default_chain(self, capsys):
        code = main(["faults", "--duration", "45", "--distance", "2",
                     "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bursty_drop" in out  # the representative default chain

    def test_demo_multi_user(self, capsys):
        code = main(["demo", "--users", "2", "--duration", "30",
                     "--distance", "2", "--seed", "4"])
        out = capsys.readouterr().out
        assert code == 0
        # Two user rows with estimates.
        assert out.count("bpm") >= 2

    def test_record_then_analyze(self, tmp_path, capsys):
        trace = tmp_path / "capture.csv"
        assert main(["record", "--duration", "30", "--distance", "2",
                     "--seed", "5", "--out", str(trace)]) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["analyze", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "reports over" in out
        assert "bpm" in out

    def test_analyze_custom_cutoff(self, tmp_path, capsys):
        trace = tmp_path / "capture.csv"
        main(["record", "--duration", "30", "--distance", "2",
              "--rate", "18", "--seed", "6", "--out", str(trace)])
        capsys.readouterr()
        assert main(["analyze", str(trace), "--cutoff-hz", "1.0"]) == 0
