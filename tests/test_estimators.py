"""Tests for the estimator lattice (repro.core.estimators).

The load-bearing guarantee: extracting the :class:`BreathEstimator`
interface changed *nothing* about the paper's zero-crossing path — the
refactored pipeline is bit-identical to the pre-interface behaviour
(the committed golden traces in ``tests/test_golden_trace.py`` pin the
absolute numbers; here we pin the delegation itself and the selection
logic around it).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Scenario, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.config import EstimatorConfig
from repro.core.degradation import (REASON_PHASE_DEGRADED,
                                    REASON_RSS_FALLBACK)
from repro.core.estimators import (EstimationWindow, ZeroCrossingEstimator,
                                   build_estimators, resolve_estimator,
                                   select_estimator, track_roughness)
from repro.core.extraction import BreathExtractor
from repro.core.pipeline import TagBreathe
from repro.errors import ExtractionError
from repro.streams.timeseries import TimeSeries

CONFIG = EstimatorConfig()


@pytest.fixture(scope="module")
def clean_capture():
    scenario = Scenario([Subject(user_id=1, distance_m=2.0,
                                 breathing=MetronomeBreathing(12.0),
                                 sway_seed=0)])
    return run_scenario(scenario, duration_s=30.0, seed=11)


class TestLattice:
    def test_build_estimators_names(self):
        lattice = build_estimators(BreathExtractor())
        assert set(lattice) == {"zero_crossing", "spectral", "rss"}
        for name, estimator in lattice.items():
            assert estimator.name == name

    def test_zero_crossing_delegates_verbatim(self):
        """The interface wrapper IS the extractor call, bit for bit."""
        extractor = BreathExtractor()
        rng = np.random.default_rng(3)
        times = np.arange(0.0, 30.0, 0.05)
        values = 0.005 * np.sin(2 * np.pi * 0.2 * times)
        values += rng.normal(0.0, 2e-4, size=times.shape[0])
        track = TimeSeries(times, values)
        window = EstimationWindow(
            track=track, times=times, rssi=np.zeros_like(times),
            channel=np.zeros(times.shape[0], dtype=np.int64),
            antenna=np.ones(times.shape[0], dtype=np.int64),
            tag=np.zeros(times.shape[0], dtype=np.int64))
        direct = extractor.estimate(track)
        via_interface = ZeroCrossingEstimator(extractor).estimate(window)
        assert via_interface.rate_bpm == direct.rate_bpm
        assert np.array_equal(via_interface.rate_series.values,
                              direct.rate_series.values)

    def test_clean_pipeline_uses_zero_crossing(self, clean_capture):
        estimate = TagBreathe(user_ids={1}).process(clean_capture.reports)[1]
        assert estimate.estimator == "zero_crossing"
        assert REASON_RSS_FALLBACK not in estimate.degraded_reasons

    def test_explicit_override_matches_auto_on_clean(self, clean_capture):
        """auto == explicit zero_crossing on a clean capture, bit for bit."""
        auto = TagBreathe(user_ids={1}).process(clean_capture.reports)[1]
        explicit = TagBreathe(
            user_ids={1},
            estimators=EstimatorConfig(estimator="zero_crossing"),
        ).process(clean_capture.reports)[1]
        assert explicit.estimate.rate_bpm == auto.estimate.rate_bpm
        assert explicit.confidence == auto.confidence

    def test_spectral_estimator_selectable(self, clean_capture):
        estimate = TagBreathe(
            user_ids={1},
            estimators=EstimatorConfig(estimator="spectral"),
        ).process(clean_capture.reports)[1]
        assert estimate.estimator == "spectral"
        assert estimate.rate_bpm == pytest.approx(12.0, abs=2.5)


class TestRoughness:
    def test_short_track_is_smooth(self):
        assert track_roughness(TimeSeries(np.array([0.0]),
                                          np.array([1.0]))) == 0.0

    def test_known_roughness(self):
        track = TimeSeries(np.arange(5.0), np.array([0., 1., 0., 1., 0.]))
        assert track_roughness(track) == 1.0

    def test_clean_track_below_enter_threshold(self, clean_capture):
        engine = TagBreathe(user_ids={1})
        track = engine.fused_track(1, clean_capture.reports)
        assert track_roughness(track) < CONFIG.roughness_enter_m


class TestSelection:
    @settings(max_examples=50, deadline=None)
    @given(roughness=st.floats(0.0, 0.05),
           previous=st.sampled_from([None, "zero_crossing", "rss"]),
           explicit=st.sampled_from(["zero_crossing", "spectral", "rss"]))
    def test_explicit_mode_always_wins(self, roughness, previous, explicit):
        config = EstimatorConfig(estimator=explicit)
        assert select_estimator(config, roughness, previous) == explicit

    @settings(max_examples=50, deadline=None)
    @given(roughness=st.floats(0.0, 0.05),
           previous=st.sampled_from([None, "zero_crossing", "rss"]))
    def test_auto_hysteresis(self, roughness, previous):
        chosen = select_estimator(CONFIG, roughness, previous)
        assert chosen in ("zero_crossing", "rss")
        if roughness >= CONFIG.roughness_enter_m:
            assert chosen == "rss"
        elif roughness < CONFIG.roughness_exit_m:
            assert chosen == "zero_crossing"
        else:  # inside the hysteresis band: keep history
            expected = "rss" if previous == "rss" else "zero_crossing"
            assert chosen == expected

    def test_band_is_sticky_both_ways(self):
        mid = 0.5 * (CONFIG.roughness_exit_m + CONFIG.roughness_enter_m)
        assert select_estimator(CONFIG, mid, "rss") == "rss"
        assert select_estimator(CONFIG, mid, "zero_crossing") == "zero_crossing"
        assert select_estimator(CONFIG, mid, None) == "zero_crossing"


class TestResolve:
    def test_bad_override_raises(self):
        with pytest.raises(ExtractionError):
            resolve_estimator(CONFIG, 0.0, None, "fft", [])

    def test_override_costs_nothing(self):
        reasons = []
        name, factor = resolve_estimator(CONFIG, 1.0, None, "rss", reasons)
        assert (name, factor) == ("rss", 1.0)
        assert reasons == []

    def test_auto_fallback_is_a_degradation(self):
        reasons = []
        name, factor = resolve_estimator(
            CONFIG, CONFIG.roughness_enter_m * 2, None, None, reasons)
        assert name == "rss"
        assert factor == pytest.approx(0.9)
        assert reasons == [REASON_PHASE_DEGRADED, REASON_RSS_FALLBACK]

    def test_clean_auto_is_free(self):
        reasons = []
        name, factor = resolve_estimator(CONFIG, 0.0, None, None, reasons)
        assert (name, factor) == ("zero_crossing", 1.0)
        assert reasons == []
