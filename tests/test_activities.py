"""Tests for transient motion and monitoring robustness under it."""

import numpy as np
import pytest

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import (
    MetronomeBreathing,
    RestlessBreathing,
    Subject,
    TransientMotion,
)
from repro.core.tracking import BreathingRateTracker
from repro.errors import BodyModelError


class TestTransientMotion:
    def test_schedule_respects_rate(self):
        motion = TransientMotion(rate_per_minute=3.0, horizon_s=600.0, seed=0)
        # ~30 bursts expected over 10 minutes.
        assert 15 <= len(motion.burst_times) <= 50

    def test_zero_rate_means_no_bursts(self):
        motion = TransientMotion(rate_per_minute=0.0, seed=0)
        assert motion.burst_times == []
        assert motion.displacement(10.0) == 0.0

    def test_burst_shape(self):
        motion = TransientMotion(rate_per_minute=1.0, amplitude_m=0.04,
                                 duration_s=2.0, seed=1)
        start = motion.burst_times[0]
        assert motion.displacement(start) == pytest.approx(0.0, abs=1e-9)
        assert motion.displacement(start + 1.0) == pytest.approx(0.04, abs=1e-9)
        assert motion.displacement(start + 2.01) == pytest.approx(0.0, abs=1e-9)
        assert motion.is_active(start + 0.5)
        assert not motion.is_active(start + 2.5)

    def test_deterministic(self):
        a = TransientMotion(seed=7)
        b = TransientMotion(seed=7)
        assert a.burst_times == b.burst_times

    def test_validation(self):
        with pytest.raises(BodyModelError):
            TransientMotion(rate_per_minute=-1.0)
        with pytest.raises(BodyModelError):
            TransientMotion(duration_s=0.0)


class TestRestlessBreathing:
    def make(self, seed=0, rate_per_minute=2.0):
        return RestlessBreathing(
            MetronomeBreathing(12.0),
            TransientMotion(rate_per_minute=rate_per_minute,
                            amplitude_m=0.05, seed=seed),
        )

    def test_ground_truth_unchanged(self):
        waveform = self.make()
        assert waveform.true_rate_bpm(0, 60) == 12.0

    def test_displacement_adds(self):
        waveform = self.make(seed=2)
        start = waveform.transients.burst_times[0]
        quiet = MetronomeBreathing(12.0).displacement(start + 0.75)
        assert waveform.displacement(start + 0.75) > quiet + 0.01

    def test_clean_windows_avoid_bursts(self):
        waveform = self.make(seed=3)
        windows = waveform.clean_windows(0.0, 120.0, min_length_s=5.0)
        for w0, w1 in windows:
            for start in waveform.transients.burst_times:
                assert not (w0 < start < w1)

    def test_clean_windows_validation(self):
        with pytest.raises(BodyModelError):
            self.make().clean_windows(10.0, 10.0)


class TestMonitoringUnderMotion:
    def test_rate_survives_occasional_bursts(self):
        """A couple of chair-shifts per minute must not destroy the
        estimate: the bursts are broadband while breathing is narrowband,
        and the adaptive band locks onto the breathing peak."""
        waveform = RestlessBreathing(
            MetronomeBreathing(12.0),
            TransientMotion(rate_per_minute=2.0, amplitude_m=0.04,
                            duration_s=1.5, seed=5),
        )
        scenario = Scenario([Subject(user_id=1, distance_m=3.0,
                                     breathing=waveform, sway_seed=5)])
        result = run_scenario(scenario, duration_s=60.0, seed=111)
        estimates = TagBreathe(user_ids={1}).process(result.reports)
        assert 1 in estimates
        assert breathing_rate_accuracy(estimates[1].rate_bpm, 12.0) > 0.8

    def test_tracker_gates_burst_corrupted_rates(self):
        """Instantaneous rates corrupted by a burst are outliers the
        Kalman tracker's innovation gate rejects."""
        tracker = BreathingRateTracker()
        for i in range(12):
            tracker.update(i * 2.5, 12.0 + 0.2 * np.sin(i))
        corrupted = tracker.update(30.0, 34.0)
        assert corrupted.gated
        assert tracker.rate_bpm == pytest.approx(12.0, abs=0.5)
