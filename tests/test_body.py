"""Tests for the human-subject substrate (repro.body)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.body import (
    AsymmetricBreathing,
    BodySway,
    BreathingStyle,
    IrregularBreathing,
    MetronomeBreathing,
    SinusoidalBreathing,
    Subject,
    is_los_blocked,
    orientation_loss_db,
    standard_placements,
)
from repro.errors import BodyModelError
from repro.reader import Antenna


class TestSinusoidalBreathing:
    def test_rate_is_ground_truth(self):
        wf = SinusoidalBreathing(12.0)
        assert wf.true_rate_bpm(0.0, 60.0) == 12.0

    def test_displacement_range(self):
        wf = SinusoidalBreathing(12.0, amplitude_m=0.01)
        samples = [wf.displacement(t) for t in np.linspace(0, 10, 500)]
        assert min(samples) >= -1e-12
        assert max(samples) <= 0.01 + 1e-12
        assert max(samples) > 0.009  # reaches full inhalation

    def test_period(self):
        wf = SinusoidalBreathing(12.0)  # 5-second period
        assert wf.displacement(1.0) == pytest.approx(wf.displacement(6.0), abs=1e-12)

    def test_starts_exhaled(self):
        assert SinusoidalBreathing(10.0).displacement(0.0) == pytest.approx(0.0)

    def test_vectorised_matches_scalar(self):
        wf = SinusoidalBreathing(15.0)
        times = np.linspace(0, 5, 50)
        np.testing.assert_allclose(
            wf.displacement_array(times),
            [wf.displacement(float(t)) for t in times],
        )

    def test_validation(self):
        with pytest.raises(BodyModelError):
            SinusoidalBreathing(0.0)
        with pytest.raises(BodyModelError):
            SinusoidalBreathing(10.0, amplitude_m=-0.01)


class TestAsymmetricBreathing:
    def test_cycle_count_matches_rate(self):
        wf = AsymmetricBreathing(10.0, amplitude_m=0.01)
        # Count maxima over 60 s: expect ~10.
        times = np.linspace(0, 60, 6000)
        values = np.array([wf.displacement(float(t)) for t in times])
        peaks = np.sum((values[1:-1] > values[:-2]) & (values[1:-1] >= values[2:])
                       & (values[1:-1] > 0.009))
        assert 9 <= peaks <= 11

    def test_inhale_faster_than_exhale(self):
        wf = AsymmetricBreathing(10.0, inhale_fraction=0.4)
        period = 6.0
        peak_time = 0.4 * period
        # Rising to the peak takes 40 % of the cycle.
        assert wf.displacement(peak_time) == pytest.approx(0.01, abs=1e-6)

    def test_continuous_at_cycle_boundary(self):
        wf = AsymmetricBreathing(10.0)
        assert wf.displacement(5.999) == pytest.approx(wf.displacement(6.001), abs=1e-3)

    def test_validation(self):
        with pytest.raises(BodyModelError):
            AsymmetricBreathing(10.0, inhale_fraction=0.01)


class TestIrregularBreathing:
    def test_mean_rate_near_base(self):
        wf = IrregularBreathing(12.0, rate_jitter=0.05, seed=1)
        assert wf.true_rate_bpm(0.0, 300.0) == pytest.approx(12.0, rel=0.1)

    def test_pauses_reduce_counted_rate(self):
        steady = IrregularBreathing(12.0, rate_jitter=0.0, seed=2)
        pausing = IrregularBreathing(12.0, rate_jitter=0.0,
                                     pause_probability=0.5,
                                     pause_duration_s=3.0, seed=2)
        assert pausing.true_rate_bpm(0, 300) < steady.true_rate_bpm(0, 300)

    def test_displacement_zero_during_pause(self):
        wf = IrregularBreathing(12.0, pause_probability=1.0,
                                pause_duration_s=2.0, seed=3)
        # Find a pause window and check the hold.
        cycle = wf._cycles[0]
        t_pause = cycle[0] + cycle[1] + 0.1
        if t_pause < cycle[0] + cycle[1] + cycle[2]:
            assert wf.displacement(t_pause) == 0.0

    def test_deterministic_given_seed(self):
        a = IrregularBreathing(10.0, seed=5)
        b = IrregularBreathing(10.0, seed=5)
        for t in np.linspace(0, 100, 50):
            assert a.displacement(float(t)) == b.displacement(float(t))

    def test_horizon_enforced(self):
        wf = IrregularBreathing(10.0, horizon_s=50.0)
        with pytest.raises(BodyModelError):
            wf.displacement(51.0)

    def test_empty_window_rejected(self):
        wf = IrregularBreathing(10.0)
        with pytest.raises(BodyModelError):
            wf.true_rate_bpm(10.0, 10.0)


class TestMetronomeBreathing:
    def test_ground_truth_is_metronome_setting(self):
        wf = MetronomeBreathing(14.0)
        assert wf.true_rate_bpm(0, 120) == 14.0

    def test_instantaneous_rate_wanders(self):
        wf = MetronomeBreathing(10.0, compliance_jitter=0.05)
        ref = MetronomeBreathing(10.0, compliance_jitter=0.0)
        diffs = [abs(wf.displacement(t) - ref.displacement(t))
                 for t in np.linspace(0, 60, 600)]
        assert max(diffs) > 1e-4  # the wander is real

    def test_wander_averages_out(self):
        """Cycle count over a long window still matches the metronome."""
        wf = MetronomeBreathing(12.0, compliance_jitter=0.05)
        times = np.linspace(0, 120, 24000)
        values = np.array([wf.displacement(float(t)) for t in times])
        crossings = np.sum((values[:-1] < 0.005) & (values[1:] >= 0.005))
        assert crossings == pytest.approx(24, abs=2)

    def test_validation(self):
        with pytest.raises(BodyModelError):
            MetronomeBreathing(10.0, compliance_jitter=0.9)
        with pytest.raises(BodyModelError):
            MetronomeBreathing(10.0, wander_period_s=0.0)


class TestPlacements:
    def test_three_standard_spots(self):
        placements = standard_placements(3)
        assert [p.name for p in placements] == ["chest", "abdomen", "middle"]

    def test_single_tag_on_chest(self):
        assert standard_placements(1)[0].name == "chest"

    def test_chest_breather_shares(self):
        placements = standard_placements(3, BreathingStyle.CHEST)
        shares = {p.name: p.motion_share for p in placements}
        assert shares["chest"] > shares["middle"] > shares["abdomen"]

    def test_abdomen_breather_shares(self):
        placements = standard_placements(3, BreathingStyle.ABDOMEN)
        shares = {p.name: p.motion_share for p in placements}
        assert shares["abdomen"] > shares["chest"]

    def test_count_validation(self):
        with pytest.raises(BodyModelError):
            standard_placements(0)
        with pytest.raises(BodyModelError):
            standard_placements(4)


class TestBlockage:
    def test_no_loss_facing(self):
        assert orientation_loss_db(0.0) == 0.0

    def test_loss_grows_with_angle(self):
        assert orientation_loss_db(60.0) < orientation_loss_db(90.0)
        assert orientation_loss_db(30.0) < orientation_loss_db(60.0)

    def test_blocked_beyond_90(self):
        """Paper: no reads at all past 90 degrees."""
        assert math.isinf(orientation_loss_db(91.0))
        assert math.isinf(orientation_loss_db(180.0))
        assert is_los_blocked(120.0)
        assert not is_los_blocked(90.0)

    def test_symmetric_fold(self):
        assert orientation_loss_db(30.0) == pytest.approx(orientation_loss_db(330.0))

    def test_validation(self):
        with pytest.raises(BodyModelError):
            orientation_loss_db(-1.0)
        with pytest.raises(BodyModelError):
            is_los_blocked(360.0)

    @given(st.floats(min_value=0, max_value=90))
    def test_loss_finite_with_los(self, angle):
        assert orientation_loss_db(angle) < math.inf


class TestBodySway:
    def test_amplitude_scale(self):
        sway = BodySway(amplitude_m=0.001, seed=0)
        samples = [sway.displacement(t) for t in np.linspace(0, 100, 2000)]
        rms = float(np.sqrt(np.mean(np.square(samples))))
        assert 0.0003 < rms < 0.002

    def test_zero_amplitude(self):
        sway = BodySway(amplitude_m=0.0, seed=0)
        assert sway.displacement(12.3) == 0.0

    def test_deterministic(self):
        a = BodySway(seed=4)
        b = BodySway(seed=4)
        assert a.displacement(5.0) == b.displacement(5.0)

    def test_vectorised_matches_scalar(self):
        sway = BodySway(seed=2)
        times = np.linspace(0, 10, 30)
        np.testing.assert_allclose(
            sway.displacement_array(times),
            [sway.displacement(float(t)) for t in times],
            atol=1e-12,
        )

    def test_validation(self):
        with pytest.raises(BodyModelError):
            BodySway(amplitude_m=-0.1)
        with pytest.raises(BodyModelError):
            BodySway(band_hz=(0.5, 0.1))


class TestSubject:
    def make(self, **kwargs):
        defaults = dict(user_id=1, distance_m=4.0, sway_seed=0)
        defaults.update(kwargs)
        return Subject(**defaults)

    def test_default_three_tags(self):
        subject = self.make()
        assert len(subject.tags) == 3
        assert {t.tag_id for t in subject.tags} == {1, 2, 3}

    def test_epcs_encode_identity(self):
        subject = self.make(user_id=9)
        for tag in subject.tags:
            assert tag.epc.user_id == 9
            assert tag.epc.tag_id == tag.tag_id

    def test_tag_positions_near_torso(self):
        subject = self.make()
        pos = subject.tag_position_m(1, 0.0)
        assert pos[0] == pytest.approx(4.0, abs=0.05)
        assert pos[2] == pytest.approx(1.15, abs=0.05)  # chest above torso ref

    def test_breathing_moves_tag_toward_antenna(self):
        """Inhaling decreases tag-antenna distance (paper Section I)."""
        subject = self.make(breathing=SinusoidalBreathing(10.0, amplitude_m=0.01))
        antenna = Antenna(port=1, position_m=(0, 0, 1))
        exhaled = antenna.distance_to(subject.tag_position_m(1, 0.0))
        inhaled = antenna.distance_to(subject.tag_position_m(1, 3.0))  # mid cycle
        assert inhaled < exhaled

    def test_three_tags_move_in_phase(self):
        """Section IV-D-1: all tags' distances shrink together on inhale."""
        subject = self.make(breathing=SinusoidalBreathing(10.0, amplitude_m=0.01))
        antenna = Antenna(port=1, position_m=(0, 0, 1))
        for tag_id in (1, 2, 3):
            d0 = antenna.distance_to(subject.tag_position_m(tag_id, 0.0))
            d1 = antenna.distance_to(subject.tag_position_m(tag_id, 3.0))
            assert d1 < d0

    def test_orientation_reduces_radial_motion(self):
        def radial_swing(orientation):
            subject = self.make(
                orientation_deg=orientation,
                breathing=SinusoidalBreathing(10.0, amplitude_m=0.01),
                sway=BodySway(amplitude_m=0.0),
            )
            antenna = Antenna(port=1, position_m=(0, 0, 1))
            distances = [
                antenna.distance_to(subject.tag_position_m(1, t))
                for t in np.linspace(0, 6, 120)
            ]
            return max(distances) - min(distances)
        # The lateral rib-expansion term can slightly boost mid angles;
        # the physically important ordering is side-on << facing.
        assert radial_swing(90.0) < 0.6 * radial_swing(0.0)
        assert radial_swing(90.0) > 0.001  # lateral rib motion keeps signal alive

    def test_effective_orientation_relative_to_antenna(self):
        subject = self.make(orientation_deg=0.0)
        front = Antenna(port=1, position_m=(0, 0, 1))
        side = Antenna(port=2, position_m=(4.0, 4.0, 1))
        assert subject.effective_orientation_deg(front) == pytest.approx(0.0, abs=1.0)
        assert subject.effective_orientation_deg(side) == pytest.approx(90.0, abs=1.0)

    def test_blocked_orientation_infinite_loss(self):
        subject = self.make(orientation_deg=150.0)
        antenna = Antenna(port=1, position_m=(0, 0, 1))
        assert math.isinf(subject.extra_loss_db(1, 0.0, antenna))

    def test_posture_heights(self):
        assert self.make(posture="standing").torso_height_m > \
            self.make(posture="sitting").torso_height_m > \
            self.make(posture="lying").torso_height_m

    def test_lying_breathes_mostly_vertically(self):
        subject = self.make(posture="lying",
                            breathing=SinusoidalBreathing(10.0, amplitude_m=0.01),
                            sway=BodySway(amplitude_m=0.0))
        rest = subject.tag_position_m(1, 0.0)
        inhaled = subject.tag_position_m(1, 3.0)
        motion = inhaled - rest
        assert abs(motion[2]) > abs(motion[0])

    def test_unknown_tag_rejected(self):
        with pytest.raises(BodyModelError):
            self.make().tag_by_id(99)

    def test_validation(self):
        with pytest.raises(BodyModelError):
            self.make(distance_m=0.0)
        with pytest.raises(BodyModelError):
            self.make(posture="floating")
        with pytest.raises(BodyModelError):
            self.make(orientation_deg=200.0)

    def test_true_rate_delegates_to_waveform(self):
        subject = self.make(breathing=MetronomeBreathing(13.0))
        assert subject.true_rate_bpm(0, 60) == 13.0
