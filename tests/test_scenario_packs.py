"""Tests for the scenario packs (repro.sim.scenarios).

The full packs are exercised (and their numbers published) by the
regenerating benchmark ``benchmarks/test_scenario_packs.py`` and gated
in CI; tier-1 keeps to the cheap contracts — registry behaviour, spec
determinism, ground-truth windows coming straight from the schedules,
and the scoring harness itself on a small purpose-built pack.
"""

import numpy as np
import pytest

from repro.body import MetronomeBreathing, Subject
from repro.config import EstimatorConfig
from repro.errors import ScenarioError
from repro.sim.scenario import Scenario
from repro.sim.scenarios import (PACKS, PackSpec, build_pack, evaluate_pack,
                                 pack_names)

EXPECTED_PACKS = ("motion_bursts", "apnea_sigh", "ward", "overnight")


class TestRegistry:
    def test_pack_names(self):
        assert tuple(pack_names()) == EXPECTED_PACKS
        assert set(PACKS) == set(EXPECTED_PACKS)

    def test_unknown_pack_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario pack"):
            build_pack("karaoke_night")

    @pytest.mark.parametrize("name", EXPECTED_PACKS)
    def test_builders_return_specs(self, name):
        spec = build_pack(name, quick=True)
        assert isinstance(spec, PackSpec)
        assert spec.name == name
        assert spec.duration_s > spec.warmup_s > 0
        assert spec.engines  # at least one engine configuration

    @pytest.mark.parametrize("name", EXPECTED_PACKS)
    def test_quick_is_shorter(self, name):
        assert (build_pack(name, quick=True).duration_s
                < build_pack(name, quick=False).duration_s)


class TestSpecContents:
    def test_motion_packs_carry_schedule_windows(self):
        for name in ("motion_bursts", "overnight"):
            spec = build_pack(name, quick=True)
            assert spec.motion_windows
            for spans in spec.motion_windows.values():
                for lo, hi in spans:
                    assert 0.0 <= lo < hi <= spec.duration_s

    def test_event_packs_carry_apnea_windows(self):
        for name in ("apnea_sigh", "overnight"):
            spec = build_pack(name, quick=True)
            assert spec.apnea_windows
            for spans in spec.apnea_windows.values():
                for lo, hi in spans:
                    assert lo < hi

    def test_ward_has_control_arms(self):
        spec = build_pack("ward", quick=True)
        assert set(spec.engines) == {"auto", "phase_only", "rss"}
        assert spec.phase_noise is not None
        assert spec.phase_noise.floor_rad >= 1.0

    @pytest.mark.parametrize("name", EXPECTED_PACKS)
    def test_builders_deterministic(self, name):
        a = build_pack(name, quick=True, seed=4)
        b = build_pack(name, quick=True, seed=4)
        assert a.motion_windows == b.motion_windows
        assert a.apnea_windows == b.apnea_windows
        assert a.duration_s == b.duration_s

    def test_seed_changes_schedules(self):
        a = build_pack("motion_bursts", quick=True, seed=0)
        b = build_pack("motion_bursts", quick=True, seed=1)
        assert a.motion_windows != b.motion_windows


@pytest.fixture(scope="module")
def tiny_pack():
    """A purpose-built cheap pack so the harness itself stays tier-1."""
    subject = Subject(user_id=1, distance_m=1.5,
                      breathing=MetronomeBreathing(12.0), sway_seed=3)
    return PackSpec(
        name="tiny", title="tiny", description="harness smoke pack",
        scenario=Scenario([subject]),
        duration_s=45.0, window_s=20.0, warmup_s=25.0, cadence_s=5.0,
        engines={"auto": EstimatorConfig()},
    )


class TestEvaluate:
    def test_metrics_shape_and_sanity(self, tiny_pack):
        result = evaluate_pack(tiny_pack, seed=0)
        assert result["users"] == 1
        assert result["reports"] > 0
        case = result["cases"]["auto"]
        for key in ("ticks", "insufficient", "mean_accuracy",
                    "mean_accuracy_clean", "estimator_ticks",
                    "gated_ticks", "flagged_ticks", "confident_wrong",
                    "confident_wrong_in_motion", "in_motion_ticks",
                    "missed_alarms", "missed_alarm_rate", "quiet_ticks",
                    "false_alarms", "false_alarm_rate"):
            assert key in case, key
        assert case["ticks"] > 0
        # A clean metronome subject: accurate, never flagged or gated.
        assert case["mean_accuracy"] > 0.85
        assert case["gated_ticks"] == 0
        assert case["false_alarms"] == 0
        assert case["confident_wrong"] == 0

    def test_evaluation_deterministic(self, tiny_pack):
        assert evaluate_pack(tiny_pack, seed=2) == evaluate_pack(
            tiny_pack, seed=2)

    def test_seed_changes_capture(self, tiny_pack):
        a = evaluate_pack(tiny_pack, seed=0)
        b = evaluate_pack(tiny_pack, seed=5)
        assert a["reports"] != b["reports"] or a["cases"] != b["cases"]
