"""Unit and property tests for the RF substrate (repro.rf)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.rf import (
    Channel,
    ChannelPlan,
    DynamicMultipath,
    LinkBudget,
    PathLossModel,
    PhaseModel,
    PhaseNoiseModel,
    backscatter_phase,
    doppler_report,
    doppler_shift_from_velocity,
    fcc_channel_frequencies,
    phase_to_distance_delta,
    quantize_rssi,
)
from repro.rf.constants import (
    FCC_NUM_CHANNELS,
    UHF_BAND_HIGH_HZ,
    UHF_BAND_LOW_HZ,
)
from repro.rf.phase import max_unambiguous_displacement
from repro.units import TWO_PI


class TestChannelPlan:
    def test_frequencies_inside_band(self):
        for freq in fcc_channel_frequencies(10):
            assert UHF_BAND_LOW_HZ < freq < UHF_BAND_HIGH_HZ

    def test_full_plan_has_fifty(self):
        assert len(fcc_channel_frequencies()) == FCC_NUM_CHANNELS

    def test_subset_spans_band(self):
        freqs = fcc_channel_frequencies(10)
        assert freqs[0] == pytest.approx(902.75e6)
        assert freqs[-1] == pytest.approx(927.25e6)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            fcc_channel_frequencies(0)
        with pytest.raises(ValueError):
            fcc_channel_frequencies(51)

    def test_default_plan(self):
        plan = ChannelPlan.default(10, rng=np.random.default_rng(0))
        assert len(plan) == 10
        assert all(0 <= ch.phase_offset_rad < TWO_PI for ch in plan)

    def test_plan_offsets_differ_between_channels(self):
        plan = ChannelPlan.default(10, rng=np.random.default_rng(1))
        offsets = {round(ch.phase_offset_rad, 6) for ch in plan}
        assert len(offsets) > 1  # hop discontinuities need differing offsets

    def test_explicit_offsets(self):
        plan = ChannelPlan([903e6, 915e6], phase_offsets_rad=[0.5, 1.5])
        assert plan[0].phase_offset_rad == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            ChannelPlan([])

    def test_rejects_mismatched_offsets(self):
        with pytest.raises(ConfigError):
            ChannelPlan([903e6], phase_offsets_rad=[0.1, 0.2])

    def test_channel_wavelength(self):
        ch = Channel(0, 915e6, 0.0)
        assert ch.wavelength_m == pytest.approx(0.3276, abs=1e-3)

    def test_channel_validation(self):
        with pytest.raises(ConfigError):
            Channel(-1, 915e6, 0.0)
        with pytest.raises(ConfigError):
            Channel(0, -1.0, 0.0)


class TestPhaseModelEq1:
    def test_zero_distance(self):
        assert backscatter_phase(0.0, 0.3) == pytest.approx(0.0)

    def test_half_wavelength_period(self):
        # Phase repeats every lambda/2 of distance (round trip = lambda).
        lam = 0.3276
        p0 = backscatter_phase(1.0, lam)
        p1 = backscatter_phase(1.0 + lam / 2.0, lam)
        assert p0 == pytest.approx(p1, abs=1e-9)

    def test_quarter_wavelength_is_pi(self):
        lam = 0.32
        p0 = backscatter_phase(1.0, lam)
        p1 = backscatter_phase(1.0 + lam / 4.0, lam)
        assert (p1 - p0) % TWO_PI == pytest.approx(math.pi, abs=1e-9)

    def test_offset_applied(self):
        assert backscatter_phase(0.0, 0.3, offset_rad=1.0) == pytest.approx(1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            backscatter_phase(1.0, 0.0)
        with pytest.raises(ValueError):
            backscatter_phase(-1.0, 0.3)

    @given(st.floats(min_value=0, max_value=20))
    def test_output_range(self, d):
        assert 0.0 <= backscatter_phase(d, 0.3276) < TWO_PI


class TestDisplacementInversionEq3:
    @given(
        st.floats(min_value=0.5, max_value=8.0),
        st.floats(min_value=-0.08, max_value=0.08),
    )
    @settings(max_examples=100)
    def test_roundtrip_small_displacement(self, d0, delta):
        """Eq. (3) recovers any displacement below lambda/4 exactly."""
        lam = 0.3276
        theta0 = backscatter_phase(d0, lam, offset_rad=1.23)
        theta1 = backscatter_phase(d0 + delta, lam, offset_rad=1.23)
        recovered = phase_to_distance_delta(theta0, theta1, lam)
        assert recovered == pytest.approx(delta, abs=1e-9)

    def test_ambiguity_limit(self):
        lam = 0.3276
        assert max_unambiguous_displacement(lam) == pytest.approx(lam / 4)

    def test_beyond_ambiguity_wraps(self):
        """Displacement beyond lambda/4 aliases — the physical limit."""
        lam = 0.32
        d0 = 1.0
        delta = lam / 2.0  # a half wavelength looks like zero
        theta0 = backscatter_phase(d0, lam)
        theta1 = backscatter_phase(d0 + delta, lam)
        recovered = phase_to_distance_delta(theta0, theta1, lam)
        assert recovered == pytest.approx(0.0, abs=1e-9)

    def test_sign_convention(self):
        """Moving away increases distance -> positive delta."""
        lam = 0.3276
        theta0 = backscatter_phase(2.0, lam)
        theta1 = backscatter_phase(2.01, lam)
        assert phase_to_distance_delta(theta0, theta1, lam) > 0


class TestPhaseModelClass:
    def test_deterministic_given_offset(self):
        model = PhaseModel(link_offset_rad=0.7)
        ch = Channel(0, 915e6, 0.2)
        assert model.phase(2.0, ch) == model.phase(2.0, ch)

    def test_includes_channel_and_link_offsets(self):
        ch = Channel(0, 915e6, 0.2)
        base = backscatter_phase(2.0, ch.wavelength_m)
        got = PhaseModel(link_offset_rad=0.7).phase(2.0, ch)
        assert got == pytest.approx((base + 0.2 + 0.7) % TWO_PI)

    def test_random_offset_in_range(self):
        model = PhaseModel(rng=np.random.default_rng(3))
        assert 0.0 <= model.link_offset_rad < TWO_PI


class TestPathLoss:
    def test_free_space_at_reference(self):
        model = PathLossModel(exponent=2.0, fading_sigma_db=0.0)
        # One-way FSPL at 1 m, 915 MHz is about 31.6 dB.
        assert model.one_way_loss_db(1.0, 915e6) == pytest.approx(31.65, abs=0.1)

    def test_loss_increases_with_distance(self):
        model = PathLossModel()
        losses = [model.one_way_loss_db(d, 915e6) for d in (1, 2, 4, 8)]
        assert losses == sorted(losses)
        assert losses[1] - losses[0] == pytest.approx(
            10 * model.exponent * math.log10(2), abs=1e-6
        )

    def test_rejects_zero_distance(self):
        with pytest.raises(ValueError):
            PathLossModel().one_way_loss_db(0.0, 915e6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PathLossModel(exponent=0.0)
        with pytest.raises(ConfigError):
            PathLossModel(fading_sigma_db=-1.0)


class TestLinkBudget:
    def setup_method(self):
        self.budget = LinkBudget()

    def test_tag_power_monotone_in_distance(self):
        powers = [self.budget.tag_power_dbm(d, 915e6) for d in (1, 2, 4, 6)]
        assert powers == sorted(powers, reverse=True)

    def test_extra_loss_reduces_tag_power(self):
        p0 = self.budget.tag_power_dbm(4.0, 915e6)
        p1 = self.budget.tag_power_dbm(4.0, 915e6, extra_loss_db=5.0)
        assert p1 == pytest.approx(p0 - 5.0)

    def test_rx_below_tag_power(self):
        assert self.budget.rx_power_dbm(2.0, 915e6) < self.budget.tag_power_dbm(2.0, 915e6)

    def test_snr_definition(self):
        snr = self.budget.snr_db(3.0, 915e6)
        rx = self.budget.rx_power_dbm(3.0, 915e6)
        assert snr == pytest.approx(rx - self.budget.noise_floor_dbm)

    def test_success_probability_monotone(self):
        probs = [self.budget.read_success_probability(d, 915e6) for d in (1, 3, 6, 9, 12)]
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert probs == sorted(probs, reverse=True)

    def test_success_probability_near_one_close(self):
        assert self.budget.read_success_probability(1.0, 915e6) > 0.99

    def test_blockage_kills_success(self):
        p = self.budget.read_success_probability(1.0, 915e6, extra_loss_db=60.0)
        assert p < 0.01

    def test_sample_read_selection_effect(self):
        """Successful reads under a weak link report above-average fades."""
        rng = np.random.default_rng(0)
        weak_distance = 9.0
        rssis = []
        for _ in range(4000):
            rssi = self.budget.sample_read(weak_distance, 915e6, rng)
            if rssi is not None:
                rssis.append(rssi)
        assert 0 < len(rssis) < 4000  # genuinely marginal link
        deterministic = self.budget.rx_power_dbm(weak_distance, 915e6)
        assert np.mean(rssis) > deterministic  # survivors faded upward

    def test_sample_read_good_link_always_reads(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            assert self.budget.sample_read(1.0, 915e6, rng) is not None


class TestDoppler:
    def test_eq2_convention(self):
        # Under Eq. (2), f = v / lambda.
        lam = 0.3276
        assert doppler_shift_from_velocity(0.3276, lam) == pytest.approx(1.0)

    def test_sign(self):
        assert doppler_shift_from_velocity(-1.0, 0.3) < 0

    def test_rejects_bad_wavelength(self):
        with pytest.raises(ValueError):
            doppler_shift_from_velocity(1.0, 0.0)

    def test_report_is_noisy_but_unbiased(self):
        rng = np.random.default_rng(7)
        lam = 0.3276
        v = 0.01  # breathing-speed motion
        reports = [doppler_report(v, lam, rng, phase_noise_rad=0.05) for _ in range(5000)]
        true = doppler_shift_from_velocity(v, lam)
        assert np.mean(reports) == pytest.approx(true, abs=0.2)
        # Raw Doppler is very noisy at breathing speeds (paper Fig. 3).
        assert np.std(reports) > 10 * abs(true)

    def test_report_rejects_bad_duration(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            doppler_report(0.01, 0.3276, rng, 0.05, packet_duration_s=0.0)


class TestNoise:
    def test_sigma_grows_as_snr_falls(self):
        model = PhaseNoiseModel()
        assert model.sigma(0.0) > model.sigma(20.0) > model.sigma(40.0)

    def test_sigma_floors_at_high_snr(self):
        model = PhaseNoiseModel()
        assert model.sigma(100.0) == pytest.approx(model.floor_rad, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PhaseNoiseModel(floor_rad=-0.1)

    def test_quantize_rssi(self):
        assert quantize_rssi(-53.26) == pytest.approx(-53.5)
        assert quantize_rssi(-53.2) == pytest.approx(-53.0)

    def test_quantize_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            quantize_rssi(-50.0, resolution_db=0.0)

    @given(st.floats(min_value=-90, max_value=-20))
    def test_quantize_error_bounded(self, rssi):
        assert abs(quantize_rssi(rssi) - rssi) <= 0.25 + 1e-9


class TestDynamicMultipath:
    def test_amplitude_grows_with_distance(self):
        mp = DynamicMultipath(rng=np.random.default_rng(0))
        assert mp.amplitude_rad(6.0) > mp.amplitude_rad(1.0)

    def test_amplitude_capped(self):
        mp = DynamicMultipath(max_amplitude_rad=0.5, rng=np.random.default_rng(0))
        assert mp.amplitude_rad(100.0) == pytest.approx(0.5)

    def test_deterministic_per_link(self):
        mp = DynamicMultipath(rng=np.random.default_rng(0))
        assert mp.phase_offset("link-a", 1.5, 4.0) == mp.phase_offset("link-a", 1.5, 4.0)

    def test_links_differ(self):
        mp = DynamicMultipath(rng=np.random.default_rng(0))
        a = [mp.phase_offset("link-a", t, 4.0) for t in np.linspace(0, 10, 20)]
        b = [mp.phase_offset("link-b", t, 4.0) for t in np.linspace(0, 10, 20)]
        assert not np.allclose(a, b)

    def test_offset_bounded_by_amplitude(self):
        # Weights are unit 2-norm over k components, so the worst-case
        # excursion is amp * sqrt(k).
        mp = DynamicMultipath(components=2, rng=np.random.default_rng(0))
        amp = mp.amplitude_rad(4.0)
        offsets = [mp.phase_offset("x", t, 4.0) for t in np.linspace(0, 30, 300)]
        assert max(abs(o) for o in offsets) <= amp * math.sqrt(2.0) + 1e-12

    def test_validation(self):
        with pytest.raises(ConfigError):
            DynamicMultipath(amplitude_at_ref_rad=-1.0)
        with pytest.raises(ConfigError):
            DynamicMultipath(band_hz=(0.5, 0.1))
        mp = DynamicMultipath()
        with pytest.raises(ConfigError):
            mp.amplitude_rad(0.0)
