"""Statistical properties of the reader's report stream.

These validate the emergent behaviour the paper's Section IV-A measures:
sampling-rate ranges, per-channel coverage, inter-read timing, and the
interaction of distance with read success.
"""

import numpy as np

from repro import Reader, Scenario
from repro.body import MetronomeBreathing, Subject
from repro.config import ReaderConfig


def capture(distance=2.0, duration=20.0, seed=0, num_tags=1, **reader_kwargs):
    scenario = Scenario([Subject(user_id=1, distance_m=distance,
                                 breathing=MetronomeBreathing(12.0),
                                 num_tags=num_tags, sway_seed=seed)])
    reader = Reader(rng=np.random.default_rng(seed), **reader_kwargs)
    return reader.run(scenario, duration), scenario


class TestSamplingStatistics:
    def test_single_tag_rate_in_paper_range(self):
        """Section IV-A: 'The data sampling rate was around 64 Hz.'"""
        reports, _ = capture(num_tags=1)
        rate = len(reports) / 20.0
        assert 45.0 <= rate <= 90.0

    def test_inter_read_gaps_mostly_regular(self):
        reports, _ = capture(num_tags=1)
        gaps = np.diff([r.timestamp_s for r in reports])
        # Median gap near 1/64 s; occasional longer gaps at hops.
        assert 0.008 <= float(np.median(gaps)) <= 0.03
        assert float(np.max(gaps)) < 0.5

    def test_three_tags_share_airtime_evenly(self):
        reports, scenario = capture(num_tags=3)
        counts = {}
        for report in reports:
            counts[report.tag_id] = counts.get(report.tag_id, 0) + 1
        values = list(counts.values())
        assert len(values) == 3
        assert max(values) < 1.6 * min(values)

    def test_reports_cover_all_channels_evenly(self):
        reports, _ = capture(duration=25.0)
        counts = np.zeros(10)
        for report in reports:
            counts[report.channel_index] += 1
        assert counts.min() > 0
        assert counts.max() < 2.5 * counts.min()

    def test_rate_declines_with_distance(self):
        near, _ = capture(distance=1.0, seed=1)
        far, _ = capture(distance=9.0, seed=1,
                         config=None)
        assert len(far) < len(near)

    def test_rssi_declines_with_distance(self):
        near, _ = capture(distance=1.0, seed=2)
        far, _ = capture(distance=6.0, seed=2)
        assert np.mean([r.rssi_dbm for r in far]) < \
            np.mean([r.rssi_dbm for r in near]) - 5.0

    def test_lower_tx_power_lowers_rate_at_range(self):
        full, _ = capture(distance=6.0, seed=3,
                          config=ReaderConfig(tx_power_dbm=30.0))
        reduced, _ = capture(distance=6.0, seed=3,
                             config=ReaderConfig(tx_power_dbm=20.0))
        assert len(reduced) < len(full)

    def test_doppler_reports_centered_near_zero(self):
        reports, _ = capture()
        doppler = np.array([r.doppler_hz for r in reports])
        assert abs(np.mean(doppler)) < 0.5
        assert np.std(doppler) > 0.5  # raw Doppler is noisy (Fig. 3)

    def test_rssi_dithers_across_quantisation_steps(self):
        """The breathing ripple must actually move the quantised RSSI —
        otherwise Fig. 2's periodicity could never appear."""
        reports, _ = capture(duration=25.0)
        one_channel = [r.rssi_dbm for r in reports if r.channel_index == 0]
        assert len(set(one_channel)) >= 2
