"""Tests for the Doppler motion detector (repro.core.motion).

Unit coverage of the pure scoring function (bin z-test, run filter,
occupied-bin bridging, the dual half-offset grids), property tests that
still-subject noise never trips the gate, and pipeline-level coverage
that the MotionBurst injector produces flagged/gated estimates while a
clean capture stays pristine.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Scenario, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.config import MotionConfig
from repro.core.degradation import REASON_MOTION
from repro.core.motion import (MIN_WINDOW_REPORTS, STILL, MotionReport,
                               apply_motion, score_motion)
from repro.core.pipeline import TagBreathe
from repro.faults import FaultChain, MotionBurst

CONFIG = MotionConfig()


def noise_window(n=800, sigma=1.5, rate_hz=40.0, seed=0):
    """A still-subject window: pure zero-mean Doppler noise."""
    rng = np.random.default_rng(seed)
    times = np.arange(n) / rate_hz
    return times, rng.normal(0.0, sigma, size=n)


def add_burst(times, doppler, start, duration, shift_hz):
    """Add a coherent Doppler shift over [start, start+duration)."""
    out = doppler.copy()
    mask = (times >= start) & (times < start + duration)
    out[mask] += shift_hz
    return out


class TestScoring:
    def test_disabled_is_still(self):
        times, dop = noise_window()
        report = score_motion(times, dop, MotionConfig(enabled=False))
        assert report is STILL

    def test_sparse_window_is_still(self):
        times, dop = noise_window(n=MIN_WINDOW_REPORTS - 1)
        assert score_motion(times, dop, CONFIG) is STILL

    def test_noise_not_flagged(self):
        times, dop = noise_window(seed=7)
        report = score_motion(times, dop, CONFIG)
        assert not report.flagged
        assert not report.gated
        assert report.score < CONFIG.z_threshold

    def test_burst_flagged_with_span(self):
        times, dop = noise_window(seed=3)
        dop = add_burst(times, dop, 5.0, 3.0, 6.0)
        report = score_motion(times, dop, CONFIG)
        assert report.flagged
        assert report.score >= CONFIG.z_threshold
        (lo, hi), = report.motion_spans
        assert lo == pytest.approx(5.0, abs=CONFIG.bin_s)
        assert hi == pytest.approx(8.0, abs=CONFIG.bin_s)

    def test_recent_burst_gates(self):
        times, dop = noise_window(seed=3)
        dop = add_burst(times, dop, times[-1] - 2.0, 2.0, 6.0)
        report = score_motion(times, dop, CONFIG)
        assert report.flagged and report.gated

    def test_old_small_burst_flags_without_gate(self):
        times, dop = noise_window(n=1600, seed=5)  # 40 s window
        dop = add_burst(times, dop, 4.0, 2.0, 6.0)
        report = score_motion(times, dop, CONFIG)
        assert report.flagged
        assert not report.gated
        assert report.flagged_fraction < CONFIG.gate_fraction

    def test_extensive_motion_gates_by_fraction(self):
        times, dop = noise_window(seed=5)
        dop = add_burst(times, dop, 2.0, 10.0, 6.0)
        report = score_motion(times, dop, CONFIG)
        assert report.gated
        assert report.flagged_fraction >= CONFIG.gate_fraction

    def test_single_bin_blip_not_flagged(self):
        """A sub-bin blip inside one bin of BOTH grids stays a blip.

        The grids are half a bin apart, so only a blip confined to the
        [5.25, 5.5) intersection of two bins lands in a single bin on
        each — anywhere else it straddles one grid's half-bin edge and
        legitimately shows up as two adjacent bins there.
        """
        times, dop = noise_window(seed=11)
        dop = add_burst(times, dop, 5.26, 0.2, 8.0)
        report = score_motion(times, dop, CONFIG)
        assert not report.flagged

    def test_dropout_bridges_run(self):
        """A mid-burst link outage must not veto the surrounding run."""
        times, dop = noise_window(n=1200, seed=13)
        dop = add_burst(times, dop, 10.0, 4.0, 6.0)
        keep = (times < 11.4) | (times >= 12.6)  # outage inside the burst
        report = score_motion(times[keep], dop[keep], CONFIG)
        assert report.flagged
        (lo, hi), = report.motion_spans
        assert lo <= 10.5 and hi >= 13.5

    def test_calm_bin_still_breaks_run(self):
        """Two isolated hot bins separated by calm *evidence* stay blips."""
        times, dop = noise_window(n=1200, seed=17)
        dop = add_burst(times, dop, 10.26, 0.2, 8.0)
        dop = add_burst(times, dop, 12.26, 0.2, 8.0)
        report = score_motion(times, dop, CONFIG)
        assert not report.flagged

    def test_half_offset_grid_catches_straddling_burst(self):
        """A burst split across one grid's bin edges lands in the other's.

        The shift is sized so a full ``bin_s`` of it clears the z
        threshold but a half-diluted edge bin does not: the grid whose
        edges split the burst sees two sub-threshold halves, the
        half-offset grid sees it whole.
        """
        rng = np.random.default_rng(23)
        times = np.arange(800) / 40.0
        dop = rng.normal(0.0, 1.5, size=800)
        config = MotionConfig()
        # Burst aligned to the offset grid: starts on a half-bin edge.
        start = 5.0 + 0.5 * config.bin_s
        dop = add_burst(times, dop, start, 2.0 * config.bin_s, 2.2)
        report = score_motion(times, dop, config)
        assert report.flagged


class TestApplyMotion:
    def test_still_is_identity(self):
        reasons = []
        assert apply_motion(STILL, reasons, 0.8) == 0.8
        assert reasons == []

    def test_flagged_appends_reason_and_scales(self):
        flagged = MotionReport(score=9.0, flagged=True, gated=False,
                               flagged_fraction=0.2, motion_spans=((1., 2.),))
        reasons = []
        confidence = apply_motion(flagged, reasons, 1.0)
        assert reasons == [REASON_MOTION]
        assert confidence == pytest.approx(0.9)

    def test_gate_pins_confidence_low(self):
        gated = MotionReport(score=20.0, flagged=True, gated=True,
                             flagged_fraction=0.6, motion_spans=((1., 9.),))
        reasons = []
        confidence = apply_motion(gated, reasons, 1.0)
        assert confidence <= 0.25


class TestStillnessProperty:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000),
           sigma=st.floats(0.3, 4.0),
           n=st.integers(100, 1500))
    def test_pure_noise_never_flags(self, seed, sigma, n):
        """ISSUE property: a still subject is never gated, any seed."""
        times, dop = noise_window(n=n, sigma=sigma, seed=seed)
        report = score_motion(times, dop, CONFIG)
        assert not report.flagged
        assert not report.gated

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           start=st.floats(2.0, 12.0),
           shift=st.floats(5.0, 12.0))
    def test_strong_burst_always_flags(self, seed, start, shift):
        times, dop = noise_window(n=800, seed=seed)
        dop = add_burst(times, dop, start, 3.0, shift)
        report = score_motion(times, dop, CONFIG)
        assert report.flagged


@pytest.fixture(scope="module")
def clean_capture():
    scenario = Scenario([Subject(user_id=1, distance_m=1.5,
                                 breathing=MetronomeBreathing(12.0),
                                 sway_seed=1)])
    return run_scenario(scenario, duration_s=25.0, seed=42)


class TestPipelineIntegration:
    def test_clean_capture_not_flagged(self, clean_capture):
        estimate = TagBreathe(user_ids={1}).process(clean_capture.reports)[1]
        assert REASON_MOTION not in estimate.degraded_reasons
        assert not estimate.motion_gated
        assert estimate.motion_score < CONFIG.z_threshold

    def test_motion_burst_injector_trips_detector(self, clean_capture):
        chain = FaultChain([MotionBurst(0.4, excursion_m=2.0)], seed=5)
        injected = chain.apply(clean_capture.reports)
        estimate = TagBreathe(user_ids={1}).process(injected)[1]
        assert REASON_MOTION in estimate.degraded_reasons
        assert estimate.motion_score >= CONFIG.z_threshold

    def test_disabled_detector_restores_clean_estimate(self, clean_capture):
        chain = FaultChain([MotionBurst(0.4, excursion_m=2.0)], seed=5)
        injected = chain.apply(clean_capture.reports)
        off = TagBreathe(user_ids={1},
                         motion=MotionConfig(enabled=False)).process(injected)
        assert REASON_MOTION not in off[1].degraded_reasons
        assert off[1].motion_score == 0.0

    def test_streamed_matches_batch_motion_verdict(self, clean_capture):
        chain = FaultChain([MotionBurst(0.4, excursion_m=2.0)], seed=5)
        injected = chain.apply(clean_capture.reports)
        batch = TagBreathe(user_ids={1}).process(injected)[1]
        engine = TagBreathe(user_ids={1})
        for report in injected:
            engine.feed(report)
        streamed = engine.estimate_user(1)
        recomputed = engine.estimate_user_recompute(1)
        for estimate in (streamed, recomputed):
            assert estimate.motion_gated == batch.motion_gated
            assert estimate.motion_score == batch.motion_score
            assert (REASON_MOTION in estimate.degraded_reasons) == (
                REASON_MOTION in batch.degraded_reasons)
