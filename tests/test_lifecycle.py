"""Session-lifecycle battery: hibernation must be invisible.

The cold tier's whole contract is that parking an idle session as a
compressed checkpoint document and waking it on the next report is
*bit-exact*: every downstream number — buffered reports, drop counters,
cadence bookkeeping, the breathing estimate itself — must be identical
to a session that never hibernated.  The hypothesis properties here cut
the stream at arbitrary points (including mid-breath, including many
cycles, including waking straight into the batched SoA feed) and pin
the divergence at exactly 0.0 bpm.

The second half of the battery pins the memory-compaction story:
prune-driven shrinking of the backing storage (GrowableArray,
WindowIndex, RingBuffer) must release high-water allocations without
perturbing estimates, and a long multi-window stream must hold a flat
resident-bytes ceiling.
"""

from __future__ import annotations

import tracemalloc
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.errors import DegradedEstimateWarning, InsufficientDataError
from repro.reader.batch import ReportBatch
from repro.serve import SessionConfig, SessionShard, UserSession
from repro.serve.hibernate import blob_to_doc, doc_to_blob
from repro.streams.ringbuffer import RingBuffer
from repro.streams.windowindex import _MIN_CAPACITY, GrowableArray, \
    WindowIndex

USER = 1

#: Lazily built module caches — hypothesis examples reuse the capture
#: and the uninterrupted-reference snapshot instead of re-simulating.
_REPORTS = None
_BASELINE = None


def reports():
    """One user breathing at 12 bpm for 30 s (cached)."""
    global _REPORTS
    if _REPORTS is None:
        scenario = Scenario([
            Subject(user_id=USER, distance_m=3.0,
                    breathing=MetronomeBreathing(12.0), sway_seed=USER),
        ])
        capture = run_scenario(scenario, duration_s=30.0, seed=11)
        _REPORTS = [r for r in capture.reports if r.user_id == USER]
    return _REPORTS


def snapshot(session):
    """Everything observable about a session, for exact comparison."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstimateWarning)
        est = session.engine.estimate_user(USER)
    signal = est.estimate.signal
    state = session.state()
    buffered = state.pop("reports")
    return {
        "state": state,
        "reports": buffered,
        "drops": dict(session.engine.feed_drop_counts),
        "rate_bpm": est.rate_bpm,
        "confidence": est.confidence,
        "signal_t": np.array(signal.times, copy=True),
        "signal_v": np.array(signal.values, copy=True),
    }


def baseline():
    """Reference snapshot of a session that never hibernated (cached)."""
    global _BASELINE
    if _BASELINE is None:
        session = UserSession(USER, SessionConfig())
        for report in reports():
            session.ingest(report)
        _BASELINE = snapshot(session)
    return _BASELINE


def assert_bit_identical(got, want):
    assert got["state"] == want["state"]
    assert got["drops"] == want["drops"]
    assert got["reports"] == want["reports"]
    # The acceptance criterion, verbatim: divergence of exactly 0.0 bpm.
    assert got["rate_bpm"] - want["rate_bpm"] == 0.0
    assert got["confidence"] == want["confidence"]
    np.testing.assert_array_equal(got["signal_t"], want["signal_t"])
    np.testing.assert_array_equal(got["signal_v"], want["signal_v"])


def interrupted(cuts, batch_from=None):
    """Snapshot of a session hibernated (and woken) at each cut index.

    Reports before ``batch_from`` are fed one at a time; from that index
    on they go through the column-batch path (``ingest_batch``), so a
    wake can land directly on a batched feed.
    """
    shard = SessionShard(0, SessionConfig(), publish=lambda message: None)
    cut_set = set(cuts)
    all_reports = reports()
    scalar_until = len(all_reports) if batch_from is None else batch_from
    for i, report in enumerate(all_reports[:scalar_until]):
        if i in cut_set:
            assert shard.hibernate_session(USER)
            assert USER in shard.hibernated
            assert USER not in shard.sessions
        shard.session_for(USER).ingest(report)
    if batch_from is not None:
        if batch_from in cut_set:
            assert shard.hibernate_session(USER)
        batch = ReportBatch.from_reports(all_reports[batch_from:])
        shard.session_for(USER).ingest_batch(batch)
    return snapshot(shard.session_for(USER))


def cut_index(fraction):
    n = len(reports())
    return min(n - 1, max(1, int(fraction * n)))


class TestHibernateWakeBitExact:
    """hibernate -> wake -> keep feeding == never hibernated, exactly."""

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_single_hibernation_is_invisible(self, fraction):
        assert_bit_identical(interrupted([cut_index(fraction)]), baseline())

    def test_mid_breath_hibernation(self):
        # Half-way through the capture lands mid-inhalation: the phase
        # chains are cut at an interior sample, the hardest spot for a
        # replay to get bit-right.
        assert_bit_identical(interrupted([len(reports()) // 2]), baseline())

    @settings(max_examples=8, deadline=None)
    @given(st.sets(st.floats(min_value=0.01, max_value=0.99),
                   min_size=2, max_size=5))
    def test_repeated_cycles_are_invisible(self, fractions):
        cuts = sorted({cut_index(f) for f in fractions})
        assert_bit_identical(interrupted(cuts), baseline())

    @settings(max_examples=8, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_wake_into_batched_feed(self, fraction):
        # The wake itself is triggered by a column batch: the engine's
        # feed_batch path must land on the identical state too.
        cut = cut_index(fraction)
        assert_bit_identical(interrupted([cut], batch_from=cut),
                             baseline())

    def test_wake_after_blob_round_trip_is_the_store_path(self):
        # The shard already parks through doc_to_blob; pin the codec
        # itself: doc -> blob -> doc is the identity on checkpoint docs.
        session = UserSession(USER, SessionConfig())
        for report in reports()[: len(reports()) // 3]:
            session.ingest(report)
        from repro.serve import session_state_to_doc
        doc = session_state_to_doc(session.state())
        doc["hibernated"] = True
        assert blob_to_doc(doc_to_blob(doc)) == doc

    def test_hibernation_frees_the_resident_engine(self):
        shard = SessionShard(0, SessionConfig(), publish=lambda m: None)
        for report in reports():
            shard.session_for(USER).ingest(report)
        resident = shard.sessions[USER].engine.streaming_nbytes(USER)
        assert shard.hibernate_session(USER)
        cold = shard.hibernated.resident_bytes()
        assert USER not in shard.sessions
        assert cold * 5 < resident  # the cold blob is a small fraction


class TestBackingStorageCompaction:
    """Pruned prefixes must release memory, not just logical length."""

    def test_growable_array_shrinks_after_drop_front(self):
        arr = GrowableArray(np.float64)
        arr.extend(np.arange(10_000.0))
        high_water = arr.capacity
        assert high_water >= 10_000
        arr.drop_front(9_900)
        # Shrink lands capacity in [2n, 4n): pinned exactly for n=100.
        assert arr.capacity == 256
        assert arr.capacity < high_water
        np.testing.assert_array_equal(arr.view(),
                                      np.arange(9_900.0, 10_000.0))

    def test_growable_array_never_shrinks_below_floor(self):
        arr = GrowableArray(np.float64)
        arr.extend(np.arange(1_000.0))
        arr.drop_front(999)
        assert arr.capacity == _MIN_CAPACITY
        assert len(arr) == 1

    def test_growable_array_hysteresis_no_thrash(self):
        # Oscillating around a power of two must not reallocate every
        # step: at half-full (above the quarter-full shrink trigger)
        # the capacity stays put.
        arr = GrowableArray(np.float64)
        arr.extend(np.arange(512.0))
        cap = arr.capacity
        for _ in range(16):
            arr.drop_front(1)
            arr.append(0.0)
            assert arr.capacity == cap

    def test_window_index_prune_releases_bytes(self):
        index = WindowIndex({"value": np.float64})
        times = np.arange(20_000, dtype=np.float64) * 0.01
        index.extend(times, value=times)
        high_water = index.nbytes
        index.prune_before(float(times[-1]) - 1.0)
        assert len(index) <= 102
        assert index.nbytes * 8 < high_water
        np.testing.assert_array_equal(index.times, index.column("value"))

    def test_ringbuffer_allocates_lazily(self):
        ring = RingBuffer(4096)
        assert ring.allocated == 64
        for i in range(100):
            ring.append(float(i), float(i))
        assert ring.allocated == 128
        assert ring.nbytes == 128 * 2 * 8
        series = ring.snapshot()
        np.testing.assert_array_equal(series.times, np.arange(100.0))

    def test_ringbuffer_grows_to_capacity_then_wraps(self):
        ring = RingBuffer(128)
        for i in range(300):
            ring.append(float(i), float(i))
        assert ring.allocated == 128
        series = ring.snapshot()
        np.testing.assert_array_equal(series.times, np.arange(172.0, 300.0))

    def test_ringbuffer_clear_releases_growth(self):
        ring = RingBuffer(4096)
        for i in range(3_000):
            ring.append(float(i), float(i))
        assert ring.allocated >= 3_000
        ring.clear()
        assert ring.allocated == 64
        assert len(ring) == 0


class TestLongStreamMemoryCeiling:
    """A multi-window stream must plateau, and stay estimate-exact."""

    def _shifted(self, batch, k, span):
        return ReportBatch(batch.t + k * span, batch.phase, batch.rssi,
                           batch.doppler, batch.channel, batch.antenna,
                           batch.user_id, batch.tag_id)

    def test_resident_bytes_plateau_across_windows(self):
        # 12 reps x 30 s = 360 s of stream — well past the 100 s pruning
        # horizon, so the later reps exercise steady-state prune+shrink.
        engine = TagBreathe(user_ids={USER})
        batch = ReportBatch.from_reports(reports())
        span = float(batch.t[-1] - batch.t[0]) + 0.05
        samples = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            for k in range(12):
                engine.feed_batch(self._shifted(batch, k, span))
                try:
                    engine.estimate_user(USER)
                except InsufficientDataError:
                    pass
                samples.append(engine.streaming_nbytes(USER))
        steady = max(samples[4:8])
        late = max(samples[8:])
        assert late <= steady * 1.5, samples

    def test_pruned_stream_still_matches_recompute(self):
        engine = TagBreathe(user_ids={USER})
        batch = ReportBatch.from_reports(reports())
        span = float(batch.t[-1] - batch.t[0]) + 0.05
        for k in range(6):
            engine.feed_batch(self._shifted(batch, k, span))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            streamed = engine.estimate_user(USER)
            recomputed = engine.estimate_user_recompute(USER)
        assert streamed.rate_bpm - recomputed.rate_bpm == 0.0
        np.testing.assert_array_equal(streamed.estimate.signal.values,
                                      recomputed.estimate.signal.values)

    def test_tracemalloc_ceiling_with_hibernation_cycles(self):
        # The full economic loop: feed, hibernate, wake, feed — python
        # heap growth between early and late cycles must stay bounded.
        shard = SessionShard(0, SessionConfig(), publish=lambda m: None)
        batch = ReportBatch.from_reports(reports())
        span = float(batch.t[-1] - batch.t[0]) + 0.05
        tracemalloc.start()
        peaks = []
        for k in range(8):
            shard.session_for(USER).ingest_batch(self._shifted(
                batch, k, span))
            shard.hibernate_session(USER)
            peaks.append(tracemalloc.get_traced_memory()[0])
        tracemalloc.stop()
        steady = max(peaks[2:5])
        late = max(peaks[5:])
        assert late <= steady * 1.5, peaks


class TestIdleSweepAndBudget:
    """The two eviction triggers: wall-clock idleness and head count."""

    def test_idle_sweep_parks_only_quiet_sessions(self):
        config = SessionConfig(idle_after_s=10.0)
        shard = SessionShard(0, config, publish=lambda m: None)
        for uid, report in [(1, reports()[0]), (2, reports()[1])]:
            session = shard.session_for(uid)
            session.ingest(report)
        shard.sessions[1].last_active -= 60.0  # user 1 went quiet
        assert shard.hibernate_idle() == 1
        assert 1 in shard.hibernated and 1 not in shard.sessions
        assert 2 in shard.sessions and 2 not in shard.hibernated
        assert shard.session_count == 2
        assert shard.user_ids() == [1, 2]

    def test_idle_sweep_disabled_without_knob(self):
        shard = SessionShard(0, SessionConfig(), publish=lambda m: None)
        shard.session_for(1).last_active -= 1e6
        assert shard.hibernate_idle() == 0
        assert 1 in shard.sessions

    def test_budget_evicts_least_recently_active(self):
        config = SessionConfig(max_resident=2)
        shard = SessionShard(0, config, publish=lambda m: None)
        for uid in (1, 2, 3):
            shard.session_for(uid)
            shard.sessions[uid].last_active = float(uid)
        shard.session_for(4)  # over budget: uid 1 is the LRA victim
        assert 1 in shard.hibernated
        assert sorted(shard.sessions) == [3, 4]
        assert 2 in shard.hibernated
        assert shard.session_count == 4

    def test_budget_never_evicts_the_session_just_touched(self):
        config = SessionConfig(max_resident=1)
        shard = SessionShard(0, config, publish=lambda m: None)
        shard.session_for(1)
        session = shard.session_for(2)
        assert 2 in shard.sessions
        assert session.user_id == 2
        assert 1 in shard.hibernated
