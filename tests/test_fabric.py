"""Tests for the multi-process serve fabric (repro.serve.fabric).

Covers the consistent-hash ring's contract (stability, balance,
minimal movement under membership change — property-tested with
hypothesis), the shared retry policy, worker portfile discovery, and
the end-to-end recovery acceptance: a worker SIGKILLed mid-replay is
restarted from its checkpoint and the final streamed estimates still
match the uninterrupted batch pipeline within 0.1 bpm.
"""

import asyncio
import json
import os
import signal
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.errors import (
    ConfigError,
    DegradedEstimateWarning,
    FabricError,
    InsufficientDataError,
    ServeError,
)
from repro.serve import (
    DEFAULT_VNODES,
    BreathFabric,
    FabricConfig,
    HashRing,
    IngestClient,
    RetryPolicy,
    SessionConfig,
    UserSession,
    session_state_from_doc,
)
from repro.serve.worker import (
    portfile_path,
    read_portfile,
    write_portfile,
)


def run(coro):
    """Run one coroutine to completion (the suite has no asyncio plugin)."""
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _quiet_degraded():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstimateWarning)
        yield


def make_capture(users=2, duration_s=40.0, seed=7):
    scenario = Scenario([
        Subject(user_id=uid, distance_m=3.0,
                lateral_offset_m=(uid - (users + 1) / 2) * 0.8,
                breathing=MetronomeBreathing(10.0 + 2.0 * uid),
                sway_seed=uid)
        for uid in range(1, users + 1)
    ])
    return run_scenario(scenario, duration_s=duration_s, seed=seed)


# ----------------------------------------------------------------------
# Consistent hashing (pure, no networking)
# ----------------------------------------------------------------------
class TestHashRing:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=8,
                    unique=True),
           st.integers(0, 2**64 - 1))
    @settings(max_examples=200, deadline=None)
    def test_owner_is_stable_across_ring_instances(self, workers, uid):
        """Same (user, worker set) -> same owner, on any ring instance
        and regardless of the order workers were listed in."""
        a = HashRing(workers)
        b = HashRing(list(reversed(workers)))
        assert a.owner(uid) == b.owner(uid)
        assert a.owner(uid) in workers

    def test_owner_is_stable_across_processes(self):
        """Pinned values: the mapping must never depend on process
        state (PYTHONHASHSEED, interpreter version). If this test
        breaks, every deployed router would disagree with every
        restarted one — do not 'fix' it by updating the constants
        without a migration plan."""
        ring = HashRing([0, 1, 2, 3])
        assignments = ring.assignments(range(1, 9))
        assert assignments == {
            uid: HashRing([0, 1, 2, 3]).owner(uid) for uid in range(1, 9)
        }
        # Cross-process witness: recompute one owner from first
        # principles (SHA-1 is the process-independent part).
        import hashlib
        h = int.from_bytes(hashlib.sha1(b"user:1").digest()[:8], "big")
        assert isinstance(h, int)  # the hash path uses sha1, not hash()

    @given(st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_load_is_balanced(self, n_workers):
        ring = HashRing(range(n_workers))
        load = ring.load(range(10_000))
        assert sum(load.values()) == 10_000
        mean = 10_000 / n_workers
        # 64 vnodes keeps the worst worker within ~1.5x of the mean.
        assert max(load.values()) <= mean * 1.6
        assert min(load.values()) >= mean * 0.4

    @given(st.integers(2, 6), st.integers(0, 2**32))
    @settings(max_examples=50, deadline=None)
    def test_membership_change_moves_only_new_arcs(self, n_workers, base):
        """Adding a worker relocates users only *to* the new worker;
        everyone else keeps their owner (minimal movement)."""
        users = range(base, base + 500)
        old = HashRing(range(n_workers))
        new = old.with_workers(range(n_workers + 1))
        moved = 0
        for uid in users:
            if old.owner(uid) != new.owner(uid):
                assert new.owner(uid) == n_workers  # only to the newcomer
                moved += 1
        # ~1/(N+1) of users move; allow generous slack either side.
        assert moved <= len(range(500)) * 2.5 / (n_workers + 1)

    def test_rejects_bad_construction(self):
        with pytest.raises(FabricError):
            HashRing([])
        with pytest.raises(FabricError):
            HashRing([1, 1])
        with pytest.raises(FabricError):
            HashRing([0], vnodes=0)

    def test_default_vnodes(self):
        assert HashRing([0]).vnodes == DEFAULT_VNODES


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_budget_is_bounded(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                             multiplier=2.0, max_delay_s=1.0, jitter=0.0)
        delays = list(policy.delays())
        assert delays == [0.1, 0.2, 0.4, 0.8]  # attempts - 1, capped

    def test_delay_ceiling_holds_under_jitter(self):
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.5,
                             multiplier=3.0, max_delay_s=2.0, jitter=0.5)
        for delay in policy.delays(seed=123):
            assert delay <= 2.0 * 1.5 + 1e-12

    def test_seeded_jitter_is_deterministic(self):
        policy = RetryPolicy()
        assert list(policy.delays(seed=42)) == list(policy.delays(seed=42))
        assert list(policy.delays(seed=42)) != list(policy.delays(seed=43))

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay_s=-1.0)


# ----------------------------------------------------------------------
# Worker port discovery
# ----------------------------------------------------------------------
class TestPortfile:
    def test_roundtrip(self, tmp_path):
        path = portfile_path(tmp_path, 3)
        write_portfile(path, port=54321, pid=999)
        assert read_portfile(path) == {"port": 54321, "pid": 999}

    def test_torn_or_absent_reads_as_none(self, tmp_path):
        path = portfile_path(tmp_path, 0)
        assert read_portfile(path) is None  # absent
        path.write_text('{"port": 1')  # torn mid-write
        assert read_portfile(path) is None
        path.write_text(json.dumps({"port": "not-a-port"}))
        assert read_portfile(path) is None


# ----------------------------------------------------------------------
# The fabric, end to end (multi-process)
# ----------------------------------------------------------------------
FAST_FABRIC = dict(
    workers=2,
    n_shards=1,
    heartbeat_interval_s=0.25,
    heartbeat_timeout_s=1.0,
    max_heartbeat_misses=2,
    checkpoint_interval_s=0.25,
)


def _final_rates(docs, user_ids, config):
    """Per-user final rates restored from harvested session docs."""
    rates = {}
    for doc in docs:
        state = session_state_from_doc(doc)
        uid = state["user_id"]
        if uid not in user_ids:
            continue
        local = UserSession(uid, config)
        local.restore(state, state["reports"])
        message = local.estimate_now()
        if message is not None:
            rates[uid] = message["rate_bpm"]
    return rates


class TestFabricRecovery:
    def test_sigkill_worker_mid_replay_matches_batch(self, tmp_path):
        """Acceptance: a worker SIGKILLed mid-replay is restarted from
        checkpoint and the streamed result still equals batch."""
        result = make_capture(users=2, duration_s=40.0, seed=7)
        reports = result.reports
        session = SessionConfig(estimate_interval_s=5.0)
        config = FabricConfig(session=session, **FAST_FABRIC)

        async def scenario():
            fabric = BreathFabric(tmp_path, config)
            await fabric.start()
            try:
                client = IngestClient(
                    "127.0.0.1", fabric.port, client_id="replayer",
                    connect_timeout_s=5.0, read_timeout_s=10.0,
                    retry=RetryPolicy(max_attempts=10, base_delay_s=0.2,
                                      max_delay_s=2.0),
                    retry_seed=7)
                await client.connect()

                async def assassin():
                    await asyncio.sleep(1.5)
                    victim = fabric.owner(1)
                    handle = fabric.supervisor.workers[victim]
                    os.kill(handle.process.pid, signal.SIGKILL)

                killer = asyncio.ensure_future(assassin())
                stats = await client.replay(reports, speed=6.0)
                await killer
                await client.close(polite=False)
                docs = await fabric.collect_states()
                restarts = sum(h.restarts
                               for h in fabric.supervisor.workers.values())
            finally:
                await fabric.stop(graceful=True)
            return stats, docs, restarts

        stats, docs, restarts = run(scenario())
        assert restarts >= 1  # recovery must be visible, not assumed
        assert stats.retries >= 1  # the client actually rode through it
        streamed = _final_rates(docs, {1, 2}, session)
        assert set(streamed) == {1, 2}

        engine = TagBreathe(user_ids={1, 2})
        engine.feed_many(reports)
        for uid in (1, 2):
            try:
                expected = engine.estimate_user(
                    uid, window_s=session.window_s)
            except InsufficientDataError:
                pytest.fail(f"batch baseline has no estimate for {uid}")
            assert streamed[uid] == pytest.approx(expected.rate_bpm,
                                                  abs=0.1)

    def test_routing_spreads_sessions_and_survives_rebalance(
            self, tmp_path):
        """Reports land on the ring owner; add_worker moves exactly the
        new arcs and no sessions are lost."""
        result = make_capture(users=2, duration_s=30.0, seed=3)
        session = SessionConfig(estimate_interval_s=5.0)
        config = FabricConfig(session=session, **FAST_FABRIC)

        async def scenario():
            fabric = BreathFabric(tmp_path, config)
            await fabric.start()
            try:
                client = IngestClient("127.0.0.1", fabric.port)
                await client.connect()
                await client.replay(result.reports, speed=0)
                before = await fabric.fleet_stats()
                placement = {
                    uid: fabric.owner(uid)
                    for uid in {r.user_id for r in result.reports}}
                for wid in fabric.supervisor.worker_ids():
                    for uid in await fabric.supervisor.sessions_of(wid):
                        assert placement[uid] == wid
                new_id = await fabric.add_worker()
                after = await fabric.fleet_stats()
                await client.close()
            finally:
                await fabric.stop(graceful=True)
            return before, after, new_id

        before, after, new_id = run(scenario())
        assert after["sessions"] == before["sessions"]  # none lost
        assert new_id in after["workers"]
        assert len(after["workers"]) == len(before["workers"]) + 1


class TestFabricHibernation:
    def test_hibernated_sessions_survive_crash_and_rebalance(
            self, tmp_path):
        """Parked sessions ride worker checkpoints through a SIGKILL
        restart AND migrate during a rebalance, then wake correct."""
        result = make_capture(users=2, duration_s=40.0, seed=7)
        reports = result.reports
        half = len(reports) // 2
        session = SessionConfig(estimate_interval_s=5.0, idle_after_s=0.3)
        config = FabricConfig(session=session, **FAST_FABRIC)

        async def scenario():
            fabric = BreathFabric(tmp_path, config)
            await fabric.start()
            try:
                client = IngestClient(
                    "127.0.0.1", fabric.port, client_id="hib",
                    connect_timeout_s=5.0, read_timeout_s=10.0,
                    retry=RetryPolicy(max_attempts=10, base_delay_s=0.2,
                                      max_delay_s=2.0),
                    retry_seed=3)
                await client.connect()
                await client.replay(reports[:half], speed=0)
                # Give the workers' idle sweeps (0.15 s interval) and a
                # checkpoint cycle (0.25 s) time to park both users.
                await asyncio.sleep(1.2)
                parked = await fabric.fleet_stats()
                victim = fabric.owner(1)
                handle = fabric.supervisor.workers[victim]
                os.kill(handle.process.pid, signal.SIGKILL)
                # Wait for the heartbeat monitor to notice, restart the
                # worker from its checkpoint (cold docs included), and
                # republish its port — only then rebalance.
                for _ in range(150):
                    await asyncio.sleep(0.2)
                    try:
                        for wid in fabric.supervisor.worker_ids():
                            await fabric.supervisor.ping_worker(wid)
                        break
                    except (FabricError, ServeError, OSError):
                        continue
                else:
                    pytest.fail("fleet never recovered from the kill")
                new_id = await fabric.add_worker()  # migrates cold docs
                after = await fabric.fleet_stats()
                await client.close(polite=False)
                # The users come back: a fresh client identity, so the
                # workers' idempotent-resume watermarks (which already
                # cover the first replay's seqs) don't filter the new
                # frames as duplicates.
                client2 = IngestClient(
                    "127.0.0.1", fabric.port, client_id="hib-return",
                    connect_timeout_s=5.0, read_timeout_s=10.0,
                    retry=RetryPolicy(max_attempts=10, base_delay_s=0.2,
                                      max_delay_s=2.0),
                    retry_seed=4)
                await client2.connect()
                await client2.replay(reports[half:], speed=0)
                await client2.close(polite=False)
                docs = await fabric.collect_states()
                restarts = sum(h.restarts
                               for h in fabric.supervisor.workers.values())
            finally:
                await fabric.stop(graceful=True)
            return parked, after, new_id, docs, restarts

        parked, after, new_id, docs, restarts = run(scenario())
        # Hibernated sessions stay owned: none lost to the crash, the
        # checkpoint restart, or the migration onto the new worker.
        assert parked["sessions"] == 2
        assert after["sessions"] == 2
        assert new_id in after["workers"]
        assert restarts >= 1  # the kill really forced a restart

        streamed = _final_rates(docs, {1, 2}, session)
        assert set(streamed) == {1, 2}
        engine = TagBreathe(user_ids={1, 2})
        engine.feed_many(reports)
        for uid in (1, 2):
            expected = engine.estimate_user(uid, window_s=session.window_s)
            assert streamed[uid] == pytest.approx(expected.rate_bpm,
                                                  abs=0.1)


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestFabricCLI:
    def test_parser_accepts_fabric_flags(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--workers", "4", "--state-dir", "/tmp/f"])
        assert args.workers == 4 and args.state_dir == "/tmp/f"
        args = parser.parse_args(
            ["chaos", "--users", "3", "--kills", "2", "--seed", "9"])
        assert args.command == "chaos"
        assert (args.users, args.kills, args.seed) == (3, 2, 9)

    def test_serve_workers_requires_state_dir(self, capsys):
        from repro.cli import main
        code = main(["serve", "--workers", "2"])
        assert code == 2
        assert "--state-dir" in capsys.readouterr().err
