"""Tests for the multi-process serve fabric (repro.serve.fabric).

Covers the consistent-hash ring's contract (stability, balance,
minimal movement under membership change — property-tested with
hypothesis), the shared retry policy, worker portfile discovery, and
the end-to-end recovery acceptance: a worker SIGKILLed mid-replay is
restarted from its checkpoint and the final streamed estimates still
match the uninterrupted batch pipeline within 0.1 bpm.
"""

import asyncio
import json
import os
import signal
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.errors import (
    ConfigError,
    DegradedEstimateWarning,
    FabricError,
    InsufficientDataError,
    ServeError,
)
from repro.serve import (
    DEFAULT_VNODES,
    BreathFabric,
    FabricConfig,
    HashRing,
    IngestClient,
    RetryPolicy,
    SessionConfig,
    UserSession,
    session_state_from_doc,
)
from repro.serve.statefiles import (
    fabric_endpoints,
    read_state_doc,
    registry_path,
    router_addr_path,
    supervisor_addr_path,
    write_state_doc,
)
from repro.serve.supervisor import Supervisor, WorkerHandle
from repro.serve.worker import (
    parse_addr,
    portfile_path,
    read_portfile,
    register_with,
    write_portfile,
)


def run(coro):
    """Run one coroutine to completion (the suite has no asyncio plugin)."""
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _quiet_degraded():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstimateWarning)
        yield


def make_capture(users=2, duration_s=40.0, seed=7):
    scenario = Scenario([
        Subject(user_id=uid, distance_m=3.0,
                lateral_offset_m=(uid - (users + 1) / 2) * 0.8,
                breathing=MetronomeBreathing(10.0 + 2.0 * uid),
                sway_seed=uid)
        for uid in range(1, users + 1)
    ])
    return run_scenario(scenario, duration_s=duration_s, seed=seed)


# ----------------------------------------------------------------------
# Consistent hashing (pure, no networking)
# ----------------------------------------------------------------------
class TestHashRing:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=8,
                    unique=True),
           st.integers(0, 2**64 - 1))
    @settings(max_examples=200, deadline=None)
    def test_owner_is_stable_across_ring_instances(self, workers, uid):
        """Same (user, worker set) -> same owner, on any ring instance
        and regardless of the order workers were listed in."""
        a = HashRing(workers)
        b = HashRing(list(reversed(workers)))
        assert a.owner(uid) == b.owner(uid)
        assert a.owner(uid) in workers

    def test_owner_is_stable_across_processes(self):
        """Pinned values: the mapping must never depend on process
        state (PYTHONHASHSEED, interpreter version). If this test
        breaks, every deployed router would disagree with every
        restarted one — do not 'fix' it by updating the constants
        without a migration plan."""
        ring = HashRing([0, 1, 2, 3])
        assignments = ring.assignments(range(1, 9))
        assert assignments == {
            uid: HashRing([0, 1, 2, 3]).owner(uid) for uid in range(1, 9)
        }
        # Cross-process witness: recompute one owner from first
        # principles (SHA-1 is the process-independent part).
        import hashlib
        h = int.from_bytes(hashlib.sha1(b"user:1").digest()[:8], "big")
        assert isinstance(h, int)  # the hash path uses sha1, not hash()

    @given(st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_load_is_balanced(self, n_workers):
        ring = HashRing(range(n_workers))
        load = ring.load(range(10_000))
        assert sum(load.values()) == 10_000
        mean = 10_000 / n_workers
        # 64 vnodes keeps the worst worker within ~1.5x of the mean.
        assert max(load.values()) <= mean * 1.6
        assert min(load.values()) >= mean * 0.4

    @given(st.integers(2, 6), st.integers(0, 2**32))
    @settings(max_examples=50, deadline=None)
    def test_membership_change_moves_only_new_arcs(self, n_workers, base):
        """Adding a worker relocates users only *to* the new worker;
        everyone else keeps their owner (minimal movement)."""
        users = range(base, base + 500)
        old = HashRing(range(n_workers))
        new = old.with_workers(range(n_workers + 1))
        moved = 0
        for uid in users:
            if old.owner(uid) != new.owner(uid):
                assert new.owner(uid) == n_workers  # only to the newcomer
                moved += 1
        # ~1/(N+1) of users move; allow generous slack either side.
        assert moved <= len(range(500)) * 2.5 / (n_workers + 1)

    def test_rejects_bad_construction(self):
        with pytest.raises(FabricError):
            HashRing([])
        with pytest.raises(FabricError):
            HashRing([1, 1])
        with pytest.raises(FabricError):
            HashRing([0], vnodes=0)

    def test_default_vnodes(self):
        assert HashRing([0]).vnodes == DEFAULT_VNODES


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_budget_is_bounded(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                             multiplier=2.0, max_delay_s=1.0, jitter=0.0)
        delays = list(policy.delays())
        assert delays == [0.1, 0.2, 0.4, 0.8]  # attempts - 1, capped

    def test_delay_ceiling_holds_under_jitter(self):
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.5,
                             multiplier=3.0, max_delay_s=2.0, jitter=0.5)
        for delay in policy.delays(seed=123):
            assert delay <= 2.0 * 1.5 + 1e-12

    def test_seeded_jitter_is_deterministic(self):
        policy = RetryPolicy()
        assert list(policy.delays(seed=42)) == list(policy.delays(seed=42))
        assert list(policy.delays(seed=42)) != list(policy.delays(seed=43))

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay_s=-1.0)

    @given(st.integers(1, 12),
           st.floats(0.01, 0.5),
           st.floats(1.0, 4.0),
           st.floats(0.5, 5.0),
           st.floats(0.0, 0.9),
           st.integers(0, 2**32))
    @settings(max_examples=150, deadline=None)
    def test_every_delay_stays_in_its_jitter_band(
            self, attempts, base, multiplier, ceiling, jitter, seed):
        """Property: with the un-jittered schedule d0=base,
        d_{k+1}=min(d_k*mult, ceiling), every emitted delay lies in
        [d*(1-jitter), d*(1+jitter)] and there are exactly
        max_attempts-1 of them."""
        policy = RetryPolicy(max_attempts=attempts, base_delay_s=base,
                             multiplier=multiplier, max_delay_s=ceiling,
                             jitter=jitter)
        delays = list(policy.delays(seed=seed))
        assert len(delays) == attempts - 1
        raw = base
        for delay in delays:
            assert raw * (1.0 - jitter) - 1e-12 <= delay
            assert delay <= raw * (1.0 + jitter) + 1e-12
            raw = min(raw * multiplier, ceiling)

    @given(st.integers(2, 12), st.floats(0.0, 0.9), st.integers(0, 2**32))
    @settings(max_examples=100, deadline=None)
    def test_ceiling_bounds_every_delay(self, attempts, jitter, seed):
        """Property: no jittered delay ever exceeds
        max_delay_s * (1 + jitter) — the worst-case wait per retry is
        bounded no matter how many attempts the budget allows."""
        policy = RetryPolicy(max_attempts=attempts, base_delay_s=0.1,
                             multiplier=3.0, max_delay_s=1.0, jitter=jitter)
        for delay in policy.delays(seed=seed):
            assert delay <= 1.0 * (1.0 + jitter) + 1e-12


# ----------------------------------------------------------------------
# Worker port discovery
# ----------------------------------------------------------------------
class TestPortfile:
    def test_roundtrip(self, tmp_path):
        path = portfile_path(tmp_path, 3)
        write_portfile(path, port=54321, pid=999)
        assert read_portfile(path) == {"port": 54321, "pid": 999}

    def test_torn_or_absent_reads_as_none(self, tmp_path):
        path = portfile_path(tmp_path, 0)
        assert read_portfile(path) is None  # absent
        path.write_text('{"port": 1')  # torn mid-write
        assert read_portfile(path) is None
        path.write_text(json.dumps({"port": "not-a-port"}))
        assert read_portfile(path) is None


# ----------------------------------------------------------------------
# On-disk coordination plane (statefiles)
# ----------------------------------------------------------------------
class TestStateFiles:
    def test_roundtrip_and_retraction(self, tmp_path):
        path = supervisor_addr_path(tmp_path)
        write_state_doc(path, {"host": "127.0.0.1", "port": 4242,
                               "pid": 99, "epoch": 3})
        assert read_state_doc(path)["epoch"] == 3
        path.unlink()
        assert read_state_doc(path) is None

    def test_torn_or_non_dict_reads_as_none(self, tmp_path):
        path = registry_path(tmp_path)
        path.write_text('{"epoch": 1, "workers":')  # torn mid-write
        assert read_state_doc(path) is None
        path.write_text('[1, 2, 3]')  # valid JSON, wrong shape
        assert read_state_doc(path) is None

    def test_router_roles_are_closed(self, tmp_path):
        with pytest.raises(ValueError):
            router_addr_path(tmp_path, "tertiary")

    def test_fabric_endpoints_lists_primary_first(self, tmp_path):
        assert fabric_endpoints(tmp_path) == []
        write_state_doc(router_addr_path(tmp_path, "standby"),
                        {"host": "10.0.0.2", "port": 2222, "pid": 2})
        write_state_doc(router_addr_path(tmp_path, "primary"),
                        {"host": "10.0.0.1", "port": 1111, "pid": 1})
        assert fabric_endpoints(tmp_path) == [("10.0.0.1", 1111),
                                              ("10.0.0.2", 2222)]

    def test_parse_addr(self):
        assert parse_addr("10.0.0.7:9000") == ("10.0.0.7", 9000)
        with pytest.raises(ValueError):
            parse_addr("9000")


# ----------------------------------------------------------------------
# Supervisor fleet bookkeeping (regression tests for the three
# supervision bugs: per-worker map leaks, the restart/remove race, and
# serial heartbeat probing)
# ----------------------------------------------------------------------
class TestSupervisorBookkeeping:
    @staticmethod
    def _bare_supervisor(tmp_path, **overrides):
        knobs = dict(workers=0, heartbeat_interval_s=0.05,
                     heartbeat_timeout_s=0.5)
        knobs.update(overrides)
        return Supervisor(tmp_path, FabricConfig(**knobs))

    def test_fleet_shrink_releases_every_per_worker_map(self, tmp_path):
        """remove_worker must drop *all* per-worker entries — a leaked
        control-link lock per grow/shrink cycle is unbounded memory on
        a long-lived elastic fabric."""
        async def scenario():
            sup = self._bare_supervisor(tmp_path)
            for _ in range(3):  # repeated grow/shrink cycles
                for wid in range(4):
                    sup.workers[wid] = WorkerHandle(wid, spawned=False)
                    sup._restart_locks.setdefault(wid, asyncio.Lock())
                    sup._control_lock(wid)
                    sup._registered.setdefault(wid, asyncio.Event())
                for wid in range(4):
                    await sup.remove_worker(wid, graceful=False)
            return sup

        sup = run(scenario())
        assert sup.workers == {}
        assert sup._restart_locks == {}
        assert sup._control_locks == {}
        assert sup._registered == {}

    def test_restart_queued_behind_remove_raises_fabric_error(
            self, tmp_path):
        """A restart that queues on the coalescing lock while the
        worker is removed must surface FabricError, not KeyError."""
        async def scenario():
            sup = self._bare_supervisor(tmp_path)
            sup.workers[3] = WorkerHandle(3, spawned=False)
            lock = sup._restart_locks.setdefault(3, asyncio.Lock())
            await lock.acquire()  # an in-flight restart holds the lock
            waiter = asyncio.ensure_future(sup.restart(3))
            await asyncio.sleep(0.05)  # waiter is queued on the lock
            await sup.remove_worker(3, graceful=False)
            lock.release()
            with pytest.raises(FabricError, match="removed during restart"):
                await waiter

        run(scenario())

    def test_restart_of_unknown_worker_raises_fabric_error(self, tmp_path):
        async def scenario():
            sup = self._bare_supervisor(tmp_path)
            with pytest.raises(FabricError):
                await sup.restart(9)

        run(scenario())

    def test_heartbeats_probe_the_fleet_concurrently(self, tmp_path):
        """One wedged worker must cost one probe timeout, not O(fleet):
        the loop fires every probe of a sweep together."""
        async def scenario():
            sup = self._bare_supervisor(tmp_path)
            for wid in range(4):
                sup.workers[wid] = WorkerHandle(wid, spawned=False)
            active = 0
            peak = 0

            async def fake_probe(worker_id):
                nonlocal active, peak
                active += 1
                peak = max(peak, active)
                await asyncio.sleep(0.1)
                active -= 1

            sup._probe = fake_probe
            task = asyncio.ensure_future(sup._heartbeat_loop())
            await asyncio.sleep(0.4)
            sup._stopping = True
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            return peak

        peak = run(scenario())
        assert peak == 4  # the whole sweep in flight together


# ----------------------------------------------------------------------
# Control-socket registration (TCP worker transport)
# ----------------------------------------------------------------------
class TestControlRegistration:
    def test_remote_join_is_assigned_an_id_and_fleet_options(
            self, tmp_path):
        """Two-phase join/register against a live control socket: the
        supervisor assigns the id, hands back fleet-consistent session
        knobs, and records the worker as remote (not killable)."""
        async def scenario():
            config = FabricConfig(workers=0, n_shards=3,
                                  heartbeat_interval_s=0.1)
            sup = Supervisor(tmp_path, config)
            await sup.start()
            try:
                assign = await register_with(
                    [sup.control_address()], worker_id=None,
                    host="127.0.0.1", port=45001)
                addr_doc = read_state_doc(supervisor_addr_path(tmp_path))
                registry = read_state_doc(registry_path(tmp_path))
            finally:
                await sup.stop(graceful=False)
            return sup, assign, addr_doc, registry

        sup, assign, addr_doc, registry = run(scenario())
        assert assign is not None and assign["type"] == "assign"
        wid = assign["worker_id"]
        assert assign["options"]["n_shards"] == 3  # fleet knobs travel
        handle = sup.workers[wid]
        assert handle.remote and not handle.spawned
        assert sup.address_of(wid) == ("127.0.0.1", 45001)
        # The coordination plane reflects the join:
        assert addr_doc["port"] == sup.control_port
        assert str(wid) in registry["workers"]
        assert registry["workers"][str(wid)]["spawned"] is False

    def test_pinned_id_rejoin_and_stale_pid_rejection(self, tmp_path):
        """A worker may rejoin under its existing id; a registration
        from a pid that is not the current local incarnation is
        rejected instead of poisoning the port map."""
        async def scenario():
            sup = Supervisor(tmp_path, FabricConfig(workers=0))
            await sup.start()
            try:
                first = await register_with(
                    [sup.control_address()], worker_id=7,
                    host="127.0.0.1", port=45002)
                second = await register_with(
                    [sup.control_address()], worker_id=7,
                    host="127.0.0.1", port=45003)
                # Simulate a local incarnation: a Popen whose pid is not
                # the registering process's.
                class _FakeProcess:
                    pid = -1

                    def poll(self):
                        return None

                sup.workers[7].process = _FakeProcess()
                stale = sup._handle_register(
                    {"worker_id": 7, "host": "127.0.0.1",
                     "port": 45004, "pid": os.getpid()})
            finally:
                sup.workers[7].process = None
                await sup.stop(graceful=False)
            return first, second, stale, sup

        first, second, stale, sup = run(scenario())
        assert first["worker_id"] == 7 and second["worker_id"] == 7
        assert stale["type"] == "error" and "stale" in stale["error"]
        assert sup.workers[7].port == 45003  # the rejected port never landed


# ----------------------------------------------------------------------
# Standby attach / takeover (supervisor level)
# ----------------------------------------------------------------------
class TestStandbyTakeover:
    def test_attach_mirrors_registry_and_takeover_bumps_epoch(
            self, tmp_path):
        """A standby attaches by reading fabric.json (no sockets), then
        a takeover adopts the fleet, opens a control socket, and
        publishes a strictly newer epoch."""
        write_state_doc(registry_path(tmp_path), {
            "epoch": 4,
            "workers": {"0": {"host": "127.0.0.1", "port": 40001,
                              "pid": 1234, "spawned": False}},
        })
        write_state_doc(supervisor_addr_path(tmp_path), {
            "host": "127.0.0.1", "port": 39999, "pid": 1, "epoch": 4})

        async def scenario():
            sup = Supervisor(tmp_path, FabricConfig(
                workers=1, heartbeat_interval_s=0.05))
            await sup.attach()
            attached_view = (sup.attached, dict(sup.workers),
                             sup.control_port)
            await sup.takeover()
            addr_doc = read_state_doc(supervisor_addr_path(tmp_path))
            await sup.stop(graceful=False)
            return sup, attached_view, addr_doc

        sup, (attached, workers, control_port), addr_doc = run(scenario())
        assert attached and control_port is None  # mirror only
        assert 0 in workers and workers[0].port == 40001
        assert not sup.attached and sup.control_port is not None
        assert sup.epoch == 5  # strictly newer than the dead primary's
        # stop() retracts supervisor.addr so orphan hunts fail fast:
        assert addr_doc["epoch"] == 5
        assert read_state_doc(supervisor_addr_path(tmp_path)) is None

    def test_standby_fabric_requires_an_existing_registry(self, tmp_path):
        async def scenario():
            fabric = BreathFabric(tmp_path, FabricConfig(workers=1),
                                  standby=True)
            with pytest.raises(FabricError, match="no worker registry"):
                await fabric.start()

        run(scenario())


# ----------------------------------------------------------------------
# The fabric, end to end (multi-process)
# ----------------------------------------------------------------------
FAST_FABRIC = dict(
    workers=2,
    n_shards=1,
    heartbeat_interval_s=0.25,
    heartbeat_timeout_s=1.0,
    max_heartbeat_misses=2,
    checkpoint_interval_s=0.25,
)


def _final_rates(docs, user_ids, config):
    """Per-user final rates restored from harvested session docs."""
    rates = {}
    for doc in docs:
        state = session_state_from_doc(doc)
        uid = state["user_id"]
        if uid not in user_ids:
            continue
        local = UserSession(uid, config)
        local.restore(state, state["reports"])
        message = local.estimate_now()
        if message is not None:
            rates[uid] = message["rate_bpm"]
    return rates


class TestFabricRecovery:
    def test_sigkill_worker_mid_replay_matches_batch(self, tmp_path):
        """Acceptance: a worker SIGKILLed mid-replay is restarted from
        checkpoint and the streamed result still equals batch."""
        result = make_capture(users=2, duration_s=40.0, seed=7)
        reports = result.reports
        session = SessionConfig(estimate_interval_s=5.0)
        config = FabricConfig(session=session, **FAST_FABRIC)

        async def scenario():
            fabric = BreathFabric(tmp_path, config)
            await fabric.start()
            try:
                client = IngestClient(
                    "127.0.0.1", fabric.port, client_id="replayer",
                    connect_timeout_s=5.0, read_timeout_s=10.0,
                    retry=RetryPolicy(max_attempts=10, base_delay_s=0.2,
                                      max_delay_s=2.0),
                    retry_seed=7)
                await client.connect()

                async def assassin():
                    await asyncio.sleep(1.5)
                    victim = fabric.owner(1)
                    handle = fabric.supervisor.workers[victim]
                    os.kill(handle.process.pid, signal.SIGKILL)

                killer = asyncio.ensure_future(assassin())
                stats = await client.replay(reports, speed=6.0)
                await killer
                await client.close(polite=False)
                docs = await fabric.collect_states()
                restarts = sum(h.restarts
                               for h in fabric.supervisor.workers.values())
            finally:
                await fabric.stop(graceful=True)
            return stats, docs, restarts

        stats, docs, restarts = run(scenario())
        assert restarts >= 1  # recovery must be visible, not assumed
        assert stats.retries >= 1  # the client actually rode through it
        streamed = _final_rates(docs, {1, 2}, session)
        assert set(streamed) == {1, 2}

        engine = TagBreathe(user_ids={1, 2})
        engine.feed_many(reports)
        for uid in (1, 2):
            try:
                expected = engine.estimate_user(
                    uid, window_s=session.window_s)
            except InsufficientDataError:
                pytest.fail(f"batch baseline has no estimate for {uid}")
            assert streamed[uid] == pytest.approx(expected.rate_bpm,
                                                  abs=0.1)

    def test_routing_spreads_sessions_and_survives_rebalance(
            self, tmp_path):
        """Reports land on the ring owner; add_worker moves exactly the
        new arcs and no sessions are lost."""
        result = make_capture(users=2, duration_s=30.0, seed=3)
        session = SessionConfig(estimate_interval_s=5.0)
        config = FabricConfig(session=session, **FAST_FABRIC)

        async def scenario():
            fabric = BreathFabric(tmp_path, config)
            await fabric.start()
            try:
                client = IngestClient("127.0.0.1", fabric.port)
                await client.connect()
                await client.replay(result.reports, speed=0)
                before = await fabric.fleet_stats()
                placement = {
                    uid: fabric.owner(uid)
                    for uid in {r.user_id for r in result.reports}}
                for wid in fabric.supervisor.worker_ids():
                    for uid in await fabric.supervisor.sessions_of(wid):
                        assert placement[uid] == wid
                new_id = await fabric.add_worker()
                after = await fabric.fleet_stats()
                await client.close()
            finally:
                await fabric.stop(graceful=True)
            return before, after, new_id

        before, after, new_id = run(scenario())
        assert after["sessions"] == before["sessions"]  # none lost
        assert new_id in after["workers"]
        assert len(after["workers"]) == len(before["workers"]) + 1


class TestFabricHibernation:
    def test_hibernated_sessions_survive_crash_and_rebalance(
            self, tmp_path):
        """Parked sessions ride worker checkpoints through a SIGKILL
        restart AND migrate during a rebalance, then wake correct."""
        result = make_capture(users=2, duration_s=40.0, seed=7)
        reports = result.reports
        half = len(reports) // 2
        session = SessionConfig(estimate_interval_s=5.0, idle_after_s=0.3)
        config = FabricConfig(session=session, **FAST_FABRIC)

        async def scenario():
            fabric = BreathFabric(tmp_path, config)
            await fabric.start()
            try:
                client = IngestClient(
                    "127.0.0.1", fabric.port, client_id="hib",
                    connect_timeout_s=5.0, read_timeout_s=10.0,
                    retry=RetryPolicy(max_attempts=10, base_delay_s=0.2,
                                      max_delay_s=2.0),
                    retry_seed=3)
                await client.connect()
                await client.replay(reports[:half], speed=0)
                # Give the workers' idle sweeps (0.15 s interval) and a
                # checkpoint cycle (0.25 s) time to park both users.
                await asyncio.sleep(1.2)
                parked = await fabric.fleet_stats()
                victim = fabric.owner(1)
                handle = fabric.supervisor.workers[victim]
                os.kill(handle.process.pid, signal.SIGKILL)
                # Wait for the heartbeat monitor to notice, restart the
                # worker from its checkpoint (cold docs included), and
                # republish its port — only then rebalance.
                for _ in range(150):
                    await asyncio.sleep(0.2)
                    try:
                        for wid in fabric.supervisor.worker_ids():
                            await fabric.supervisor.ping_worker(wid)
                        break
                    except (FabricError, ServeError, OSError):
                        continue
                else:
                    pytest.fail("fleet never recovered from the kill")
                new_id = await fabric.add_worker()  # migrates cold docs
                after = await fabric.fleet_stats()
                await client.close(polite=False)
                # The users come back: a fresh client identity, so the
                # workers' idempotent-resume watermarks (which already
                # cover the first replay's seqs) don't filter the new
                # frames as duplicates.
                client2 = IngestClient(
                    "127.0.0.1", fabric.port, client_id="hib-return",
                    connect_timeout_s=5.0, read_timeout_s=10.0,
                    retry=RetryPolicy(max_attempts=10, base_delay_s=0.2,
                                      max_delay_s=2.0),
                    retry_seed=4)
                await client2.connect()
                await client2.replay(reports[half:], speed=0)
                await client2.close(polite=False)
                docs = await fabric.collect_states()
                restarts = sum(h.restarts
                               for h in fabric.supervisor.workers.values())
            finally:
                await fabric.stop(graceful=True)
            return parked, after, new_id, docs, restarts

        parked, after, new_id, docs, restarts = run(scenario())
        # Hibernated sessions stay owned: none lost to the crash, the
        # checkpoint restart, or the migration onto the new worker.
        assert parked["sessions"] == 2
        assert after["sessions"] == 2
        assert new_id in after["workers"]
        assert restarts >= 1  # the kill really forced a restart

        streamed = _final_rates(docs, {1, 2}, session)
        assert set(streamed) == {1, 2}
        engine = TagBreathe(user_ids={1, 2})
        engine.feed_many(reports)
        for uid in (1, 2):
            expected = engine.estimate_user(uid, window_s=session.window_s)
            assert streamed[uid] == pytest.approx(expected.rate_bpm,
                                                  abs=0.1)


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestClientEndpoints:
    def test_rotation_round_robins_and_updates_target(self):
        client = IngestClient(endpoints=[("a", 1), ("b", 2)])
        assert client.endpoints == (("a", 1), ("b", 2))
        assert (client.host, client.port) == ("a", 1)
        assert client.rotate_endpoint() == ("b", 2)
        assert (client.host, client.port) == ("b", 2)
        assert client.rotate_endpoint() == ("a", 1)

    def test_single_endpoint_stays_put(self):
        client = IngestClient("a", 1)
        assert client.endpoints == (("a", 1),)

    def test_requires_an_endpoint(self):
        with pytest.raises(ValueError):
            IngestClient()


class TestFabricCLI:
    def test_parser_accepts_fabric_flags(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--workers", "4", "--state-dir", "/tmp/f"])
        assert args.workers == 4 and args.state_dir == "/tmp/f"
        assert args.standby is False
        args = parser.parse_args(
            ["chaos", "--users", "3", "--kills", "2", "--seed", "9"])
        assert args.command == "chaos"
        assert (args.users, args.kills, args.seed) == (3, 2, 9)
        assert args.router_kill is False

    def test_parser_accepts_multi_machine_flags(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--standby", "--state-dir", "/tmp/f"])
        assert args.standby is True and args.workers == 0
        args = parser.parse_args(
            ["serve-worker", "--join", "10.0.0.1:7000",
             "--state-dir", "/tmp/w", "--advertise", "10.0.0.9"])
        assert args.command == "serve-worker"
        assert args.join == "10.0.0.1:7000"
        assert args.worker_id is None and args.advertise == "10.0.0.9"
        args = parser.parse_args(["chaos", "--router-kill"])
        assert args.router_kill is True

    def test_serve_workers_requires_state_dir(self, capsys):
        from repro.cli import main
        code = main(["serve", "--workers", "2"])
        assert code == 2
        assert "--state-dir" in capsys.readouterr().err

    def test_serve_standby_requires_state_dir(self, capsys):
        from repro.cli import main
        code = main(["serve", "--standby"])
        assert code == 2
        assert "--standby requires --state-dir" in capsys.readouterr().err
