"""Tests for the Kalman breathing-rate tracker (repro.core.tracking)."""

import numpy as np
import pytest

from repro.core.tracking import BreathingRateTracker, smooth_rate_series
from repro.errors import ReproError
from repro.streams import TimeSeries


def noisy_rates(true_bpm=12.0, n=40, noise=0.8, seed=0, dt=2.5):
    rng = np.random.default_rng(seed)
    t = np.arange(n) * dt
    values = true_bpm + rng.normal(0, noise, n)
    return TimeSeries(t, np.clip(values, 1.0, None))


class TestTracker:
    def test_first_measurement_initialises(self):
        tracker = BreathingRateTracker()
        assert tracker.rate_bpm is None
        out = tracker.update(0.0, 12.0)
        assert out.rate_bpm == pytest.approx(12.0)
        assert tracker.rate_bpm == pytest.approx(12.0)

    def test_smooths_noise(self):
        rates = noisy_rates(noise=1.5, seed=3)
        tracked = BreathingRateTracker().track_series(rates)
        raw_err = np.abs(rates.values - 12.0)
        smoothed_err = np.abs([t.rate_bpm for t in tracked[5:]]) - 12.0
        assert np.mean(np.abs(smoothed_err)) < np.mean(raw_err)

    def test_converges_to_constant_rate(self):
        tracked = BreathingRateTracker().track_series(noisy_rates(noise=0.5))
        tail = np.mean([t.rate_bpm for t in tracked[-10:]])
        assert tail == pytest.approx(12.0, abs=0.5)
        assert abs(tracked[-1].trend_bpm_per_min) < 6.0

    def test_follows_a_ramp(self):
        # Rate climbing from 10 to 16 bpm over 100 s.
        t = np.arange(0, 100, 2.5)
        values = 10.0 + 0.06 * t
        tracked = BreathingRateTracker().track_series(TimeSeries(t, values))
        assert tracked[-1].rate_bpm == pytest.approx(values[-1], abs=1.0)
        assert tracked[-1].trend_bpm_per_min > 0.5

    def test_outlier_gated(self):
        tracker = BreathingRateTracker()
        for i in range(10):
            tracker.update(i * 2.5, 12.0)
        out = tracker.update(25.0, 60.0)  # a corrupted crossing burst
        assert out.gated
        assert out.rate_bpm == pytest.approx(12.0, abs=1.0)

    def test_uncertainty_shrinks_with_data(self):
        tracker = BreathingRateTracker()
        first = tracker.update(0.0, 12.0)
        for i in range(1, 15):
            last = tracker.update(i * 2.5, 12.0)
        assert last.uncertainty_bpm < first.uncertainty_bpm

    def test_prior_initialisation(self):
        tracker = BreathingRateTracker(initial_rate_bpm=15.0)
        assert tracker.rate_bpm == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            BreathingRateTracker(process_noise=0.0)
        with pytest.raises(ReproError):
            BreathingRateTracker(gate_sigmas=0.0)
        with pytest.raises(ReproError):
            BreathingRateTracker(initial_rate_bpm=-1.0)
        tracker = BreathingRateTracker()
        with pytest.raises(ReproError):
            tracker.update(0.0, 0.0)
        tracker.update(5.0, 12.0)
        with pytest.raises(ReproError):
            tracker.update(4.0, 12.0)


class TestSmoothSeries:
    def test_output_alignment(self):
        rates = noisy_rates()
        smoothed = smooth_rate_series(rates)
        np.testing.assert_array_equal(smoothed.times, rates.times)

    def test_variance_reduced(self):
        rates = noisy_rates(noise=1.2, seed=7)
        smoothed = smooth_rate_series(rates)
        assert smoothed.values[5:].std() < rates.values[5:].std()

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            smooth_rate_series(TimeSeries.empty())

    def test_end_to_end_with_pipeline(self):
        """Tracker over real Eq. (5) output from a simulated capture."""
        from repro import Scenario, TagBreathe, run_scenario
        from repro.body import MetronomeBreathing, Subject
        scenario = Scenario([Subject(user_id=1, distance_m=3.0,
                                     breathing=MetronomeBreathing(12.0),
                                     sway_seed=4)])
        result = run_scenario(scenario, duration_s=60.0, seed=91)
        estimate = TagBreathe(user_ids={1}).process(result.reports)[1]
        smoothed = smooth_rate_series(estimate.estimate.rate_series)
        assert smoothed.values[-1] == pytest.approx(12.0, abs=1.0)
