"""Tests for multi-tag raw-data fusion (Eq. 6-7) and user grouping."""

import numpy as np
import pytest

from repro.core.fusion import (
    FusedStream,
    fuse_sample_streams,
    fuse_streams,
    group_reports_by_user,
)
from repro.epc import EPC96
from repro.errors import EmptyStreamError, StreamError
from repro.reader import TagReport
from repro.streams import TimeSeries


def make_report(t, user, tag):
    return TagReport(
        epc=EPC96.from_user_tag(user, tag),
        timestamp_s=t,
        phase_rad=1.0,
        rssi_dbm=-55.0,
        doppler_hz=0.0,
        channel_index=0,
        antenna_port=1,
    )


def sine_stream(freq=0.2, duration=30.0, rate=10.0, amplitude=1.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(0.0, duration, 1.0 / rate)
    v = amplitude * np.sin(2 * np.pi * freq * t) + rng.normal(0, noise, len(t))
    return TimeSeries(t, v)


class TestUserGrouping:
    def test_groups_by_epc_user_field(self):
        reports = [make_report(0.1, 1, 1), make_report(0.2, 2, 1),
                   make_report(0.3, 1, 2)]
        grouped = group_reports_by_user(reports)
        assert set(grouped) == {1, 2}
        assert len(grouped[1]) == 2

    def test_filter_to_monitored_users(self):
        """Fig. 14: item tags' reads must be ignored via the ID filter."""
        reports = [make_report(0.1, 1, 1), make_report(0.2, 0xFFFF_FFFF_0000_0001, 1)]
        grouped = group_reports_by_user(reports, user_ids={1})
        assert set(grouped) == {1}


class TestFuseStreamsEq6:
    def test_coherent_signals_add(self):
        streams = {(1, k): sine_stream(seed=k) for k in (1, 2, 3)}
        fused = fuse_streams(1, streams, bin_s=0.1)
        single = fuse_streams(1, {(1, 1): sine_stream()}, bin_s=0.1)
        assert np.abs(fused.increments.values).max() == pytest.approx(
            3 * np.abs(single.increments.values).max(), rel=0.05
        )

    def test_track_is_cumsum_of_increments(self):
        streams = {(1, 1): sine_stream()}
        fused = fuse_streams(1, streams)
        np.testing.assert_allclose(
            fused.track.values, np.cumsum(fused.increments.values)
        )

    def test_tags_fused_counts_nonempty(self):
        streams = {(1, 1): sine_stream(), (1, 2): TimeSeries.empty()}
        fused = fuse_streams(1, streams)
        assert fused.tags_fused == 1

    def test_all_empty_rejected(self):
        with pytest.raises(EmptyStreamError):
            fuse_streams(1, {(1, 1): TimeSeries.empty()})

    def test_bad_bin_rejected(self):
        with pytest.raises(StreamError):
            fuse_streams(1, {(1, 1): sine_stream()}, bin_s=0.0)

    def test_noise_averages_down(self):
        """Eq. 6's point: coherent signal, incoherent noise."""
        def band_snr(fused):
            spectrum = np.abs(np.fft.rfft(fused.increments.values))
            freqs = np.fft.rfftfreq(len(fused.increments), d=fused.bin_s)
            sig = spectrum[np.argmin(np.abs(freqs - 0.2))]
            noise = np.median(spectrum[(freqs > 1.0)])
            return sig / noise
        single = fuse_streams(1, {(1, 1): sine_stream(noise=1.0, seed=1)}, bin_s=0.1)
        triple = fuse_streams(1, {
            (1, k): sine_stream(noise=1.0, seed=k) for k in (1, 2, 3)
        }, bin_s=0.1)
        assert band_snr(triple) > band_snr(single)


class TestFuseSampleStreams:
    def test_sum_of_binned_means(self):
        streams = {(1, k): sine_stream(rate=25.0, seed=k) for k in (1, 2, 3)}
        fused = fuse_sample_streams(1, streams, bin_s=0.1)
        assert fused.tags_fused == 3
        # Peak of the fused track ~ 3x the single-tag amplitude.
        assert np.abs(fused.track.values).max() == pytest.approx(3.0, rel=0.1)

    def test_increments_are_diff_of_track(self):
        fused = fuse_sample_streams(1, {(1, 1): sine_stream(rate=25.0)})
        np.testing.assert_allclose(
            fused.increments.values, np.diff(fused.track.values)
        )

    def test_interpolates_missing_bins(self):
        # A stream with a long gap still produces a full regular track.
        t = np.concatenate([np.arange(0, 5, 0.1), np.arange(15, 20, 0.1)])
        stream = TimeSeries(t, np.sin(0.5 * t))
        fused = fuse_sample_streams(1, {(1, 1): stream}, bin_s=0.1)
        gaps = np.diff(fused.track.times)
        assert gaps.max() == pytest.approx(gaps.min())

    def test_single_sample_streams_skipped(self):
        streams = {
            (1, 1): sine_stream(rate=25.0),
            (1, 2): TimeSeries([1.0], [0.5]),
        }
        fused = fuse_sample_streams(1, streams)
        assert fused.tags_fused == 1

    def test_all_empty_rejected(self):
        with pytest.raises(EmptyStreamError):
            fuse_sample_streams(1, {(1, 1): TimeSeries.empty()})

    def test_is_fused_stream(self):
        fused = fuse_sample_streams(1, {(1, 1): sine_stream(rate=25.0)})
        assert isinstance(fused, FusedStream)
        assert fused.user_id == 1
