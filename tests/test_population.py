"""Tests for demographic profiles and cohort generation."""

import numpy as np
import pytest

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import (
    ADULT,
    CHILD,
    NEWBORN,
    PROFILES,
    DemographicProfile,
    profile,
    random_cohort,
    random_subject,
    recommended_pipeline_config,
)
from repro.body.placement import BreathingStyle
from repro.config import PipelineConfig
from repro.errors import BodyModelError


class TestProfiles:
    def test_catalog(self):
        assert set(PROFILES) == {"adult", "elderly", "child", "newborn"}

    def test_lookup(self):
        assert profile("Adult") is ADULT
        with pytest.raises(BodyModelError):
            profile("martian")

    def test_clinical_ordering(self):
        """Resting rate rises and excursion falls from adult to newborn."""
        assert ADULT.rate_range_bpm[1] < NEWBORN.rate_range_bpm[0] + 15
        assert NEWBORN.rate_range_bpm[1] > ADULT.rate_range_bpm[1]
        assert NEWBORN.amplitude_range_m[1] < ADULT.amplitude_range_m[0] + 0.005
        assert NEWBORN.torso_scale < CHILD.torso_scale < ADULT.torso_scale

    def test_infants_breathe_abdominally(self):
        assert NEWBORN.typical_style is BreathingStyle.ABDOMEN
        assert CHILD.typical_style is BreathingStyle.ABDOMEN

    def test_validation(self):
        with pytest.raises(BodyModelError):
            DemographicProfile("bad", (20.0, 10.0), (0.001, 0.002), 1.0,
                               BreathingStyle.MIXED)
        with pytest.raises(BodyModelError):
            DemographicProfile("bad", (10.0, 20.0), (0.002, 0.001), 1.0,
                               BreathingStyle.MIXED)


class TestRecommendedConfig:
    def test_adult_keeps_paper_cutoff(self):
        config = recommended_pipeline_config(ADULT)
        assert config.cutoff_hz == pytest.approx(0.67)

    def test_newborn_widens_cutoff(self):
        """60 bpm = 1.0 Hz exceeds the paper's 0.67 Hz cutoff; the
        recommended config must widen it."""
        config = recommended_pipeline_config(NEWBORN)
        assert config.cutoff_hz > NEWBORN.max_rate_hz()
        assert config.cutoff_hz == pytest.approx(1.5 * NEWBORN.max_rate_hz())

    def test_preserves_other_parameters(self):
        base = PipelineConfig(zero_crossing_buffer=9)
        config = recommended_pipeline_config(NEWBORN, base)
        assert config.zero_crossing_buffer == 9


class TestRandomSubjects:
    def test_rate_in_clinical_range(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            subject = random_subject(1, CHILD, rng)
            rate = subject.true_rate_bpm(0.0, 60.0)
            lo, hi = CHILD.rate_range_bpm
            assert lo <= rate <= hi

    def test_cohort_layout(self):
        rng = np.random.default_rng(1)
        cohort = random_cohort(ADULT, 4, rng)
        assert [s.user_id for s in cohort] == [1, 2, 3, 4]
        offsets = [s.lateral_offset_m for s in cohort]
        assert offsets == sorted(offsets)
        assert offsets[0] == pytest.approx(-offsets[-1])

    def test_cohort_count_validation(self):
        with pytest.raises(BodyModelError):
            random_cohort(ADULT, 0, np.random.default_rng(0))

    def test_deterministic_given_rng_state(self):
        a = random_subject(1, ADULT, np.random.default_rng(9))
        b = random_subject(1, ADULT, np.random.default_rng(9))
        assert a.true_rate_bpm(0, 60) == b.true_rate_bpm(0, 60)


class TestNeonatalMonitoring:
    def test_newborn_rate_recovered_with_widened_band(self):
        """The neonatal extension: a 48 bpm newborn is invisible to the
        paper's 0.67 Hz pipeline but tracked with the recommended one.
        Crib-side range is required — a newborn's millimetre-scale chest
        excursion loses to room clutter beyond ~1 m."""
        from repro.body.waveforms import MetronomeBreathing
        from repro.body.subject import Subject
        baby = Subject(user_id=1, distance_m=0.8,
                       breathing=MetronomeBreathing(48.0, amplitude_m=0.004),
                       style=NEWBORN.typical_style, sway_seed=5)
        result = run_scenario(Scenario([baby]), duration_s=45.0, seed=61)
        config = recommended_pipeline_config(NEWBORN)
        estimates = TagBreathe(user_ids={1}, config=config).process(result.reports)
        assert 1 in estimates
        assert breathing_rate_accuracy(estimates[1].rate_bpm, 48.0) > 0.9
