"""Tests for the Gen2 Select command and MAC-level filtering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing
from repro.epc import (
    EPC96,
    SelectCommand,
    crc16_bits,
    population_filter,
    select_user,
    select_user_prefix,
)
from repro.errors import EPCError


class TestCRC16Bits:
    def test_matches_byte_crc_on_aligned_input(self):
        from repro.epc import crc16
        data = b"123456789"
        bits = "".join(format(b, "08b") for b in data)
        assert crc16_bits(bits) == crc16(data)

    def test_rejects_non_binary(self):
        with pytest.raises(EPCError):
            crc16_bits("01x")

    @given(st.text(alphabet="01", min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_bit_flip_detected(self, bits):
        reference = crc16_bits(bits)
        flipped = ("1" if bits[0] == "0" else "0") + bits[1:]
        assert crc16_bits(flipped) != reference


class TestSelectCodec:
    def test_roundtrip(self):
        command = SelectCommand(target=4, action=2, pointer=8,
                                mask="101100", truncate=1)
        assert SelectCommand.decode(command.encode()) == command

    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, 200),
           st.text(alphabet="01", min_size=0, max_size=64))
    @settings(max_examples=40)
    def test_roundtrip_property(self, target, action, pointer, mask):
        command = SelectCommand(target=target, action=action,
                                pointer=pointer, mask=mask)
        assert SelectCommand.decode(command.encode()) == command

    def test_crc_corruption_detected(self):
        bits = SelectCommand(mask="1010").encode()
        corrupted = bits[:-1] + ("1" if bits[-1] == "0" else "0")
        with pytest.raises(EPCError):
            SelectCommand.decode(corrupted)

    def test_validation(self):
        with pytest.raises(EPCError):
            SelectCommand(target=9)
        with pytest.raises(EPCError):
            SelectCommand(mask="10a")
        with pytest.raises(EPCError):
            SelectCommand(pointer=300)


class TestMaskMatching:
    def test_select_user_matches_own_tags_only(self):
        command = select_user(7)
        assert command.matches(EPC96.from_user_tag(7, 1))
        assert command.matches(EPC96.from_user_tag(7, 3))
        assert not command.matches(EPC96.from_user_tag(8, 1))

    def test_prefix_select(self):
        # User IDs 4-7 share the 62-bit prefix 0...001.
        prefix = format(1, "062b")
        command = select_user_prefix(prefix)
        assert command.matches(EPC96.from_user_tag(4, 1))
        assert command.matches(EPC96.from_user_tag(7, 2))
        assert not command.matches(EPC96.from_user_tag(8, 1))
        assert not command.matches(EPC96.from_user_tag(3, 1))

    def test_mid_epc_mask(self):
        epc = EPC96.from_user_tag(0, 0b1111)
        command = SelectCommand(pointer=92, mask="1111")
        assert command.matches(epc)
        assert not command.matches(EPC96.from_user_tag(0, 0b1110))

    def test_mask_past_end_never_matches(self):
        command = SelectCommand(pointer=95, mask="11")
        assert not command.matches(EPC96.from_user_tag(1, 1))

    def test_population_filter(self):
        epcs = {1: EPC96.from_user_tag(5, 1), 2: EPC96.from_user_tag(6, 1)}
        predicate = population_filter(select_user(5), epcs.__getitem__)
        assert predicate(1)
        assert not predicate(2)

    def test_select_user_validation(self):
        with pytest.raises(EPCError):
            select_user(1 << 64)
        with pytest.raises(EPCError):
            select_user_prefix("")


class TestMACLevelFiltering:
    def test_select_excludes_contending_tags(self):
        """The Fig. 14 scenario with the protocol's own remedy: Select on
        the user ID restores the monitoring tags' full read rate."""
        scenario = Scenario.single_user(
            distance_m=4.0, breathing=MetronomeBreathing(10.0), sway_seed=0,
        ).with_contending_tags(25, seed=0)

        unfiltered = run_scenario(scenario, duration_s=20.0, seed=7)
        selected = run_scenario(scenario, duration_s=20.0, seed=7,
                                select=select_user(1))
        # Only monitoring tags in the selected capture...
        assert all(r.user_id == 1 for r in selected.reports)
        # ...at a much higher per-tag rate than under contention.
        contended_rate = len(unfiltered.reports_for_user(1)) / 20.0
        selected_rate = len(selected.reports) / 20.0
        assert selected_rate > 2.0 * contended_rate

    def test_select_capture_monitors_breathing(self):
        scenario = Scenario.single_user(
            distance_m=4.0, breathing=MetronomeBreathing(12.0), sway_seed=1,
        ).with_contending_tags(25, seed=1)
        result = run_scenario(scenario, duration_s=45.0, seed=9,
                              select=select_user(1))
        estimate = TagBreathe(user_ids={1}).process(result.reports)[1]
        assert breathing_rate_accuracy(estimate.rate_bpm, 12.0) > 0.9

    def test_select_matching_nothing_yields_empty(self):
        scenario = Scenario.single_user()
        result = run_scenario(scenario, duration_s=5.0, seed=3,
                              select=select_user(42))
        assert result.reports == []
