"""Determinism: same scenario + seed => byte-identical telemetry.

The observability layer promises that a seeded run is replayable — span
IDs are sequential in emission order, ``wall_s`` is opt-in, and metric
snapshots order instruments deterministically.  These tests run the same
capture twice in one process and demand *byte* equality of the JSONL
event stream and value equality of the non-volatile metric snapshot, on
both reader paths.
"""

from __future__ import annotations

import warnings

import pytest

from repro import obs
from repro.body import MetronomeBreathing, Subject
from repro.config import ReaderConfig
from repro.core.pipeline import TagBreathe
from repro.errors import DegradedEstimateWarning
from repro.obs.export import events_to_jsonl, to_prometheus
from repro.sim.engine import run_scenario
from repro.sim.scenario import Scenario
from repro.sim.sweep import run_scenarios


def _scenario() -> Scenario:
    subjects = [
        Subject(user_id=1, distance_m=2.0,
                breathing=MetronomeBreathing(15.0), sway_seed=3),
        Subject(user_id=2, distance_m=2.4, lateral_offset_m=0.5,
                breathing=MetronomeBreathing(21.0), sway_seed=4),
    ]
    return Scenario(subjects).with_contending_tags(3, seed=3)


def _capture_telemetry(vectorized: bool, detail: str = "round"):
    """One fully traced run; returns (jsonl bytes, metric snapshot, prom)."""
    with obs.capture(detail=detail) as (tracer, registry):
        result = run_scenario(
            _scenario(), duration_s=6.0, seed=11,
            reader_config=ReaderConfig(vectorized=vectorized),
        )
        pipeline = TagBreathe(user_ids={1, 2})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            pipeline.process_detailed(result.reports)
        jsonl = events_to_jsonl(tracer.events).encode()
        snapshot = registry.snapshot(include_volatile=False)
        # Stage-timing histograms are wall-clock and legitimately vary;
        # everything else in the exposition must replay byte-for-byte.
        prom = to_prometheus(registry, include_volatile=False)
    return jsonl, snapshot, prom


@pytest.mark.parametrize("vectorized", [True, False],
                         ids=["vectorized", "scalar"])
class TestRunDeterminism:
    def test_event_stream_byte_identical(self, vectorized):
        first, _, _ = _capture_telemetry(vectorized)
        second, _, _ = _capture_telemetry(vectorized)
        assert first == second

    def test_metric_snapshot_identical(self, vectorized):
        _, first, first_prom = _capture_telemetry(vectorized)
        _, second, second_prom = _capture_telemetry(vectorized)
        assert first == second
        assert first_prom == second_prom

    def test_slot_detail_also_deterministic(self, vectorized):
        first, _, _ = _capture_telemetry(vectorized, detail="slot")
        second, _, _ = _capture_telemetry(vectorized, detail="slot")
        assert first == second


class TestSweepDeterminism:
    def test_parallel_sweep_telemetry_deterministic(self):
        """Worker merge order is input order, not completion order."""

        def one_sweep():
            with obs.capture(detail="round") as (tracer, registry):
                run_scenarios([_scenario(), _scenario()], duration_s=4.0,
                              base_seed=5, parallel=True, max_workers=2)
                return (events_to_jsonl(tracer.events).encode(),
                        registry.snapshot(include_volatile=False))

        first_events, first_metrics = one_sweep()
        second_events, second_metrics = one_sweep()
        assert first_events == second_events
        assert first_metrics == second_metrics
