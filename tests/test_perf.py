"""The perf instrumentation layer and its wiring into reader + pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import perf
from repro.core.pipeline import TagBreathe
from repro.perf import PerfRecorder
from repro.reader.reader import Reader
from repro.sim.scenario import Scenario


@pytest.fixture(autouse=True)
def _clean_global_recorder():
    perf.reset()
    yield
    perf.reset()


class TestPerfRecorder:
    def test_stage_accumulates_time_and_calls(self):
        rec = PerfRecorder()
        for _ in range(3):
            with rec.stage("work"):
                pass
        assert rec.stage_calls["work"] == 3
        assert rec.stage_s["work"] >= 0.0

    def test_stage_records_on_exception(self):
        rec = PerfRecorder()
        with pytest.raises(ValueError):
            with rec.stage("boom"):
                raise ValueError("x")
        assert rec.stage_calls["boom"] == 1

    def test_counters_and_rate(self):
        rec = PerfRecorder()
        with rec.stage("synth"):
            rec.count("reads", 10)
            rec.count("reads", 5)
        assert rec.counters["reads"] == 15
        assert rec.rate_hz("reads", "synth") > 0.0
        assert rec.rate_hz("reads", "missing") == 0.0

    def test_snapshot_shape(self):
        rec = PerfRecorder()
        with rec.stage("a"):
            rec.count("n", 2)
        snap = rec.snapshot()
        assert snap["stages"]["a"]["calls"] == 1
        assert snap["stages"]["a"]["seconds"] >= 0.0
        assert snap["counters"] == {"n": 2}

    def test_reset(self):
        rec = PerfRecorder()
        with rec.stage("a"):
            rec.count("n")
        rec.reset()
        assert rec.snapshot() == {"stages": {}, "counters": {}}


class TestGlobalRecorder:
    def test_module_helpers_feed_global(self):
        with perf.stage("g"):
            perf.count("events", 4)
        snap = perf.snapshot()
        assert snap["stages"]["g"]["calls"] == 1
        assert snap["counters"]["events"] == 4
        perf.reset()
        assert perf.snapshot() == {"stages": {}, "counters": {}}


class TestWiring:
    def test_reader_run_records_stages(self):
        scenario = Scenario.single_user(2.0, sway_seed=1)
        reader = Reader(rng=np.random.default_rng(0))
        reports = reader.run(scenario, duration_s=2.0)
        snap = perf.snapshot()
        assert snap["stages"]["reader.mac"]["calls"] == 1
        assert snap["stages"]["reader.synthesize"]["calls"] == 1
        assert snap["counters"]["reader.reads_synthesized"] == len(reports)
        assert perf.get_recorder().rate_hz(
            "reader.reads_synthesized", "reader.synthesize") > 0.0

    def test_pipeline_process_records_stages(self):
        scenario = Scenario.single_user(2.0, sway_seed=1)
        reader = Reader(rng=np.random.default_rng(0))
        reports = reader.run(scenario, duration_s=12.0)
        perf.reset()
        TagBreathe(user_ids={1}).process_detailed(reports)
        snap = perf.snapshot()
        assert snap["stages"]["pipeline.process"]["calls"] == 1
        assert snap["counters"]["pipeline.reports_processed"] == len(reports)
        assert "pipeline.users_estimated" in snap["counters"]
