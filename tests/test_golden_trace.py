"""Golden-trace regression: a seeded end-to-end run must keep emitting
exactly the trace (and breathing estimates) committed under ``tests/data``.

The scenario is one user breathing at a metronomic 24 bpm for 12 s —
the shortest capture that clears both pipeline floors (>= 10 s of track,
>= 7 zero crossings) with margin on both reader paths.  Scalar and
vectorized synthesis consume identical MAC randomness but interleave
per-read noise draws differently, so each path has its own golden file.

Comparison is on parsed JSON with floats rounded to 6 decimals —
byte-exactness across platforms/BLAS builds is not promised by the
substrate, but the event structure, ordering, IDs, and values to a
micro-unit are.  (Same-process byte determinism is asserted separately
in ``test_determinism.py``.)

Regenerate after an intentional trace-schema or estimator change::

    PYTHONPATH=src python tests/test_golden_trace.py

then review the diff like any other behaviour change.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro import obs
from repro.body import MetronomeBreathing, Subject
from repro.config import ReaderConfig
from repro.core.pipeline import TagBreathe
from repro.errors import DegradedEstimateWarning
from repro.obs.export import events_to_jsonl
from repro.sim.engine import run_scenario
from repro.sim.scenario import Scenario

DATA_DIR = Path(__file__).parent / "data"
EXPECTED_PATH = DATA_DIR / "golden_trace_expected.json"

SEED = 7
DURATION_S = 12.0
RATE_BPM = 24.0


def _golden_scenario() -> Scenario:
    subject = Subject(user_id=1, distance_m=2.0,
                      breathing=MetronomeBreathing(RATE_BPM),
                      sway_seed=SEED)
    return Scenario([subject])


def _run(vectorized: bool):
    """One traced end-to-end run; returns (events, estimates, failures)."""
    with obs.capture(detail="round") as (tracer, _registry):
        result = run_scenario(
            _golden_scenario(), duration_s=DURATION_S, seed=SEED,
            reader_config=ReaderConfig(vectorized=vectorized),
        )
        pipeline = TagBreathe(user_ids={1})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            estimates, failures = pipeline.process_detailed(result.reports)
        events = list(tracer.events)
    return events, estimates, failures


def _canonical(jsonl_text: str):
    """Parse a JSONL trace into comparable rows with floats rounded."""

    def rounded(value):
        if isinstance(value, float):
            return round(value, 6)
        if isinstance(value, list):
            return [rounded(v) for v in value]
        if isinstance(value, dict):
            return {k: rounded(v) for k, v in value.items()}
        return value

    return [rounded(json.loads(line))
            for line in jsonl_text.splitlines() if line]


def _golden_path(vectorized: bool) -> Path:
    name = "vectorized" if vectorized else "scalar"
    return DATA_DIR / f"golden_trace_{name}.jsonl"


@pytest.mark.parametrize("vectorized", [True, False],
                         ids=["vectorized", "scalar"])
class TestGoldenTrace:
    def test_trace_matches_committed_golden(self, vectorized):
        events, _estimates, _failures = _run(vectorized)
        actual = _canonical(events_to_jsonl(events))
        golden = _canonical(_golden_path(vectorized).read_text())
        assert len(actual) == len(golden), (
            f"event count drifted: {len(actual)} != {len(golden)} — if the "
            "trace schema changed intentionally, regenerate with "
            "`PYTHONPATH=src python tests/test_golden_trace.py`"
        )
        for i, (a, g) in enumerate(zip(actual, golden)):
            assert a == g, f"trace diverges at event {i}: {a!r} != {g!r}"

    def test_estimates_match_committed_golden(self, vectorized):
        _events, estimates, failures = _run(vectorized)
        expected = json.loads(EXPECTED_PATH.read_text())
        key = "vectorized" if vectorized else "scalar"
        assert failures == {}
        assert set(estimates) == {1}
        est = estimates[1]
        assert est.rate_bpm == pytest.approx(expected[key]["rate_bpm"],
                                             abs=1e-6)
        assert est.confidence == pytest.approx(expected[key]["confidence"],
                                               abs=1e-6)
        # The estimate must also be *right*: within the paper's ~0.5 bpm
        # error envelope of the metronome truth.
        assert est.rate_bpm == pytest.approx(RATE_BPM, abs=1.0)


def regenerate() -> None:
    """Rewrite the golden files from the current implementation."""
    DATA_DIR.mkdir(exist_ok=True)
    expected = {}
    for vectorized in (True, False):
        key = "vectorized" if vectorized else "scalar"
        events, estimates, failures = _run(vectorized)
        assert failures == {}, failures
        _golden_path(vectorized).write_text(events_to_jsonl(events))
        est = estimates[1]
        expected[key] = {"rate_bpm": est.rate_bpm,
                         "confidence": est.confidence}
        print(f"{_golden_path(vectorized).name}: {len(events)} events, "
              f"rate={est.rate_bpm:.4f} bpm conf={est.confidence:.4f}")
    EXPECTED_PATH.write_text(json.dumps(expected, indent=2, sort_keys=True)
                             + "\n")
    print(f"{EXPECTED_PATH.name}: written")


if __name__ == "__main__":
    regenerate()
