"""Tests for zero-crossing detection and Eq. (5), plus spectral analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.spectral import (
    fft_peak_rate_bpm,
    fft_spectrum,
    frequency_resolution_bpm,
)
from repro.core.zerocross import (
    PAPER_BUFFER_M,
    instant_rates_bpm,
    rate_series_bpm,
    zero_crossing_times,
)
from repro.errors import InsufficientDataError, StreamError
from repro.streams import TimeSeries


def sine_series(freq_hz=0.2, duration=60.0, rate_hz=20.0, amplitude=1.0, phase=0.0):
    t = np.arange(0.0, duration, 1.0 / rate_hz)
    return TimeSeries(t, amplitude * np.sin(2 * np.pi * freq_hz * t + phase))


class TestZeroCrossings:
    def test_count_for_sine(self):
        # 0.2 Hz over 60 s -> 12 cycles -> ~24 crossings.
        crossings = zero_crossing_times(sine_series())
        assert len(crossings) in (23, 24, 25)

    def test_crossing_times_accurate(self):
        crossings = zero_crossing_times(sine_series())
        # Crossings of sin(2*pi*0.2*t) fall at multiples of 2.5 s.
        for c in crossings:
            nearest = round(c / 2.5) * 2.5
            assert c == pytest.approx(nearest, abs=0.01)

    def test_empty_for_constant(self):
        ts = TimeSeries.regular(np.ones(100), 10.0)
        assert zero_crossing_times(ts) == []

    def test_exact_zero_sample_counted_once(self):
        ts = TimeSeries([0.0, 1.0, 2.0, 3.0], [1.0, 0.0, -1.0, 1.0])
        crossings = zero_crossing_times(ts)
        assert len(crossings) == 2

    def test_leading_zeros_never_manufacture_a_crossing(self):
        """A flat zero lead-in belongs to the first nonzero sign: the
        signal 0,0,0,1 never actually crossed zero."""
        ts = TimeSeries([0.0, 1.0, 2.0, 3.0], [0.0, 0.0, 0.0, 1.0])
        assert zero_crossing_times(ts) == []

    def test_leading_zeros_then_real_crossing(self):
        # The lead-in carries the +1 sign; only the +1 -> -1 flip counts.
        ts = TimeSeries([0.0, 1.0, 2.0, 3.0, 4.0],
                        [0.0, 0.0, 1.0, -1.0, 1.0])
        crossings = zero_crossing_times(ts)
        assert len(crossings) == 2
        assert all(c >= 2.0 for c in crossings)

    def test_identically_zero_signal_has_no_crossings(self):
        ts = TimeSeries.regular(np.zeros(50), 10.0)
        assert zero_crossing_times(ts) == []

    def test_interior_zero_run_single_crossing(self):
        # +1, 0, 0, -1: the zeros belong to the previous (+) sign, so
        # exactly one crossing is reported for the whole run.
        ts = TimeSeries([0.0, 1.0, 2.0, 3.0], [1.0, 0.0, 0.0, -1.0])
        assert len(zero_crossing_times(ts)) == 1

    def test_hysteresis_suppresses_chatter(self):
        t = np.arange(0, 60, 0.05)
        signal = np.sin(2 * np.pi * 0.2 * t) + 0.05 * np.sin(2 * np.pi * 5.1 * t)
        ts = TimeSeries(t, signal)
        raw = zero_crossing_times(ts, hysteresis=0.0)
        clean = zero_crossing_times(ts, hysteresis=0.3)
        assert len(clean) <= len(raw)
        assert len(clean) in (23, 24, 25)

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(StreamError):
            zero_crossing_times(sine_series(), hysteresis=-1.0)

    def test_short_series(self):
        assert zero_crossing_times(TimeSeries([0.0], [1.0])) == []


class TestEq5InstantRates:
    def test_paper_calibration(self):
        """7 buffered crossings = 3 breaths (Section IV-B)."""
        assert PAPER_BUFFER_M == 7

    def test_exact_rate_for_uniform_crossings(self):
        # Crossings every 2.5 s = half-cycles of a 12 bpm breath.
        crossings = [i * 2.5 for i in range(10)]
        rates = instant_rates_bpm(crossings, buffer_m=7)
        assert np.allclose(rates.values, 12.0)

    def test_rate_timestamped_at_newest(self):
        crossings = [i * 2.5 for i in range(8)]
        rates = instant_rates_bpm(crossings, buffer_m=7)
        assert rates.times[0] == pytest.approx(crossings[6])
        assert rates.times[-1] == pytest.approx(crossings[7])

    def test_too_few_crossings(self):
        with pytest.raises(InsufficientDataError):
            instant_rates_bpm([1.0, 2.0, 3.0], buffer_m=7)

    def test_bad_buffer(self):
        with pytest.raises(StreamError):
            instant_rates_bpm([1.0, 2.0], buffer_m=1)

    @given(st.floats(min_value=5.0, max_value=40.0))
    @settings(max_examples=30)
    def test_recovers_any_rate(self, bpm):
        half_cycle = 30.0 / bpm
        crossings = [i * half_cycle for i in range(12)]
        rates = instant_rates_bpm(crossings)
        assert np.allclose(rates.values, bpm, rtol=1e-9)

    def test_rate_series_end_to_end(self):
        rates = rate_series_bpm(sine_series(freq_hz=0.25))
        assert np.median(rates.values) == pytest.approx(15.0, abs=0.5)


class TestSpectral:
    def test_spectrum_peak_at_signal(self):
        freqs, amps = fft_spectrum(sine_series(freq_hz=0.3))
        assert freqs[np.argmax(amps)] == pytest.approx(0.3, abs=0.02)

    def test_peak_rate_estimator(self):
        rate = fft_peak_rate_bpm(sine_series(freq_hz=0.25))
        assert rate == pytest.approx(15.0, abs=1.0)

    def test_resolution_pitfall(self):
        """The paper's example: a 25 s window resolves only 2.4 bpm."""
        assert frequency_resolution_bpm(25.0) == pytest.approx(2.4)

    def test_peak_estimate_quantised_by_resolution(self):
        # With a 25 s window the peak estimate lands on a 2.4 bpm grid.
        series = sine_series(freq_hz=13.0 / 60.0, duration=25.0)
        rate = fft_peak_rate_bpm(series)
        assert abs(rate - 13.0) <= 2.4

    def test_band_limits(self):
        series = sine_series(freq_hz=2.0)  # way above breathing band
        rate = fft_peak_rate_bpm(series, band_bpm=(4.0, 40.0))
        assert rate <= 40.0

    def test_short_window_rejected(self):
        series = sine_series(duration=2.0)
        with pytest.raises(StreamError):
            fft_peak_rate_bpm(series, band_bpm=(4.0, 8.0))

    def test_resolution_validation(self):
        with pytest.raises(StreamError):
            frequency_resolution_bpm(0.0)

    def test_band_validation(self):
        with pytest.raises(StreamError):
            fft_peak_rate_bpm(sine_series(), band_bpm=(10.0, 5.0))
