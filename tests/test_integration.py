"""End-to-end integration tests spanning all subsystems.

Each test exercises the full path: breathing body -> phase physics ->
Gen2 MAC -> reader reports -> preprocessing -> fusion -> extraction ->
rate estimate, compared against the metronome ground truth.
"""

import numpy as np
import pytest

from repro import (
    LLRPClient,
    Reader,
    ROSpec,
    Scenario,
    TagBreathe,
    breathing_rate_accuracy,
    run_scenario,
)
from repro.body import (
    BreathingStyle,
    IrregularBreathing,
    MetronomeBreathing,
    Subject,
)
from repro.epc import EPCMappingTable


class TestSingleUserEndToEnd:
    @pytest.mark.parametrize("rate", [5.0, 10.0, 15.0, 20.0])
    def test_table1_rate_range(self, rate):
        """Accuracy across the paper's full 5-20 bpm metronome range."""
        scenario = Scenario([Subject(user_id=1, distance_m=3.0,
                                     breathing=MetronomeBreathing(rate),
                                     sway_seed=int(rate))])
        result = run_scenario(scenario, duration_s=45.0, seed=int(rate * 7))
        estimate = TagBreathe(user_ids={1}).process(result.reports)[1]
        assert breathing_rate_accuracy(estimate.rate_bpm, rate) > 0.9

    @pytest.mark.parametrize("posture", ["sitting", "standing", "lying"])
    def test_fig17_postures(self, posture):
        """Fig. 17: accuracy above 90 % for every posture."""
        scenario = Scenario([Subject(user_id=1, distance_m=3.0, posture=posture,
                                     breathing=MetronomeBreathing(12.0),
                                     sway_seed=3)])
        result = run_scenario(scenario, duration_s=45.0, seed=17)
        estimate = TagBreathe(user_ids={1}).process(result.reports)[1]
        assert breathing_rate_accuracy(estimate.rate_bpm, 12.0) > 0.9

    @pytest.mark.parametrize("style", list(BreathingStyle))
    def test_breathing_styles(self, style):
        """Chest and abdominal breathers both work (Section IV-D-1)."""
        scenario = Scenario([Subject(user_id=1, distance_m=3.0, style=style,
                                     breathing=MetronomeBreathing(10.0),
                                     sway_seed=4)])
        result = run_scenario(scenario, duration_s=45.0, seed=23)
        estimate = TagBreathe(user_ids={1}).process(result.reports)[1]
        assert breathing_rate_accuracy(estimate.rate_bpm, 10.0) > 0.9

    @pytest.mark.parametrize("tags", [1, 2, 3])
    def test_tags_per_user_range(self, tags):
        scenario = Scenario([Subject(user_id=1, distance_m=2.0, num_tags=tags,
                                     breathing=MetronomeBreathing(12.0),
                                     sway_seed=5)])
        result = run_scenario(scenario, duration_s=45.0, seed=29)
        estimate = TagBreathe(user_ids={1}).process(result.reports)[1]
        assert estimate.tags_fused == tags
        assert breathing_rate_accuracy(estimate.rate_bpm, 12.0) > 0.85

    def test_irregular_breathing_tracked(self):
        """Beyond the paper: irregular rates are still estimated sensibly."""
        waveform = IrregularBreathing(12.0, rate_jitter=0.1, seed=6)
        scenario = Scenario([Subject(user_id=1, distance_m=2.0,
                                     breathing=waveform, sway_seed=6)])
        result = run_scenario(scenario, duration_s=60.0, seed=31)
        estimate = TagBreathe(user_ids={1}).process(result.reports)[1]
        truth = waveform.true_rate_bpm(0.0, 60.0)
        assert breathing_rate_accuracy(estimate.rate_bpm, truth) > 0.8


class TestMultiUserEndToEnd:
    def test_four_users_simultaneously(self):
        """The headline claim: simultaneous multi-user monitoring."""
        rates = {1: 6.0, 2: 10.0, 3: 14.0, 4: 18.0}
        subjects = [
            Subject(user_id=uid, distance_m=4.0,
                    lateral_offset_m=(uid - 2.5) * 0.8,
                    breathing=MetronomeBreathing(rate), sway_seed=uid)
            for uid, rate in rates.items()
        ]
        result = run_scenario(Scenario(subjects), duration_s=60.0, seed=37)
        estimates = TagBreathe(user_ids=set(rates)).process(result.reports)
        assert set(estimates) == set(rates)
        for uid, rate in rates.items():
            assert breathing_rate_accuracy(estimates[uid].rate_bpm, rate) > 0.85

    def test_users_do_not_interfere(self):
        """Adding a second user barely moves the first user's estimate."""
        alone = Scenario([Subject(user_id=1, distance_m=3.0,
                                  breathing=MetronomeBreathing(10.0),
                                  sway_seed=1)])
        together = Scenario([
            Subject(user_id=1, distance_m=3.0,
                    breathing=MetronomeBreathing(10.0), sway_seed=1),
            Subject(user_id=2, distance_m=3.0, lateral_offset_m=1.0,
                    breathing=MetronomeBreathing(17.0), sway_seed=2),
        ])
        r_alone = run_scenario(alone, duration_s=45.0, seed=41)
        r_together = run_scenario(together, duration_s=45.0, seed=41)
        e_alone = TagBreathe(user_ids={1}).process(r_alone.reports)[1]
        e_together = TagBreathe(user_ids={1, 2}).process(r_together.reports)[1]
        assert e_together.rate_bpm == pytest.approx(e_alone.rate_bpm, abs=1.0)


class TestContendingEndToEnd:
    def test_thirty_contending_tags(self):
        """Fig. 14 end-to-end: 91 %-class accuracy with 30 item tags."""
        scenario = Scenario.single_user(
            distance_m=4.0, breathing=MetronomeBreathing(10.0), sway_seed=7,
        ).with_contending_tags(30, seed=7)
        result = run_scenario(scenario, duration_s=60.0, seed=43)
        estimate = TagBreathe(user_ids={1}).process(result.reports)[1]
        assert breathing_rate_accuracy(estimate.rate_bpm, 10.0) > 0.85

    def test_mapping_table_identifies_monitor_tags(self):
        """The Section IV-C fallback: classify reads via a mapping table
        instead of the user-ID filter."""
        scenario = Scenario.single_user(
            distance_m=3.0, breathing=MetronomeBreathing(12.0), sway_seed=8,
        ).with_contending_tags(5, seed=8)
        result = run_scenario(scenario, duration_s=40.0, seed=47)
        table = EPCMappingTable()
        for tag in scenario.subjects[0].tags:
            table.register(tag.epc, tag.user_id, tag.tag_id)
        monitored = [r for r in result.reports if table.is_monitoring_tag(r.epc)]
        assert 0 < len(monitored) < len(result.reports)
        estimate = TagBreathe(user_ids={1}).process(monitored)[1]
        assert breathing_rate_accuracy(estimate.rate_bpm, 12.0) > 0.9


class TestLLRPPath:
    def test_streaming_via_llrp_facade(self):
        """The paper's software architecture: LTK subscription feeding the
        realtime pipeline."""
        scenario = Scenario([Subject(user_id=1, distance_m=2.0,
                                     breathing=MetronomeBreathing(12.0),
                                     sway_seed=9)])
        reader = Reader(rng=np.random.default_rng(53))
        client = LLRPClient(reader, scenario)
        pipeline = TagBreathe(user_ids={1})
        client.connect()
        client.add_rospec(ROSpec(duration_s=40.0))
        client.subscribe(pipeline.feed)
        client.start()
        estimate = pipeline.estimate_user(1, window_s=30.0)
        assert breathing_rate_accuracy(estimate.rate_bpm, 12.0) > 0.9


class TestFusionBenefit:
    def test_fusion_helps_at_long_range(self):
        """Section IV-C's claim: raw-data fusion of 3 tags beats a single
        tag, especially for weak signals (long range)."""
        def accuracy(num_tags, seed):
            scenario = Scenario([Subject(
                user_id=1, distance_m=6.0, num_tags=num_tags,
                breathing=MetronomeBreathing(10.0), sway_seed=seed,
            )])
            result = run_scenario(scenario, duration_s=45.0, seed=seed)
            estimates = TagBreathe(user_ids={1}).process(result.reports)
            if 1 not in estimates:
                return 0.0
            return breathing_rate_accuracy(estimates[1].rate_bpm, 10.0)
        single = np.mean([accuracy(1, s) for s in range(4)])
        fused = np.mean([accuracy(3, s) for s in range(4)])
        # Few-trial smoke check: the decisive comparison (more trials,
        # longer captures) lives in benchmarks/test_ablation_fusion.py,
        # where 3 tags beat 1 tag by ~16 points at 6 m.
        assert fused >= single - 0.08
        assert fused > 0.85
