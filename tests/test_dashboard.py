"""Tests for the terminal dashboard renderer."""

import numpy as np

from repro.streams import TimeSeries
from repro.viz import UserPanel, render_dashboard


def make_panel(**kwargs):
    defaults = dict(
        label="Alice",
        rate_bpm=12.3,
        trend_bpm_per_min=0.1,
        signal=TimeSeries.regular(np.sin(np.linspace(0, 12, 80)), 4.0),
        status="ok",
    )
    defaults.update(kwargs)
    return UserPanel(**defaults)


class TestDashboard:
    def test_contains_user_info(self):
        text = render_dashboard([make_panel()])
        assert "Alice" in text
        assert "12.3 bpm" in text
        assert "[ok]" in text

    def test_title(self):
        text = render_dashboard([make_panel()], title="Ward 3")
        assert "Ward 3" in text

    def test_empty_dashboard(self):
        text = render_dashboard([])
        assert "no users" in text

    def test_missing_estimate_placeholder(self):
        text = render_dashboard([make_panel(rate_bpm=None, signal=None)])
        assert "--.-" in text

    def test_trend_arrows(self):
        up = render_dashboard([make_panel(trend_bpm_per_min=2.0)])
        down = render_dashboard([make_panel(trend_bpm_per_min=-2.0)])
        flat = render_dashboard([make_panel(trend_bpm_per_min=0.0)])
        assert "^" in up.splitlines()[3]
        assert "v" in down.splitlines()[3]
        assert "bpm -" in flat.splitlines()[3]

    def test_width_respected(self):
        text = render_dashboard([make_panel()], width=60)
        assert all(len(line) <= 60 for line in text.splitlines())

    def test_multiple_panels(self):
        text = render_dashboard([
            make_panel(label="Alice"),
            make_panel(label="Bo", status="no reads", rate_bpm=None),
        ])
        assert "Alice" in text and "Bo" in text
        assert "[no reads]" in text
