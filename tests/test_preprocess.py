"""Tests for phase preprocessing: Eq. (3)/(4), segments, samples."""

import math

import numpy as np
import pytest

from repro.core.preprocess import (
    hampel_filter,
    DeltaChain,
    default_frequencies,
    displacement_deltas,
    displacement_samples,
    displacement_track,
    group_reports_by_stream,
    phase_segments,
)
from repro.epc import EPC96
from repro.errors import StreamError
from repro.reader import TagReport
from repro.rf.phase import backscatter_phase
from repro.streams import TimeSeries
from repro.units import SPEED_OF_LIGHT


FREQS = default_frequencies(10)


def make_report(t, phase, channel=0, antenna=1, user=1, tag=1):
    return TagReport(
        epc=EPC96.from_user_tag(user, tag),
        timestamp_s=t,
        phase_rad=phase % (2 * math.pi),
        rssi_dbm=-55.0,
        doppler_hz=0.0,
        channel_index=channel,
        antenna_port=antenna,
    )


def reports_for_motion(distances, times, channel=0, antenna=1, offset=0.8):
    """Noise-free reports of a tag following a distance trajectory."""
    lam = SPEED_OF_LIGHT / FREQS[channel]
    return [
        make_report(t, backscatter_phase(d, lam, offset), channel, antenna)
        for t, d in zip(times, distances)
    ]


class TestGrouping:
    def test_splits_by_stream_key(self):
        reports = [make_report(0.1, 1.0, tag=1), make_report(0.2, 1.0, tag=2),
                   make_report(0.3, 1.0, tag=1)]
        streams = group_reports_by_stream(reports)
        assert set(streams) == {(1, 1), (1, 2)}
        assert len(streams[(1, 1)]) == 2


class TestDisplacementDeltasEq3:
    def test_recovers_constant_velocity(self):
        times = np.arange(0.0, 0.15, 0.01)  # inside one dwell
        distances = 2.0 + 0.001 * times / times[-1]
        reports = reports_for_motion(distances, times)
        deltas = displacement_deltas(reports, FREQS, smooth_k=1)
        track = displacement_track(deltas)
        assert track.values[-1] == pytest.approx(0.001, abs=1e-9)

    def test_smoothed_track_lags_but_tracks(self):
        times = np.arange(0.0, 0.15, 0.01)
        distances = 2.0 + 0.001 * times / times[-1]
        reports = reports_for_motion(distances, times)
        deltas = displacement_deltas(reports, FREQS, smooth_k=3)
        track = displacement_track(deltas)
        # The k=3 moving average lags by (k-1)/2 samples of motion.
        assert track.values[-1] == pytest.approx(0.001, rel=0.15)

    def test_static_tag_zero_displacement(self):
        times = np.arange(0.0, 0.14, 0.02)
        reports = reports_for_motion([2.0] * len(times), times)
        deltas = displacement_deltas(reports, FREQS)
        assert np.allclose(deltas.values, 0.0, atol=1e-12)

    def test_gap_breaks_chain(self):
        # Two reads 2 s apart (same channel, different dwells): no delta.
        reports = reports_for_motion([2.0, 2.001], [0.0, 2.0])
        deltas = displacement_deltas(reports, FREQS, smooth_k=1)
        assert len(deltas) == 0

    def test_channels_differenced_independently(self):
        lam0 = SPEED_OF_LIGHT / FREQS[0]
        lam1 = SPEED_OF_LIGHT / FREQS[1]
        reports = [
            make_report(0.00, backscatter_phase(2.0, lam0, 0.5), channel=0),
            make_report(0.01, backscatter_phase(2.0, lam1, 2.5), channel=1),
            make_report(0.02, backscatter_phase(2.0005, lam0, 0.5), channel=0),
            make_report(0.03, backscatter_phase(2.0005, lam1, 2.5), channel=1),
        ]
        deltas = displacement_deltas(reports, FREQS, smooth_k=1)
        # Each channel contributes one delta of +0.5 mm despite wildly
        # different channel offsets.
        assert len(deltas) == 2
        assert np.allclose(deltas.values, 0.0005, atol=1e-9)

    def test_antennas_differenced_independently(self):
        lam = SPEED_OF_LIGHT / FREQS[0]
        reports = [
            make_report(0.00, backscatter_phase(2.0, lam, 0.1), antenna=1),
            make_report(0.01, backscatter_phase(2.0, lam, 3.1), antenna=2),
            make_report(0.02, backscatter_phase(2.0, lam, 0.1), antenna=1),
            make_report(0.03, backscatter_phase(2.0, lam, 3.1), antenna=2),
        ]
        deltas = displacement_deltas(reports, FREQS, smooth_k=1)
        assert np.allclose(deltas.values, 0.0, atol=1e-12)

    def test_rejects_mixed_tags(self):
        reports = [make_report(0.0, 1.0, tag=1), make_report(0.1, 1.0, tag=2)]
        with pytest.raises(StreamError):
            displacement_deltas(reports, FREQS)

    def test_rejects_unknown_channel(self):
        reports = [make_report(0.0, 1.0, channel=10), make_report(0.01, 1.0, channel=10)]
        with pytest.raises(StreamError):
            displacement_deltas(reports, FREQS)

    def test_empty_input(self):
        assert not displacement_deltas([], FREQS)

    def test_smoothing_reduces_noise(self):
        rng = np.random.default_rng(0)
        times = np.arange(0.0, 0.15, 0.005)
        lam = SPEED_OF_LIGHT / FREQS[0]
        noisy = [make_report(t, backscatter_phase(2.0, lam) + rng.normal(0, 0.1), 0)
                 for t in times]
        raw = displacement_track(displacement_deltas(noisy, FREQS, smooth_k=1))
        smooth = displacement_track(displacement_deltas(noisy, FREQS, smooth_k=3))
        assert np.std(smooth.values) < np.std(raw.values)


class TestDeltaChain:
    def test_first_push_returns_none(self):
        chain = DeltaChain(0.3276)
        assert chain.push(0.0, 1.0) is None

    def test_delta_sign(self):
        lam = 0.3276
        chain = DeltaChain(lam, smooth_k=1)
        chain.push(0.0, backscatter_phase(2.0, lam))
        delta = chain.push(0.01, backscatter_phase(2.001, lam))
        assert delta == pytest.approx(0.001, abs=1e-9)

    def test_reset_on_gap(self):
        chain = DeltaChain(0.3276, max_gap_s=0.1, smooth_k=1)
        chain.push(0.0, 1.0)
        assert chain.push(1.0, 1.5) is None  # gap too long: chain reset

    def test_backwards_time_resets(self):
        chain = DeltaChain(0.3276, smooth_k=1)
        chain.push(1.0, 1.0)
        assert chain.push(0.5, 1.2) is None

    def test_validation(self):
        with pytest.raises(StreamError):
            DeltaChain(0.0)
        with pytest.raises(StreamError):
            DeltaChain(0.3, max_gap_s=0.0)
        with pytest.raises(StreamError):
            DeltaChain(0.3, smooth_k=0)


class TestPhaseSegments:
    def test_one_segment_per_group_when_dense(self):
        times = np.arange(0.0, 4.0, 0.05)
        reports = reports_for_motion([2.0] * len(times), times)
        segments = phase_segments(reports, FREQS)
        assert list(segments) == [(0, 1)]
        assert len(segments[(0, 1)]) == 1

    def test_long_gap_splits_segment(self):
        times = [0.0, 0.05, 0.1, 10.0, 10.05]
        reports = reports_for_motion([2.0] * 5, times)
        segments = phase_segments(reports, FREQS)
        assert len(segments[(0, 1)]) == 2

    def test_unwrap_across_channel_recurrence(self):
        """The key robustness property: a 2 s channel-recurrence gap does
        not break continuity, so slow motion integrates exactly."""
        lam = SPEED_OF_LIGHT / FREQS[0]
        # Tag drifts 3 cm over 6 seconds, read in bursts every 2 s.
        times, distances = [], []
        for burst in range(4):
            for i in range(5):
                t = burst * 2.0 + i * 0.02
                times.append(t)
                distances.append(2.0 + 0.03 * t / 6.0)
        reports = reports_for_motion(distances, times)
        samples = displacement_samples(reports, FREQS)
        swing = samples.values.max() - samples.values.min()
        expected = 0.03 * (times[-1] - times[0]) / 6.0
        assert swing == pytest.approx(expected, abs=1e-6)

    def test_segment_values_match_distance_up_to_offset(self):
        times = np.arange(0.0, 1.0, 0.04)
        distances = 2.0 + 0.002 * np.sin(2 * np.pi * 0.5 * times)
        reports = reports_for_motion(distances, times)
        segments = phase_segments(reports, FREQS)
        segment = segments[(0, 1)][0]
        recovered = segment.values - segment.values.mean()
        expected = distances - distances.mean()
        np.testing.assert_allclose(recovered, expected, atol=1e-9)

    def test_rejects_bad_gap(self):
        with pytest.raises(StreamError):
            phase_segments([make_report(0.0, 1.0)], FREQS, max_gap_s=0.0)


class TestDisplacementSamples:
    def test_short_segments_dropped(self):
        reports = reports_for_motion([2.0, 2.0], [0.0, 0.01])
        samples = displacement_samples(reports, FREQS, min_segment_len=3)
        assert not samples

    def test_samples_are_demeaned_per_segment(self):
        times = np.arange(0.0, 2.0, 0.04)
        reports = reports_for_motion([2.0] * len(times), times)
        samples = displacement_samples(reports, FREQS)
        assert samples.values.mean() == pytest.approx(0.0, abs=1e-9)

    def test_multi_channel_merge(self):
        lam0 = SPEED_OF_LIGHT / FREQS[0]
        lam5 = SPEED_OF_LIGHT / FREQS[5]
        reports = []
        for i in range(20):
            t = i * 0.05
            d = 2.0 + 0.005 * math.sin(2 * math.pi * 0.2 * t)
            channel = 0 if (i // 4) % 2 == 0 else 5
            lam = lam0 if channel == 0 else lam5
            reports.append(make_report(t, backscatter_phase(d, lam, 0.3 * channel),
                                       channel=channel))
        samples = displacement_samples(reports, FREQS)
        assert len(samples) == 20

    def test_recovers_breathing_waveform(self):
        """End-to-end: sinusoidal motion -> phase -> samples -> sinusoid."""
        times = np.arange(0.0, 10.0, 0.03)
        motion = 0.005 * np.sin(2 * np.pi * 0.2 * times)
        reports = reports_for_motion(2.0 + motion, times)
        samples = displacement_samples(reports, FREQS)
        recovered = samples.values - samples.values.mean()
        expected = motion - motion.mean()
        np.testing.assert_allclose(recovered, expected, atol=1e-6)

    def test_validation(self):
        with pytest.raises(StreamError):
            displacement_samples([make_report(0.0, 1.0)], FREQS, min_segment_len=0)


class TestHampelFilter:
    def make_smooth(self, n=100):
        times = np.arange(n) * 0.05
        values = 0.005 * np.sin(2 * np.pi * 0.2 * times)
        return TimeSeries(times, values)

    def test_clean_series_passes_bit_identical(self):
        series = self.make_smooth()
        filtered, n_rejected = hampel_filter(series)
        assert n_rejected == 0
        assert filtered is series

    def test_rejects_injected_spike(self):
        series = self.make_smooth()
        values = series.values.copy()
        values[40] += 0.08  # a pi-flip-scale (lambda/4) jump
        spiked = TimeSeries(series.times, values)
        filtered, n_rejected = hampel_filter(spiked)
        assert n_rejected == 1
        assert len(filtered) == len(series) - 1
        assert series.times[40] not in filtered.times

    def test_constant_series_never_flags(self):
        series = TimeSeries(np.arange(50) * 0.1, np.full(50, 0.003))
        filtered, n_rejected = hampel_filter(series)
        assert n_rejected == 0
        assert filtered is series

    def test_short_series_unchanged(self):
        series = TimeSeries([0.0, 0.1, 0.2], [1.0, 2.0, 3.0])
        filtered, n_rejected = hampel_filter(series, window=3)
        assert n_rejected == 0
        assert filtered is series

    def test_validation(self):
        series = self.make_smooth()
        with pytest.raises(StreamError):
            hampel_filter(series, window=0)
        with pytest.raises(StreamError):
            hampel_filter(series, n_sigmas=0.0)
