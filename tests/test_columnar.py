"""The columnar hot path: batched SoA feed and the binary column frame.

Two contracts are property-tested here (hypothesis):

* ``TagBreathe.feed_batch`` is **bit-exact** with a loop of ``feed``
  calls — same drop counters, same buffered columns, same per-stream
  tails — under adversarial orderings (late, duplicate, invalid-channel
  and interleaved-stream deliveries);
* the binary column frame round-trips every batch losslessly, and its
  decoder rejects truncated, padded, or corrupted payloads with a typed
  :class:`~repro.errors.ProtocolError` instead of misparsing them.

Example-based tests cover the negotiation edges (msgpack absent, frame
grant filtering) and the serve-level equivalence: a replay using column
frames leaves the same session estimates as a per-report replay.
"""

from __future__ import annotations

import asyncio
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.epc.codec import EPC96
from repro.errors import DegradedEstimateWarning, ProtocolError
from repro.reader.batch import ReportBatch
from repro.reader.tagreport import TagReport
from repro.serve import protocol
from repro.serve import BreathServer, IngestClient
from repro.serve.protocol import (
    COLUMN_FRAME_MAGIC,
    MAX_FRAME_BYTES,
    FrameDecoder,
    decode_column_frame,
    encode_column_frame,
    encode_frame,
    negotiate_codec,
    negotiate_frames,
)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
#: Report rows drawn to collide: few users/tags, coarse timestamps (so
#: duplicates and out-of-order deliveries are common), and channels that
#: sometimes fall outside the default hop table.
_row = st.tuples(
    st.integers(min_value=0, max_value=400),      # t in 0.25 s ticks
    st.floats(min_value=0.0, max_value=6.28),     # phase
    st.floats(min_value=-80.0, max_value=-30.0),  # rssi
    st.integers(min_value=0, max_value=64),       # channel (some invalid)
    st.integers(min_value=1, max_value=3),        # antenna
    st.integers(min_value=1, max_value=3),        # user
    st.integers(min_value=1, max_value=2),        # tag
)


def _reports(rows):
    return [
        TagReport(epc=EPC96.from_user_tag(u, g), timestamp_s=ti * 0.25,
                  phase_rad=ph, rssi_dbm=rs, doppler_hz=0.0,
                  channel_index=ch, antenna_port=an)
        for ti, ph, rs, ch, an, u, g in rows
    ]


def _buffer_state(engine):
    """Every buffered column + tail, keyed by stream (for == compares)."""
    return {
        key: (buf.t, buf.phase, buf.rssi, buf.doppler, buf.channel,
              buf.antenna, buf.last_t, buf.since_prune)
        for key, buf in engine._report_buffers.items()
    }


# ----------------------------------------------------------------------
# feed_batch == sequential feed (bit-exact)
# ----------------------------------------------------------------------
class TestFeedBatchEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(_row, min_size=1, max_size=120),
           st.integers(min_value=1, max_value=7))
    def test_bit_exact_with_sequential_feed(self, rows, n_chunks):
        reports = _reports(rows)
        scalar = TagBreathe()
        batched = TagBreathe()
        accepted_scalar = sum(scalar.feed(r) for r in reports)
        accepted_batched = 0
        for chunk in np.array_split(np.arange(len(reports)), n_chunks):
            if chunk.size:
                batch = ReportBatch.from_reports(
                    [reports[i] for i in chunk])
                accepted_batched += batched.feed_batch(batch)
        assert accepted_batched == accepted_scalar
        assert batched.feed_drop_counts == scalar.feed_drop_counts
        assert _buffer_state(batched) == _buffer_state(scalar)

    def test_estimates_bit_exact_on_simulated_capture(self):
        scenario = Scenario([
            Subject(user_id=uid, distance_m=3.0,
                    lateral_offset_m=(uid - 1.5) * 0.8,
                    breathing=MetronomeBreathing(10.0 + 2.0 * uid),
                    sway_seed=uid)
            for uid in (1, 2)
        ])
        reports = run_scenario(scenario, duration_s=30.0, seed=11).reports
        scalar = TagBreathe()
        batched = TagBreathe()
        for r in reports:
            scalar.feed(r)
        batch = ReportBatch.from_reports(reports)
        # Odd chunking exercises the cross-chunk cursor/tail state.
        for lo in range(0, len(batch), 997):
            batched.feed_batch(batch.select(
                np.arange(lo, min(lo + 997, len(batch)))))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            for uid in (1, 2):
                a = scalar.estimate_user(uid)
                b = batched.estimate_user(uid)
                assert a.rate_bpm == b.rate_bpm
                assert a.confidence == b.confidence


# ----------------------------------------------------------------------
# Column frame round-trip and rejection
# ----------------------------------------------------------------------
_wire_row = st.tuples(
    st.floats(min_value=0.0, max_value=1e6),      # t
    st.floats(min_value=0.0, max_value=6.28),     # phase
    st.floats(min_value=-120.0, max_value=0.0),   # rssi
    st.floats(min_value=-1e3, max_value=1e3),     # doppler
    st.integers(min_value=0, max_value=0x7FFF),   # channel
    st.integers(min_value=1, max_value=0x7FFF),   # antenna
    st.integers(min_value=0, max_value=2**63),    # user_id
    st.integers(min_value=0, max_value=2**32 - 1),  # tag_id
)


def _wire_batch(rows):
    cols = list(zip(*rows))
    return ReportBatch(*cols)


class TestColumnFrameProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_wire_row, min_size=0, max_size=64),
           st.booleans())
    def test_round_trip_bit_exact(self, rows, with_seqs):
        if not rows:
            batch = ReportBatch([], [], [], [], [], [], [], [])
        else:
            batch = _wire_batch(rows)
        seqs = None
        if with_seqs:
            seqs = np.arange(7, 7 + len(batch), dtype=np.uint64)
        data = encode_column_frame(batch, seqs)
        messages = FrameDecoder("json").feed(data)
        assert len(messages) == 1
        message = messages[0]
        assert message["type"] == "report_batch"
        out = message["batch"]
        for name in ("t", "phase", "rssi", "doppler", "channel",
                     "antenna", "user_id", "tag_id"):
            np.testing.assert_array_equal(getattr(out, name),
                                          getattr(batch, name))
            assert getattr(out, name).dtype == getattr(batch, name).dtype
        if with_seqs:
            np.testing.assert_array_equal(message["seqs"], seqs)
        else:
            assert message["seqs"] is None

    @settings(max_examples=25, deadline=None)
    @given(st.lists(_wire_row, min_size=1, max_size=16),
           st.data())
    def test_truncated_and_padded_payloads_rejected(self, rows, data):
        payload = encode_column_frame(_wire_batch(rows))[4:]
        cut = data.draw(st.integers(min_value=1, max_value=len(payload) - 2))
        with pytest.raises(ProtocolError):
            decode_column_frame(payload[:cut])
        with pytest.raises(ProtocolError):
            decode_column_frame(payload + b"\x00")

    def test_bad_magic_and_version_rejected(self):
        payload = encode_column_frame(_wire_batch(
            [(0.0, 0.0, -50.0, 0.0, 1, 1, 1, 1)]))[4:]
        assert payload[:2] == COLUMN_FRAME_MAGIC
        with pytest.raises(ProtocolError):
            decode_column_frame(b"\x00D" + payload[2:])
        bumped = payload[:2] + bytes([payload[2] + 1]) + payload[3:]
        with pytest.raises(ProtocolError):
            decode_column_frame(bumped)

    def test_oversized_encode_rejected(self):
        n = MAX_FRAME_BYTES // 48 + 64
        batch = ReportBatch(np.arange(n, dtype=np.float64),
                            np.zeros(n), np.zeros(n), np.zeros(n),
                            np.zeros(n, dtype=np.int64),
                            np.ones(n, dtype=np.int64),
                            np.zeros(n, dtype=np.uint64),
                            np.zeros(n, dtype=np.uint64))
        with pytest.raises(ProtocolError):
            encode_column_frame(batch)

    def test_wide_channel_rejected(self):
        batch = ReportBatch([0.0], [0.0], [-50.0], [0.0],
                            [0x8000], [1], [1], [1])
        with pytest.raises(ProtocolError):
            encode_column_frame(batch)


# ----------------------------------------------------------------------
# Negotiation edges
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_frames_grant_filters_unknown_kinds(self):
        assert negotiate_frames(None) == ()
        assert negotiate_frames([]) == ()
        assert negotiate_frames(["column"]) == ("column",)
        assert negotiate_frames(["parquet", "column", "column"]) \
            == ("column",)
        assert negotiate_frames(["parquet"]) == ()

    def test_msgpack_absent_falls_back_and_fails_typed(self, monkeypatch):
        monkeypatch.setattr(protocol, "HAVE_MSGPACK", False)
        monkeypatch.setattr(protocol, "CODECS", ("json",))
        assert negotiate_codec("msgpack") == "json"
        with pytest.raises(ProtocolError, match="msgpack library"):
            encode_frame({"type": "ping"}, "msgpack")

    def test_unknown_codec_fails_typed(self):
        with pytest.raises(ProtocolError, match="unknown codec"):
            encode_frame({"type": "ping"}, "cbor")


# ----------------------------------------------------------------------
# Serve-level equivalence: column replay == per-report replay
# ----------------------------------------------------------------------
class TestServeColumnPath:
    def test_column_replay_matches_per_report_replay(self):
        scenario = Scenario([
            Subject(user_id=uid, distance_m=3.0,
                    lateral_offset_m=(uid - 1.5) * 0.8,
                    breathing=MetronomeBreathing(10.0 + 2.0 * uid),
                    sway_seed=uid)
            for uid in (1, 2)
        ])
        reports = run_scenario(scenario, duration_s=25.0, seed=5).reports

        async def ingest(frames):
            server = BreathServer(n_shards=2)
            await server.start()
            client = IngestClient("127.0.0.1", server.port, frames=frames,
                                  client_id="eq-test")
            welcome = await client.connect()
            stats = await client.replay(reports, speed=0)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedEstimateWarning)
                estimates = {
                    s.user_id: s.engine.estimate_user(s.user_id).rate_bpm
                    for s in server.sessions()
                }
            await client.close()
            await server.drain()
            return welcome, stats, estimates

        async def both():
            col = await ingest(["column"])
            plain = await ingest(())
            return col, plain

        (w_col, s_col, e_col), (w_plain, s_plain, e_plain) = run(both())
        assert w_col.get("frames") == ["column"]
        assert w_plain.get("frames") == []
        assert s_col.sent == s_plain.sent == len(reports)
        assert s_col.acked == s_plain.acked == len(reports)
        # The whole point: same estimates, a fraction of the bytes.
        assert e_col == e_plain
        assert s_col.bytes_sent < s_plain.bytes_sent / 2
