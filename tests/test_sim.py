"""Tests for the end-to-end simulation testbed (repro.sim)."""

import numpy as np
import pytest

from repro.body import MetronomeBreathing, Subject
from repro.errors import ScenarioError
from repro.reader import Antenna
from repro.sim import GroundTruth, Scenario, run_scenario
from repro.epc import EPC96


class TestScenario:
    def test_single_user_builder(self):
        scenario = Scenario.single_user(distance_m=3.0)
        assert scenario.monitored_user_ids == [1]
        assert scenario.total_tag_count() == 3

    def test_tag_keys_cover_everything(self):
        scenario = Scenario.single_user().with_contending_tags(5, seed=0)
        keys = scenario.tag_keys()
        assert len(keys) == 8
        assert ("item", 1) in keys
        assert (1, 1) in keys

    def test_duplicate_users_rejected(self):
        subjects = [Subject(user_id=1, distance_m=2.0),
                    Subject(user_id=1, distance_m=3.0)]
        with pytest.raises(ScenarioError):
            Scenario(subjects)

    def test_empty_scenario_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario([])

    def test_contending_tags_have_foreign_epcs(self):
        scenario = Scenario.single_user().with_contending_tags(10, seed=1)
        monitored = set(scenario.monitored_user_ids)
        for item in scenario.contending_tags:
            assert item.epc.user_id not in monitored

    def test_contending_positions_in_coverage(self):
        scenario = Scenario.single_user().with_contending_tags(20, seed=2)
        for item in scenario.contending_tags:
            x, y, z = item.position_m
            assert 0.0 < (x ** 2 + y ** 2) ** 0.5 <= 5.5
            assert 0.0 < z < 2.0

    def test_with_contending_preserves_original(self):
        base = Scenario.single_user()
        extended = base.with_contending_tags(5, seed=0)
        assert len(base.contending_tags) == 0
        assert len(extended.contending_tags) == 5

    def test_negative_count_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario.single_user().with_contending_tags(-1)

    def test_position_static_for_items(self):
        scenario = Scenario.single_user().with_contending_tags(1, seed=0)
        key = ("item", 1)
        p0 = scenario.position_m(key, 0.0)
        p1 = scenario.position_m(key, 10.0)
        np.testing.assert_array_equal(p0, p1)

    def test_position_breathes_for_subjects(self):
        scenario = Scenario.single_user(
            breathing=MetronomeBreathing(10.0), sway_seed=0
        )
        p0 = scenario.position_m((1, 1), 0.0)
        p1 = scenario.position_m((1, 1), 3.0)
        assert not np.allclose(p0, p1)

    def test_unknown_key_rejected(self):
        scenario = Scenario.single_user()
        with pytest.raises(ScenarioError):
            scenario.position_m(("nope", 1), 0.0)
        with pytest.raises(ScenarioError):
            scenario.epc((9, 9))

    def test_subject_lookup(self):
        scenario = Scenario.single_user()
        assert scenario.subject(1).user_id == 1
        with pytest.raises(ScenarioError):
            scenario.subject(5)

    def test_epc_for_subject_tags(self):
        scenario = Scenario.single_user()
        epc = scenario.epc((1, 2))
        assert epc == EPC96.from_user_tag(1, 2)

    def test_extra_loss_for_items(self):
        scenario = Scenario.single_user().with_contending_tags(1, seed=0)
        antenna = Antenna(port=1)
        loss = scenario.extra_loss_db(("item", 1), 0.0, antenna)
        assert 0.0 <= loss <= 3.0


class TestRunScenario:
    def test_returns_reports_and_ground_truth(self):
        result = run_scenario(Scenario.single_user(distance_m=2.0),
                              duration_s=10.0, seed=0)
        assert result.duration_s == 10.0
        assert len(result.reports) > 300
        assert result.ground_truth.rate_bpm(1, 0, 10) == 10.0

    def test_seeded_reproducibility(self):
        scenario_a = Scenario.single_user(distance_m=2.0, sway_seed=1)
        scenario_b = Scenario.single_user(distance_m=2.0, sway_seed=1)
        r1 = run_scenario(scenario_a, duration_s=5.0, seed=42)
        r2 = run_scenario(scenario_b, duration_s=5.0, seed=42)
        assert len(r1.reports) == len(r2.reports)
        assert all(a.phase_rad == b.phase_rad
                   for a, b in zip(r1.reports[:30], r2.reports[:30]))

    def test_different_seeds_differ(self):
        scenario = Scenario.single_user(distance_m=2.0, sway_seed=1)
        r1 = run_scenario(scenario, duration_s=5.0, seed=1)
        r2 = run_scenario(scenario, duration_s=5.0, seed=2)
        assert [r.phase_rad for r in r1.reports[:10]] != \
            [r.phase_rad for r in r2.reports[:10]]

    def test_reports_for_user(self):
        scenario = Scenario.single_user().with_contending_tags(3, seed=0)
        result = run_scenario(scenario, duration_s=8.0, seed=0)
        user_reports = result.reports_for_user(1)
        assert user_reports
        assert all(r.user_id == 1 for r in user_reports)
        assert len(user_reports) < len(result.reports)

    def test_rate_accounting(self):
        result = run_scenario(Scenario.single_user(distance_m=2.0),
                              duration_s=10.0, seed=0)
        per_tag = result.per_tag_read_rate_hz()
        assert set(per_tag) == {(1, 1), (1, 2), (1, 3)}
        assert result.aggregate_read_rate_hz() == pytest.approx(
            sum(per_tag.values()), rel=1e-9
        )

    def test_bad_duration_rejected(self):
        with pytest.raises(ScenarioError):
            run_scenario(Scenario.single_user(), duration_s=0.0)


class TestGroundTruth:
    def test_all_rates(self):
        subjects = [
            Subject(user_id=1, distance_m=2.0, breathing=MetronomeBreathing(8.0)),
            Subject(user_id=2, distance_m=3.0, breathing=MetronomeBreathing(14.0)),
        ]
        truth = GroundTruth(Scenario(subjects))
        assert truth.all_rates_bpm(0, 60) == {1: 8.0, 2: 14.0}

    def test_windowed_rates(self):
        truth = GroundTruth(Scenario.single_user())
        rates = truth.windowed_rates_bpm(1, [(0, 30), (30, 60)])
        assert rates == [10.0, 10.0]

    def test_empty_windows_rejected(self):
        truth = GroundTruth(Scenario.single_user())
        with pytest.raises(ScenarioError):
            truth.windowed_rates_bpm(1, [])

    def test_unknown_user(self):
        truth = GroundTruth(Scenario.single_user())
        with pytest.raises(ScenarioError):
            truth.rate_bpm(7, 0, 10)


class TestContendingTagEffects:
    def test_contention_dilutes_monitor_rate(self):
        """The Fig. 14 mechanism end-to-end."""
        base = run_scenario(Scenario.single_user(distance_m=2.0),
                            duration_s=10.0, seed=5)
        crowded = run_scenario(
            Scenario.single_user(distance_m=2.0).with_contending_tags(20, seed=5),
            duration_s=10.0, seed=5,
        )
        base_rate = len(base.reports_for_user(1)) / 10.0
        crowded_rate = len(crowded.reports_for_user(1)) / 10.0
        assert crowded_rate < 0.6 * base_rate
