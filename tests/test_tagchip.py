"""Tests for the Fig. 1 constellation model (repro.rf.tagchip)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rf import TagChipModel
from repro.units import TWO_PI


class TestTagChipModel:
    def make_snapshot(self, **kwargs):
        defaults = dict(amplitude=1.0, phase_rad=1.2, rotation_rad=0.0,
                        noise_sigma=0.005, rng=np.random.default_rng(0))
        defaults.update(kwargs)
        return TagChipModel().snapshot(**defaults)

    def test_phase_matches_requested(self):
        snap = self.make_snapshot(phase_rad=2.3)
        assert snap.phase_rad == pytest.approx(2.3, abs=0.01)

    def test_phase_wrapped(self):
        snap = self.make_snapshot(phase_rad=TWO_PI + 0.4)
        assert snap.phase_rad == pytest.approx(0.4, abs=0.01)

    def test_rssi_scales_with_amplitude(self):
        weak = self.make_snapshot(amplitude=0.5)
        strong = self.make_snapshot(amplitude=2.0)
        assert strong.rssi_linear == pytest.approx(4 * weak.rssi_linear, rel=0.02)

    def test_modulation_depth_scales_vector(self):
        deep = TagChipModel(modulation_depth=1.0).snapshot(
            amplitude=1.0, phase_rad=0.5, rng=np.random.default_rng(1))
        shallow = TagChipModel(modulation_depth=0.25).snapshot(
            amplitude=1.0, phase_rad=0.5, rng=np.random.default_rng(1))
        assert deep.rssi_linear == pytest.approx(4 * shallow.rssi_linear, rel=0.05)

    def test_intra_packet_rotation_reports_doppler(self):
        """Fig. 1's H1 -> H2 rotation is exactly the Eq. (2) delta-theta."""
        snap = self.make_snapshot(rotation_rad=0.15)
        assert snap.intra_packet_rotation_rad == pytest.approx(0.15, abs=0.01)

    def test_zero_rotation_for_static_tag(self):
        snap = self.make_snapshot(rotation_rad=0.0)
        assert snap.intra_packet_rotation_rad == pytest.approx(0.0, abs=0.01)

    def test_two_clusters_separate(self):
        snap = self.make_snapshot()
        low_centroid = np.mean(snap.symbols_low)
        high_centroid = np.mean(snap.symbols_high)
        assert abs(high_centroid - low_centroid) > 10 * np.std(
            snap.symbols_low - low_centroid
        )

    def test_cluster_separation_falls_with_noise(self):
        clean = self.make_snapshot(noise_sigma=0.005)
        noisy = self.make_snapshot(noise_sigma=0.2)
        assert clean.cluster_separation() > noisy.cluster_separation()

    def test_low_cluster_at_leakage(self):
        model = TagChipModel(leakage_iq=0.5 - 0.25j)
        snap = model.snapshot(amplitude=1.0, phase_rad=0.3,
                              rng=np.random.default_rng(2))
        assert snap.low_iq == pytest.approx(0.5 - 0.25j, abs=0.01)

    def test_phase_independent_of_leakage(self):
        """The L -> H vector cancels the leakage — the reason commodity
        readers can report clean phase despite self-jamming."""
        for leakage in (0.0 + 0.0j, 1.0 + 2.0j, -0.4 + 0.9j):
            model = TagChipModel(leakage_iq=leakage)
            snap = model.snapshot(amplitude=1.0, phase_rad=1.0,
                                  rng=np.random.default_rng(3))
            assert snap.phase_rad == pytest.approx(1.0, abs=0.02)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TagChipModel(modulation_depth=0.0)
        with pytest.raises(ConfigError):
            TagChipModel(modulation_depth=1.5)
        with pytest.raises(ConfigError):
            self.make_snapshot(amplitude=0.0)
        with pytest.raises(ConfigError):
            self.make_snapshot(symbols_per_state=0)
