"""Tests for the chaos harness (repro.serve.chaos).

One short seeded experiment through the real multi-process fabric:
faults are injected, the recovery must be *observed* (worker restarts
in the report), and the streamed-equals-batch invariant must hold.
Kept deliberately small — the CI ``chaos-smoke`` job runs the larger
configuration — but this is a real fault-injection run, not a mock.
"""

from repro.serve import ChaosConfig, ChaosReport, run_chaos


class TestChaosReport:
    def test_summary_lines_cover_verdict_and_notes(self):
        report = ChaosReport(users=2, reports=100, kills=1,
                             restarts_observed=1, compared_users=2,
                             max_delta_bpm=0.0, ok=True)
        lines = report.summary_lines()
        assert any("verdict: OK" in line for line in lines)
        report.ok = False
        report.notes.append("something broke")
        lines = report.summary_lines()
        assert any("verdict: FAILED" in line for line in lines)
        assert any("something broke" in line for line in lines)


class TestChaosRun:
    def test_seeded_chaos_run_recovers_and_matches_batch(self, tmp_path):
        config = ChaosConfig(users=2, duration_s=30.0, seed=5,
                             workers=2, kills=1, stalls=0, corruptions=1,
                             fault_interval_s=1.5, speed=5.0)
        report = run_chaos(config, state_dir=tmp_path)
        assert report.ok, "\n".join(report.summary_lines())
        # Faults landed and the recovery is visible, not assumed:
        assert report.kills + report.corruptions >= 1
        assert report.restarts_observed >= 1
        # The invariant held for every subject:
        assert report.compared_users == config.users
        assert not report.missing_users
        assert report.max_delta_bpm <= config.tolerance_bpm

    def test_router_kill_fails_over_to_standby_and_matches_batch(
            self, tmp_path):
        """Acceptance: SIGKILL the active router mid-replay; the warm
        standby must promote, the client must reconnect through it, and
        streamed estimates must still match batch within tolerance."""
        config = ChaosConfig(users=2, duration_s=30.0, seed=11,
                             workers=2, router_kill=True,
                             fault_interval_s=1.5, speed=5.0)
        report = run_chaos(config, state_dir=tmp_path)
        assert report.ok, "\n".join(report.summary_lines())
        # The fault landed and the failover is visible, not assumed:
        assert report.router_kills == 1
        assert report.failovers >= 1
        assert report.retries >= 1  # the client actually reconnected
        # The invariant held for every subject across the failover:
        assert report.compared_users == config.users
        assert not report.missing_users
        assert report.max_delta_bpm <= config.tolerance_bpm
