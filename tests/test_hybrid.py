"""Tests for the Section IV-D-2 hybrid (phase + RSSI + Doppler) estimator."""

import pytest

from repro import Scenario, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.core.hybrid import HybridBreathEstimator, HybridEstimate
from repro.errors import InsufficientDataError


@pytest.fixture(scope="module")
def capture():
    scenario = Scenario([Subject(user_id=1, distance_m=2.0,
                                 breathing=MetronomeBreathing(12.0),
                                 sway_seed=0)])
    return run_scenario(scenario, duration_s=45.0, seed=77)


class TestHybridEstimator:
    def test_fused_rate_accurate(self, capture):
        estimate = HybridBreathEstimator().estimate(1, capture.reports)
        assert isinstance(estimate, HybridEstimate)
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.08)

    def test_phase_is_among_contributions(self, capture):
        estimate = HybridBreathEstimator().estimate(1, capture.reports)
        names = {c.name for c in estimate.contributions}
        assert "phase" in names
        assert "rssi" in names

    def test_phase_confidence_dominates(self, capture):
        """Phase is the engineered sensor; it should carry the decision."""
        estimate = HybridBreathEstimator().estimate(1, capture.reports)
        by_name = {c.name: c for c in estimate.contributions}
        assert by_name["phase"].confidence >= by_name["rssi"].confidence

    def test_doppler_optional(self, capture):
        with_doppler = HybridBreathEstimator(use_doppler=True).estimate(
            1, capture.reports
        )
        names = {c.name for c in with_doppler.contributions}
        assert "doppler" in names
        # Even with the noisy Doppler included, the fused rate holds.
        assert with_doppler.rate_bpm == pytest.approx(12.0, rel=0.12)

    def test_agreement_flag(self, capture):
        estimate = HybridBreathEstimator(agreement_tolerance_bpm=50.0).estimate(
            1, capture.reports
        )
        assert estimate.agreement  # everything agrees at infinite tolerance

    def test_no_data_rejected(self):
        with pytest.raises(InsufficientDataError):
            HybridBreathEstimator().estimate(1, [])

    def test_bad_tolerance_rejected(self):
        with pytest.raises(InsufficientDataError):
            HybridBreathEstimator(agreement_tolerance_bpm=0.0)

    def test_hybrid_not_worse_than_phase_alone(self, capture):
        from repro import TagBreathe, breathing_rate_accuracy
        phase = TagBreathe(user_ids={1}).process(capture.reports)[1]
        hybrid = HybridBreathEstimator().estimate(1, capture.reports)
        acc_phase = breathing_rate_accuracy(phase.rate_bpm, 12.0)
        acc_hybrid = breathing_rate_accuracy(hybrid.rate_bpm, 12.0)
        assert acc_hybrid >= acc_phase - 0.05
