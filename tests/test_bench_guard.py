"""Tests for tools/check_bench_regression.py (the CI perf guard)."""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" \
    / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _TOOL)
guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(guard)


def bench_doc(cases, fabric_cases=None, wire=None, idle=None):
    doc = {"suite": "pipeline", "streaming": {"cases": cases}}
    doc["fabric_scale"] = {"cases": [fabric_case()]
                           if fabric_cases is None else fabric_cases}
    doc["wire"] = wire_suite() if wire is None else wire
    doc["idle"] = idle_suite() if idle is None else idle
    return doc


def case(users, duration_s, speedup, diff=0.0, batch_speedup=6.0,
         batch_state_equal=True, batch_diff=0.0):
    return {"users": users, "duration_s": duration_s,
            "tick_speedup": speedup, "max_rate_diff_bpm": diff,
            "feed_batch_speedup": batch_speedup,
            "batch_state_equal": batch_state_equal,
            "batch_max_rate_diff_bpm": batch_diff}


def wire_suite(bytes_ratio=3.5, acked_equal_sent=True):
    return {"cases": [{"mode": "column"}, {"mode": "json"}],
            "headline": {"bytes_ratio": bytes_ratio,
                         "acked_equal_sent": acked_equal_sent}}


def idle_suite(registered=20_000, ratio=300.0, wake_verified=True,
               wake_p99_ms=2.0, ceiling=1.01):
    return {"headline": {"registered_users": registered,
                         "active_users": registered // 100,
                         "bytes_per_idle_user": 2600.0,
                         "bytes_per_active_user": 2600.0 * ratio,
                         "idle_active_ratio": ratio,
                         "wake_p99_ms": wake_p99_ms,
                         "wake_verified": wake_verified,
                         "soak_ceiling_ratio": ceiling}}


def fabric_case(users=100, settled=None, migrated=7, restarts=0,
                workers_initial=4, workers_final=5,
                acked_equal_sent=True, users_per_machine=None):
    settled = users if settled is None else settled
    return {"users": users,
            "settled_sessions": settled,
            "migrated_sessions": migrated,
            "worker_restarts": restarts,
            "workers_initial": workers_initial,
            "workers_final": workers_final,
            "acked_equal_sent": acked_equal_sent,
            "users_per_machine": (settled / workers_final
                                  if users_per_machine is None
                                  else users_per_machine)}


def write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestCompare:
    def test_passes_within_threshold(self):
        base = {(1, 25.0): case(1, 25.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 1.6)}
        assert guard.compare(base, cand, 0.25) == []

    def test_fails_beyond_threshold(self):
        base = {(1, 25.0): case(1, 25.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 1.4)}
        problems = guard.compare(base, cand, 0.25)
        assert len(problems) == 1
        assert "tick_speedup" in problems[0]

    def test_only_shared_cases_compared(self):
        base = {(1, 25.0): case(1, 25.0, 2.0),
                (15, 120.0): case(15, 120.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 2.1)}
        assert guard.compare(base, cand, 0.25) == []

    def test_no_shared_cases_is_an_error(self):
        base = {(15, 120.0): case(15, 120.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 2.0)}
        assert guard.compare(base, cand, 0.25) != []

    def test_nonzero_rate_diff_fails(self):
        base = {(1, 25.0): case(1, 25.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 2.0, diff=0.3)}
        problems = guard.compare(base, cand, 0.25)
        assert any("diverged" in p for p in problems)

    def test_batch_speedup_below_floor_fails(self):
        base = {(1, 25.0): case(1, 25.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 2.0, batch_speedup=2.5)}
        problems = guard.compare(base, cand, 0.25)
        assert any("feed_batch_speedup" in p for p in problems)

    def test_missing_batch_measurement_fails(self):
        base = {(1, 25.0): case(1, 25.0, 2.0)}
        cand_case = case(1, 25.0, 2.0)
        del cand_case["feed_batch_speedup"]
        problems = guard.compare(base, {(1, 25.0): cand_case}, 0.25)
        assert any("no feed_batch_speedup" in p for p in problems)

    def test_batch_state_mismatch_fails(self):
        base = {(1, 25.0): case(1, 25.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 2.0, batch_state_equal=False)}
        problems = guard.compare(base, cand, 0.25)
        assert any("state" in p for p in problems)

    def test_batch_rate_divergence_fails(self):
        base = {(1, 25.0): case(1, 25.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 2.0, batch_diff=0.2)}
        problems = guard.compare(base, cand, 0.25)
        assert any("batch" in p and "diverge" in p for p in problems)


class TestFabricSuite:
    """check_fabric_suite: candidate-only count invariants, no baseline."""

    def test_clean_soak_passes(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc([case(1, 25.0, 2.0)]))
        assert guard.check_fabric_suite(path) == []

    def test_missing_suite_is_a_failure(self, tmp_path):
        doc = bench_doc([case(1, 25.0, 2.0)])
        del doc["fabric_scale"]
        path = write(tmp_path, "cand.json", doc)
        assert any("no fabric_scale soak suite" in p
                   for p in guard.check_fabric_suite(path))

    def test_legacy_fabric_key_is_not_accepted(self, tmp_path):
        doc = bench_doc([case(1, 25.0, 2.0)])
        doc["fabric"] = doc.pop("fabric_scale")
        path = write(tmp_path, "cand.json", doc)
        assert any("no fabric_scale soak suite" in p
                   for p in guard.check_fabric_suite(path))

    def test_ack_mismatch_fails(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], [fabric_case(acked_equal_sent=False)]))
        assert any("acked != sent" in p
                   for p in guard.check_fabric_suite(path))

    def test_missing_per_machine_capacity_fails(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], [fabric_case(users_per_machine=0.0)]))
        assert any("users_per_machine" in p
                   for p in guard.check_fabric_suite(path))

    def test_lost_sessions_fail(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], [fabric_case(users=100, settled=99)]))
        assert any("settled 99" in p for p in guard.check_fabric_suite(path))

    def test_rebalance_must_move_sessions(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], [fabric_case(migrated=0)]))
        assert any("moved 0 sessions" in p
                   for p in guard.check_fabric_suite(path))

    def test_fault_free_soak_must_not_restart_workers(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], [fabric_case(restarts=2)]))
        assert any("restart" in p for p in guard.check_fabric_suite(path))

    def test_worker_count_must_grow(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)],
            [fabric_case(workers_initial=4, workers_final=4)]))
        assert any("no rebalance happened" in p
                   for p in guard.check_fabric_suite(path))


class TestWireSuite:
    """check_wire_suite: format-property invariants, no baseline."""

    def test_clean_suite_passes(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc([case(1, 25.0, 2.0)]))
        assert guard.check_wire_suite(path) == []

    def test_missing_suite_is_a_failure(self, tmp_path):
        doc = bench_doc([case(1, 25.0, 2.0)])
        del doc["wire"]
        path = write(tmp_path, "cand.json", doc)
        assert any("no wire benchmark suite" in p
                   for p in guard.check_wire_suite(path))

    def test_low_bytes_ratio_fails(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], wire=wire_suite(bytes_ratio=1.2)))
        assert any("bytes ratio" in p for p in guard.check_wire_suite(path))

    def test_ack_mismatch_fails(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], wire=wire_suite(acked_equal_sent=False)))
        assert any("acked != sent" in p
                   for p in guard.check_wire_suite(path))


class TestIdleSuite:
    """check_idle_suite: same-run ratios and counts, no baseline."""

    def test_clean_suite_passes(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc([case(1, 25.0, 2.0)]))
        assert guard.check_idle_suite(path) == []

    def test_missing_suite_is_a_failure(self, tmp_path):
        doc = bench_doc([case(1, 25.0, 2.0)])
        del doc["idle"]
        path = write(tmp_path, "cand.json", doc)
        assert any("no idle economics suite" in p
                   for p in guard.check_idle_suite(path))

    def test_population_floor(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], idle=idle_suite(registered=500)))
        assert any("registered users" in p
                   for p in guard.check_idle_suite(path))

    def test_low_idle_active_ratio_fails(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], idle=idle_suite(ratio=6.0)))
        assert any("ratio 6.0x" in p for p in guard.check_idle_suite(path))

    def test_unverified_wake_fails(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], idle=idle_suite(wake_verified=False)))
        assert any("bit-exact" in p for p in guard.check_idle_suite(path))

    def test_slow_wake_fails(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], idle=idle_suite(wake_p99_ms=400.0)))
        assert any("wake p99" in p for p in guard.check_idle_suite(path))

    def test_growing_memory_ceiling_fails(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], idle=idle_suite(ceiling=2.4)))
        assert any("ceiling ratio" in p
                   for p in guard.check_idle_suite(path))

    def test_missing_fields_fail_not_pass(self, tmp_path):
        path = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], idle={"headline": {"quick": True}}))
        assert len(guard.check_idle_suite(path)) >= 4


class TestMain:
    def test_end_to_end_pass(self, tmp_path, capsys):
        base = write(tmp_path, "base.json",
                     bench_doc([case(1, 25.0, 2.0), case(5, 25.0, 2.0)]))
        cand = write(tmp_path, "cand.json",
                     bench_doc([case(1, 25.0, 1.9)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(cand)]) == 0
        assert "1 shared case(s)" in capsys.readouterr().out

    def test_end_to_end_regression(self, tmp_path):
        base = write(tmp_path, "base.json", bench_doc([case(1, 25.0, 3.0)]))
        cand = write(tmp_path, "cand.json", bench_doc([case(1, 25.0, 1.0)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(cand)]) == 1

    def test_fabric_violation_fails_end_to_end(self, tmp_path):
        base = write(tmp_path, "base.json", bench_doc([case(1, 25.0, 2.0)]))
        cand = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], [fabric_case(users=100, settled=98)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(cand)]) == 1

    def test_idle_violation_fails_end_to_end(self, tmp_path):
        base = write(tmp_path, "base.json", bench_doc([case(1, 25.0, 2.0)]))
        cand = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], idle=idle_suite(ratio=3.0)))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(cand)]) == 1

    def test_missing_streaming_suite_fails(self, tmp_path):
        base = write(tmp_path, "base.json", {"suite": "pipeline"})
        cand = write(tmp_path, "cand.json", bench_doc([case(1, 25.0, 2.0)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(cand)]) == 1

    def test_bad_threshold_rejected(self, tmp_path):
        base = write(tmp_path, "base.json", bench_doc([case(1, 25.0, 2.0)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(base),
                           "--threshold", "1.5"]) == 2

    def test_missing_file_fails_cleanly(self, tmp_path):
        base = write(tmp_path, "base.json", bench_doc([case(1, 25.0, 2.0)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(tmp_path / "nope.json")]) == 1

    def test_fabric_only_pass(self, tmp_path, capsys):
        cand = write(tmp_path, "cand.json", bench_doc([case(1, 25.0, 2.0)]))
        assert guard.main(["--fabric", str(cand)]) == 0
        assert "fabric_scale soak invariants hold" in capsys.readouterr().out

    def test_fabric_only_violation_fails(self, tmp_path):
        cand = write(tmp_path, "cand.json", bench_doc(
            [case(1, 25.0, 2.0)], [fabric_case(acked_equal_sent=False)]))
        assert guard.main(["--fabric", str(cand)]) == 1

    def test_no_inputs_rejected(self):
        assert guard.main([]) == 2
