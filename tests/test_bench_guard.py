"""Tests for tools/check_bench_regression.py (the CI perf guard)."""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" \
    / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _TOOL)
guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(guard)


def bench_doc(cases):
    return {"suite": "pipeline", "streaming": {"cases": cases}}


def case(users, duration_s, speedup, diff=0.0):
    return {"users": users, "duration_s": duration_s,
            "tick_speedup": speedup, "max_rate_diff_bpm": diff}


def write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestCompare:
    def test_passes_within_threshold(self):
        base = {(1, 25.0): case(1, 25.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 1.6)}
        assert guard.compare(base, cand, 0.25) == []

    def test_fails_beyond_threshold(self):
        base = {(1, 25.0): case(1, 25.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 1.4)}
        problems = guard.compare(base, cand, 0.25)
        assert len(problems) == 1
        assert "tick_speedup" in problems[0]

    def test_only_shared_cases_compared(self):
        base = {(1, 25.0): case(1, 25.0, 2.0),
                (15, 120.0): case(15, 120.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 2.1)}
        assert guard.compare(base, cand, 0.25) == []

    def test_no_shared_cases_is_an_error(self):
        base = {(15, 120.0): case(15, 120.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 2.0)}
        assert guard.compare(base, cand, 0.25) != []

    def test_nonzero_rate_diff_fails(self):
        base = {(1, 25.0): case(1, 25.0, 2.0)}
        cand = {(1, 25.0): case(1, 25.0, 2.0, diff=0.3)}
        problems = guard.compare(base, cand, 0.25)
        assert any("diverged" in p for p in problems)


class TestMain:
    def test_end_to_end_pass(self, tmp_path, capsys):
        base = write(tmp_path, "base.json",
                     bench_doc([case(1, 25.0, 2.0), case(5, 25.0, 2.0)]))
        cand = write(tmp_path, "cand.json",
                     bench_doc([case(1, 25.0, 1.9)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(cand)]) == 0
        assert "1 shared case(s)" in capsys.readouterr().out

    def test_end_to_end_regression(self, tmp_path):
        base = write(tmp_path, "base.json", bench_doc([case(1, 25.0, 3.0)]))
        cand = write(tmp_path, "cand.json", bench_doc([case(1, 25.0, 1.0)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(cand)]) == 1

    def test_missing_streaming_suite_fails(self, tmp_path):
        base = write(tmp_path, "base.json", {"suite": "pipeline"})
        cand = write(tmp_path, "cand.json", bench_doc([case(1, 25.0, 2.0)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(cand)]) == 1

    def test_bad_threshold_rejected(self, tmp_path):
        base = write(tmp_path, "base.json", bench_doc([case(1, 25.0, 2.0)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(base),
                           "--threshold", "1.5"]) == 2

    def test_missing_file_fails_cleanly(self, tmp_path):
        base = write(tmp_path, "base.json", bench_doc([case(1, 25.0, 2.0)]))
        assert guard.main(["--baseline", str(base),
                           "--candidate", str(tmp_path / "nope.json")]) == 1
