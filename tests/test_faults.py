"""Tests for the fault-injection subsystem (repro.faults)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Scenario, run_scenario
from repro.config import ReaderConfig
from repro.body import MetronomeBreathing, Subject
from repro.errors import FaultInjectionError
from repro.faults import (
    ALL_INJECTORS,
    AntennaOutage,
    BurstyDrop,
    DuplicateReports,
    FaultChain,
    InjectionStats,
    InterferenceBurst,
    OutOfOrderDelivery,
    PhaseOutliers,
    PhasePiFlips,
    ReportDrop,
    TagDeath,
    TagDropout,
    TimestampJitter,
)
from repro.units import TWO_PI


@pytest.fixture(scope="module")
def capture():
    """One shared 2-antenna capture all injector tests chew on."""
    scenario = Scenario([Subject(user_id=1, distance_m=2.5,
                                 breathing=MetronomeBreathing(12.0),
                                 sway_seed=0)])
    return run_scenario(scenario, duration_s=20.0, seed=7,
                        reader_config=ReaderConfig(num_antennas=2))


def rng():
    return np.random.default_rng(42)


class TestSeverityZeroIdentity:
    """ISSUE property: every injector at severity 0 is a byte-level no-op."""

    @pytest.mark.parametrize("cls", ALL_INJECTORS)
    def test_identity(self, cls, capture):
        out = cls(0.0).apply(capture.reports, rng())
        assert len(out) == len(capture.reports)
        assert all(a is b for a, b in zip(out, capture.reports))

    def test_zero_chain_is_noop(self, capture):
        chain = FaultChain([cls(0.0) for cls in ALL_INJECTORS], seed=3)
        out = chain.apply(capture.reports)
        assert all(a is b for a, b in zip(out, capture.reports))
        assert all(st_.dropped == 0 for st_ in chain.last_stats)

    def test_empty_input_is_noop(self):
        for cls in ALL_INJECTORS:
            assert cls(0.7).apply([], rng()) == []


class TestReproducibility:
    def test_same_chain_same_output(self, capture):
        chain = FaultChain([ReportDrop(0.3), PhasePiFlips(0.1),
                            DuplicateReports(0.05)], seed=21)
        assert chain.apply(capture.reports) == chain.apply(capture.reports)

    def test_equal_chains_agree(self, capture):
        make = lambda: FaultChain([BurstyDrop(0.4, burst_s=0.5),
                                   TagDeath(0.5)], seed=9)
        assert make().apply(capture.reports) == make().apply(capture.reports)

    def test_seed_matters(self, capture):
        a = FaultChain([ReportDrop(0.5)], seed=1).apply(capture.reports)
        b = FaultChain([ReportDrop(0.5)], seed=2).apply(capture.reports)
        assert a != b

    def test_stage_draws_independent_of_later_config(self, capture):
        """Editing stage 2 must not change stage 1's random draws."""
        kept_a = FaultChain([ReportDrop(0.4), PhasePiFlips(0.05)],
                            seed=5).apply(capture.reports)
        kept_b = FaultChain([ReportDrop(0.4), PhasePiFlips(0.95)],
                            seed=5).apply(capture.reports)
        # Phase flips never drop reads, so the surviving timestamps expose
        # exactly which reads stage 1 kept.
        assert [r.timestamp_s for r in kept_a] == [r.timestamp_s for r in kept_b]

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_any_seed_reproducible(self, seed, capture):
        chain = FaultChain([ReportDrop(0.2), TimestampJitter(0.5)], seed=seed)
        assert chain.apply(capture.reports) == chain.apply(capture.reports)


class TestLossInjectors:
    def test_report_drop_rate(self, capture):
        out = ReportDrop(0.5).apply(capture.reports, rng())
        frac = len(out) / len(capture.reports)
        assert 0.4 < frac < 0.6

    def test_report_drop_total(self, capture):
        assert ReportDrop(1.0).apply(capture.reports, rng()) == []

    def test_bursty_drop_total(self, capture):
        assert BurstyDrop(1.0).apply(capture.reports, rng()) == []

    def test_bursty_drop_opens_gaps(self, capture):
        out = BurstyDrop(0.4, burst_s=2.0).apply(capture.reports, rng())
        assert 0 < len(out) < len(capture.reports)
        times = np.array([r.timestamp_s for r in out])
        clean = np.array([r.timestamp_s for r in capture.reports])
        assert np.diff(times).max() > np.diff(clean).max() * 5

    def test_interference_burst_gates_windows(self, capture):
        out = InterferenceBurst(0.3, burst_s=1.0).apply(capture.reports, rng())
        assert 0 < len(out) < len(capture.reports)
        survivors = {id(r) for r in out}
        assert all(id(r) in {id(x) for x in capture.reports} for r in out)
        assert survivors <= {id(r) for r in capture.reports}


class TestTagAndAntennaInjectors:
    def test_tag_dropout_hits_every_stream(self, capture):
        out = TagDropout(0.5, outage_s=1.0).apply(capture.reports, rng())
        before = {}
        after = {}
        for r in capture.reports:
            before[r.stream_key] = before.get(r.stream_key, 0) + 1
        for r in out:
            after[r.stream_key] = after.get(r.stream_key, 0) + 1
        assert all(after.get(k, 0) < before[k] for k in before)

    def test_tag_death_is_permanent(self, capture):
        out = TagDeath(0.5, num_victims=1).apply(capture.reports, rng())
        t0 = min(r.timestamp_s for r in capture.reports)
        t1 = max(r.timestamp_s for r in capture.reports)
        death = t1 - 0.5 * (t1 - t0)
        streams = {r.stream_key for r in capture.reports}
        last = {}
        for r in out:
            last[r.stream_key] = max(last.get(r.stream_key, t0), r.timestamp_s)
        victims = [k for k in streams if last.get(k, t0) < death]
        assert len(victims) == 1
        # every other stream still reaches the end of the capture
        for k in streams:
            if k not in victims:
                assert last[k] > death

    def test_antenna_outage_start_window(self, capture):
        out = AntennaOutage(0.5, port=1, align="start").apply(
            capture.reports, rng())
        t0 = min(r.timestamp_s for r in capture.reports)
        t1 = max(r.timestamp_s for r in capture.reports)
        mid = t0 + 0.5 * (t1 - t0)
        assert all(r.timestamp_s > mid for r in out if r.antenna_port == 1)
        n_port2_in = sum(r.antenna_port == 2 for r in capture.reports)
        n_port2_out = sum(r.antenna_port == 2 for r in out)
        assert n_port2_in == n_port2_out

    def test_antenna_outage_default_port_is_busiest(self, capture):
        counts = {}
        for r in capture.reports:
            counts[r.antenna_port] = counts.get(r.antenna_port, 0) + 1
        busiest = max(sorted(counts), key=lambda p: counts[p])
        out = AntennaOutage(1.0, align="start").apply(capture.reports, rng())
        assert not any(r.antenna_port == busiest for r in out)


class TestCorruptionInjectors:
    def test_phase_outliers_wrap(self, capture):
        out = PhaseOutliers(0.2).apply(capture.reports, rng())
        assert len(out) == len(capture.reports)
        changed = sum(a.phase_rad != b.phase_rad
                      for a, b in zip(out, capture.reports))
        assert 0 < changed < len(out)
        assert all(0.0 <= r.phase_rad < TWO_PI for r in out)
        assert all(a.timestamp_s == b.timestamp_s
                   for a, b in zip(out, capture.reports))

    def test_pi_flip_is_exactly_pi(self, capture):
        out = PhasePiFlips(1.0).apply(capture.reports, rng())
        for faulted, clean in zip(out, capture.reports):
            expected = (clean.phase_rad + np.pi) % TWO_PI
            assert faulted.phase_rad == pytest.approx(expected)

    def test_jitter_keeps_order_moves_times(self, capture):
        inj = TimestampJitter(1.0, max_jitter_s=0.05)
        out = inj.apply(capture.reports, rng())
        assert [r.epc for r in out] == [r.epc for r in capture.reports]
        deltas = [abs(a.timestamp_s - b.timestamp_s)
                  for a, b in zip(out, capture.reports)]
        assert max(deltas) <= 0.05 + 1e-12
        assert max(deltas) > 0.0


class TestDeliveryInjectors:
    def test_duplicates_back_to_back(self, capture):
        out = DuplicateReports(1.0).apply(capture.reports, rng())
        assert len(out) == 2 * len(capture.reports)
        assert all(out[2 * i] == out[2 * i + 1]
                   for i in range(len(capture.reports)))

    def test_out_of_order_preserves_multiset(self, capture):
        out = OutOfOrderDelivery(0.5, max_delay_s=0.3).apply(
            capture.reports, rng())
        assert sorted(out, key=lambda r: (r.timestamp_s, r.epc.value)) == \
            sorted(capture.reports, key=lambda r: (r.timestamp_s, r.epc.value))
        times = [r.timestamp_s for r in out]
        assert any(a > b for a, b in zip(times, times[1:]))


class TestValidation:
    @pytest.mark.parametrize("cls", ALL_INJECTORS)
    @pytest.mark.parametrize("severity", [-0.1, 1.5])
    def test_severity_range(self, cls, severity):
        with pytest.raises(FaultInjectionError):
            cls(severity)

    def test_parameter_validation(self):
        with pytest.raises(FaultInjectionError):
            BurstyDrop(0.5, burst_s=0.0)
        with pytest.raises(FaultInjectionError):
            InterferenceBurst(0.5, burst_s=-1.0)
        with pytest.raises(FaultInjectionError):
            TagDropout(0.5, outage_s=0.0)
        with pytest.raises(FaultInjectionError):
            TagDeath(0.5, num_victims=0)
        with pytest.raises(FaultInjectionError):
            AntennaOutage(0.5, port=0)
        with pytest.raises(FaultInjectionError):
            AntennaOutage(0.5, align="middle")
        with pytest.raises(FaultInjectionError):
            PhaseOutliers(0.5, magnitude_rad=0.0)
        with pytest.raises(FaultInjectionError):
            TimestampJitter(0.5, max_jitter_s=0.0)
        with pytest.raises(FaultInjectionError):
            OutOfOrderDelivery(0.5, max_delay_s=0.0)

    def test_chain_rejects_non_injector(self):
        with pytest.raises(FaultInjectionError):
            FaultChain(["not an injector"])


class TestChainBookkeeping:
    def test_stats_account_stage_by_stage(self, capture):
        chain = FaultChain([ReportDrop(0.3), DuplicateReports(0.2)], seed=4)
        out = chain.apply(capture.reports)
        stats = chain.last_stats
        assert [s.name for s in stats] == ["report_drop", "duplicate_reports"]
        assert stats[0].reports_in == len(capture.reports)
        assert stats[0].reports_out == stats[1].reports_in
        assert stats[1].reports_out == len(out)
        assert stats[0].dropped > 0
        assert stats[1].dropped < 0  # duplicates add reports

    def test_describe_and_repr(self, capture):
        chain = FaultChain([BurstyDrop(0.25)], seed=8)
        assert "no-op" not in chain.describe()
        chain.apply(capture.reports)
        text = chain.describe()
        assert "bursty_drop" in text
        assert "->" in text
        assert "bursty_drop@0.25" in repr(chain)
        assert len(chain) == 1

    def test_empty_chain(self, capture):
        chain = FaultChain()
        assert chain.apply(capture.reports) == list(capture.reports)
        assert chain.describe() == "no-op chain"
        assert chain.last_stats == ()

    def test_stats_dataclass(self):
        s = InjectionStats("x", 0.5, 10, 4)
        assert s.dropped == 6


class TestProducerIntegration:
    def test_run_scenario_faults_param(self, capture):
        scenario = capture.scenario
        chain = FaultChain([ReportDrop(0.4)], seed=13)
        faulted = run_scenario(scenario, duration_s=20.0, seed=7,
                               reader_config=ReaderConfig(num_antennas=2),
                               faults=chain)
        expected = FaultChain([ReportDrop(0.4)], seed=13).apply(capture.reports)
        assert faulted.reports == expected

    def test_llrp_client_fault_chain(self):
        from repro.reader import LLRPClient, ROSpec, Reader

        scenario = Scenario.single_user(distance_m=2.0)
        chain = FaultChain([ReportDrop(0.5)], seed=2)

        def run(client):
            client.connect()
            client.add_rospec(ROSpec(duration_s=3.0))
            received = []
            client.subscribe(received.append)
            reports = client.start()
            return reports, received

        clean, _ = run(LLRPClient(
            Reader(rng=np.random.default_rng(0)), scenario))
        faulted, received = run(LLRPClient(
            Reader(rng=np.random.default_rng(0)), scenario, faults=chain))
        assert faulted == FaultChain([ReportDrop(0.5)], seed=2).apply(clean)
        assert received == faulted

    def test_set_fault_chain_clears(self):
        from repro.reader import LLRPClient, ROSpec, Reader

        scenario = Scenario.single_user(distance_m=2.0)
        client = LLRPClient(Reader(rng=np.random.default_rng(0)), scenario,
                            faults=FaultChain([ReportDrop(1.0)], seed=0))
        client.set_fault_chain(None)
        client.connect()
        client.add_rospec(ROSpec(duration_s=2.0))
        assert len(client.start()) > 0
