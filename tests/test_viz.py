"""Tests for the terminal visualisation helpers."""

import numpy as np

from repro.streams import TimeSeries
from repro.viz import render_bar_chart, render_series, render_table, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_downsampling(self):
        assert len(sparkline(range(100), width=20)) == 20

    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] != line[-1]


class TestRenderSeries:
    def test_contains_markers_and_range(self):
        ts = TimeSeries.regular(np.sin(np.linspace(0, 6, 60)), 10.0)
        plot = render_series(ts, title="wave")
        assert "wave" in plot
        assert "*" in plot
        assert "samples" in plot

    def test_empty_series(self):
        assert render_series(TimeSeries.empty()) == ""

    def test_degenerate_dims(self):
        ts = TimeSeries.regular([1, 2, 3], 1.0)
        assert render_series(ts, height=1) == ""


class TestRenderTable:
    def test_alignment(self):
        table = render_table(["a", "long header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_contents_present(self):
        table = render_table(["x"], [["hello"]])
        assert "hello" in table


class TestBarChart:
    def test_bars_scale(self):
        chart = render_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_mismatched_inputs(self):
        assert render_bar_chart(["a"], [1.0, 2.0]) == ""
        assert render_bar_chart([], []) == ""
