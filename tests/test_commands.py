"""Tests for the C1G2 command-level encoding (repro.epc.commands)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.epc.commands import (
    QueryCommand,
    crc5,
    crc5_check,
    crc16,
    crc16_check,
    decode_ack,
    decode_query_adjust,
    decode_query_rep,
    encode_ack,
    encode_query_adjust,
    encode_query_rep,
    frame_epc_reply,
    parse_epc_reply,
)
from repro.errors import EPCError


class TestCRC16:
    def test_known_check_value(self):
        """CRC-16/GENIBUS (the Gen2 CRC) of '123456789' is 0xD64E."""
        assert crc16(b"123456789") == 0xD64E

    def test_empty_input(self):
        assert crc16(b"") == 0x0000  # preset FFFF ^ final FFFF

    def test_check_helper(self):
        data = b"\x30\x00hello world!"
        assert crc16_check(data, crc16(data))
        assert not crc16_check(data, crc16(data) ^ 1)

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=60)
    def test_single_bit_errors_detected(self, data):
        reference = crc16(data)
        corrupted = bytes([data[0] ^ 0x01]) + data[1:]
        assert crc16(corrupted) != reference


class TestCRC5:
    def test_deterministic(self):
        assert crc5("10000000000001001") == crc5("10000000000001001")

    def test_range(self):
        assert 0 <= crc5("1010101") < 32

    def test_rejects_non_binary(self):
        with pytest.raises(EPCError):
            crc5("10a01")

    @given(st.text(alphabet="01", min_size=5, max_size=30))
    @settings(max_examples=60)
    def test_bit_flip_detected(self, bits):
        reference = crc5(bits)
        flipped = ("1" if bits[0] == "0" else "0") + bits[1:]
        # CRC-5 detects all single-bit errors.
        assert crc5(flipped) != reference

    def test_check_roundtrip(self):
        body = "1000" + "0" * 13
        framed = body + format(crc5(body), "05b")
        assert crc5_check(framed)
        assert not crc5_check(framed[:-1] + ("1" if framed[-1] == "0" else "0"))


class TestQueryCommand:
    def test_frame_length(self):
        assert len(QueryCommand().encode()) == 22

    def test_roundtrip(self):
        query = QueryCommand(dr=1, m=2, trext=1, sel=3, session=2, target=1, q=9)
        assert QueryCommand.decode(query.encode()) == query

    @given(
        st.integers(0, 1), st.integers(0, 3), st.integers(0, 1),
        st.integers(0, 3), st.integers(0, 3), st.integers(0, 1),
        st.integers(0, 15),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, dr, m, trext, sel, session, target, q):
        query = QueryCommand(dr, m, trext, sel, session, target, q)
        assert QueryCommand.decode(query.encode()) == query

    def test_decode_rejects_bad_crc(self):
        bits = QueryCommand(q=5).encode()
        corrupted = bits[:-1] + ("1" if bits[-1] == "0" else "0")
        with pytest.raises(EPCError):
            QueryCommand.decode(corrupted)

    def test_decode_rejects_wrong_prefix(self):
        bits = "0" + QueryCommand().encode()[1:]
        with pytest.raises(EPCError):
            QueryCommand.decode(bits)

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(EPCError):
            QueryCommand.decode("10" * 5)

    def test_field_validation(self):
        with pytest.raises(EPCError):
            QueryCommand(q=16)
        with pytest.raises(EPCError):
            QueryCommand(session=4)


class TestShortCommands:
    def test_query_rep_roundtrip(self):
        for session in range(4):
            assert decode_query_rep(encode_query_rep(session)) == session

    def test_query_rep_rejects_garbage(self):
        with pytest.raises(EPCError):
            decode_query_rep("1111")

    def test_query_adjust_roundtrip(self):
        for session in range(4):
            for updn in (-1, 0, 1):
                frame = encode_query_adjust(session, updn)
                assert decode_query_adjust(frame) == (session, updn)
                assert len(frame) == 9

    def test_query_adjust_rejects_bad_updn(self):
        with pytest.raises(EPCError):
            encode_query_adjust(0, 2)
        with pytest.raises(EPCError):
            decode_query_adjust("1001" + "00" + "111")

    def test_ack_roundtrip(self):
        assert decode_ack(encode_ack(0xBEEF)) == 0xBEEF
        assert len(encode_ack(0)) == 18

    def test_ack_rejects_oversized_rn16(self):
        with pytest.raises(EPCError):
            encode_ack(0x10000)

    def test_ack_rejects_garbage(self):
        with pytest.raises(EPCError):
            decode_ack("10" + "0" * 16)


class TestEPCReplyFraming:
    def test_roundtrip_96bit_epc(self):
        epc = bytes(range(12))
        assert parse_epc_reply(frame_epc_reply(epc)) == epc

    def test_pc_word_encodes_length(self):
        frame = frame_epc_reply(bytes(12))
        pc = int.from_bytes(frame[:2], "big")
        assert pc >> 11 == 6  # 12 bytes = 6 words

    def test_crc_corruption_detected(self):
        frame = bytearray(frame_epc_reply(bytes(12)))
        frame[5] ^= 0xFF
        with pytest.raises(EPCError):
            parse_epc_reply(bytes(frame))

    def test_odd_length_rejected(self):
        with pytest.raises(EPCError):
            frame_epc_reply(bytes(11))

    def test_truncated_reply_rejected(self):
        with pytest.raises(EPCError):
            parse_epc_reply(b"\x00\x01")

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=20)
    def test_any_word_count_roundtrips(self, words):
        epc = bytes(range(2 * words))
        assert parse_epc_reply(frame_epc_reply(epc)) == epc
