"""Tests for the Eq. (8) accuracy metric and the experiment runner."""

import pytest

from repro.body import MetronomeBreathing, Subject
from repro.errors import ReproError
from repro.metrics import (
    AccuracyStats,
    ExperimentRunner,
    breathing_rate_accuracy,
    bpm_error,
    summarize_accuracies,
)
from repro.metrics.evaluation import TrialOutcome
from repro.sim import Scenario


class TestEq8Accuracy:
    def test_perfect(self):
        assert breathing_rate_accuracy(10.0, 10.0) == 1.0

    def test_ten_percent_error(self):
        assert breathing_rate_accuracy(11.0, 10.0) == pytest.approx(0.9)

    def test_symmetric_in_error_sign(self):
        assert breathing_rate_accuracy(9.0, 10.0) == \
            pytest.approx(breathing_rate_accuracy(11.0, 10.0))

    def test_clamped_at_zero(self):
        assert breathing_rate_accuracy(50.0, 10.0) == 0.0

    def test_rejects_bad_truth(self):
        with pytest.raises(ReproError):
            breathing_rate_accuracy(10.0, 0.0)

    def test_bpm_error(self):
        assert bpm_error(11.5, 10.0) == pytest.approx(1.5)
        assert bpm_error(8.5, 10.0) == pytest.approx(1.5)


class TestSummaries:
    def test_aggregate_fields(self):
        stats = summarize_accuracies([10.0, 11.0], [10.0, 10.0])
        assert stats.trials == 2
        assert stats.mean == pytest.approx(0.95)
        assert stats.minimum == pytest.approx(0.9)
        assert stats.maximum == pytest.approx(1.0)
        assert stats.mean_bpm_error == pytest.approx(0.5)

    def test_failures_reported(self):
        stats = summarize_accuracies([10.0], [10.0], failures=3)
        assert stats.failures == 3

    def test_str_readable(self):
        stats = summarize_accuracies([10.0], [10.0])
        assert "accuracy" in str(stats)

    def test_mismatched_lengths(self):
        with pytest.raises(ReproError):
            summarize_accuracies([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize_accuracies([], [])


class TestExperimentRunner:
    def make_runner(self, **kwargs):
        def factory(trial, rate):
            return Scenario([Subject(
                user_id=1, distance_m=2.0,
                breathing=MetronomeBreathing(rate), sway_seed=trial,
            )])
        defaults = dict(scenario_factory=factory, trials=2,
                        trial_duration_s=30.0, seed=0)
        defaults.update(kwargs)
        return ExperimentRunner(**defaults)

    def test_runs_all_trials(self):
        outcomes = self.make_runner().run()
        assert len(outcomes) == 2
        assert all(isinstance(o, TrialOutcome) for o in outcomes)

    def test_rates_drawn_from_range(self):
        outcomes = self.make_runner(rate_range_bpm=(8.0, 9.0)).run()
        for outcome in outcomes:
            assert 8.0 <= outcome.true_rate_bpm <= 9.0

    def test_aggregate(self):
        outcomes = self.make_runner().run()
        stats = ExperimentRunner.aggregate(outcomes)
        assert isinstance(stats, AccuracyStats)
        assert stats.mean > 0.9  # 2 m, clean conditions

    def test_deterministic(self):
        a = self.make_runner().run()
        b = self.make_runner().run()
        assert [o.measured_rate_bpm for o in a] == [o.measured_rate_bpm for o in b]

    def test_failure_outcomes(self):
        def blocked_factory(trial, rate):
            return Scenario([Subject(user_id=1, distance_m=4.0,
                                     orientation_deg=170.0)])
        runner = self.make_runner(scenario_factory=blocked_factory, trials=1)
        outcomes = runner.run()
        assert not outcomes[0].succeeded
        assert outcomes[0].failure_reason
        with pytest.raises(ReproError):
            ExperimentRunner.aggregate(outcomes)

    def test_validation(self):
        with pytest.raises(ReproError):
            self.make_runner(trials=0)
        with pytest.raises(ReproError):
            self.make_runner(trial_duration_s=0.0)
        with pytest.raises(ReproError):
            self.make_runner(rate_range_bpm=(5.0, 4.0))

    def test_multi_user_outcomes(self):
        def factory(trial, rate):
            return Scenario([
                Subject(user_id=1, distance_m=2.0, lateral_offset_m=-0.5,
                        breathing=MetronomeBreathing(rate), sway_seed=trial),
                Subject(user_id=2, distance_m=2.0, lateral_offset_m=0.5,
                        breathing=MetronomeBreathing(rate + 3), sway_seed=trial + 50),
            ])
        runner = ExperimentRunner(scenario_factory=factory, trials=1,
                                  trial_duration_s=30.0, seed=0,
                                  rate_range_bpm=(8.0, 12.0))
        outcomes = runner.run()
        assert {o.user_id for o in outcomes} == {1, 2}
