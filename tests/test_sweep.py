"""The parallel scenario-sweep runner: ordering and seed guarantees."""

from __future__ import annotations

import pytest

from repro import obs, perf
from repro.config import ReaderConfig
from repro.errors import ScenarioError
from repro.sim import Scenario, run_scenarios
from repro.sim.sweep import _run_one


def _scenarios(n: int = 3):
    return [Scenario.single_user(2.0 + i, sway_seed=i) for i in range(n)]


class TestOrdering:
    def test_results_in_input_order(self):
        scenarios = _scenarios()
        results = run_scenarios(scenarios, duration_s=3.0)
        assert len(results) == len(scenarios)
        for scenario, result in zip(scenarios, results):
            # Each result carries the scenario it ran — input order holds
            # regardless of which worker finished first.
            assert result.scenario.subjects[0].distance_m == \
                scenario.subjects[0].distance_m

    def test_empty_sweep(self):
        assert run_scenarios([]) == []


class TestSeeding:
    def test_parallel_matches_serial(self):
        scenarios = _scenarios()
        parallel = run_scenarios(scenarios, duration_s=3.0, base_seed=7)
        serial = run_scenarios(scenarios, duration_s=3.0, base_seed=7,
                               parallel=False)
        for a, b in zip(parallel, serial):
            assert a.reports == b.reports

    def test_explicit_seeds_reproduce_slice(self):
        scenarios = _scenarios(2)
        full = run_scenarios(scenarios, duration_s=3.0, base_seed=20,
                             parallel=False)
        # Re-running just the second trial with its explicit seed gives
        # the same capture: trials are scheduling-independent.
        redo = run_scenarios([scenarios[1]], duration_s=3.0, seeds=[21],
                             parallel=False)
        assert redo[0].reports == full[1].reports

    def test_seed_count_mismatch_raises(self):
        with pytest.raises(ScenarioError):
            run_scenarios(_scenarios(2), seeds=[1])


class TestKwargsForwarding:
    def test_reader_config_forwarded(self):
        scenarios = _scenarios(2)
        vec = run_scenarios(scenarios, duration_s=3.0, parallel=False,
                            reader_config=ReaderConfig(vectorized=True))
        scal = run_scenarios(scenarios, duration_s=3.0, parallel=False,
                             reader_config=ReaderConfig(vectorized=False))
        # Both paths see the same MAC stream: same report skeletons.
        for a, b in zip(vec, scal):
            assert [r.timestamp_s for r in a.reports] == \
                [r.timestamp_s for r in b.reports]


class TestWorkerFunction:
    def test_run_one_is_picklable_module_level(self):
        import pickle

        assert pickle.loads(pickle.dumps(_run_one)) is _run_one

    def test_run_one_returns_index(self):
        job = (4, _scenarios(1)[0], 2.0, 11, {}, {})
        index, result, telemetry = _run_one(job)
        assert index == 4
        assert result.duration_s == 2.0
        assert set(telemetry) == {"events", "metrics"}


class TestTelemetryRoundTrip:
    """Regression: worker perf/trace data must reach the parent session.

    Before the observability layer, ``run_scenarios`` discarded
    everything the worker processes recorded — sweep perf stages and
    counters silently vanished whenever the pool was used.
    """

    def test_worker_perf_counters_merged_into_parent(self):
        with obs.capture():
            perf.reset()
            run_scenarios(_scenarios(2), duration_s=3.0, parallel=True)
            counters = perf.get_recorder().counters
            stage_s = perf.get_recorder().stage_s
        # Reads were synthesized inside workers, yet the parent sees them.
        assert counters.get("reader.reads_synthesized", 0) > 0
        assert counters["sweep.trials"] == 2
        assert stage_s.get("reader.mac", 0.0) > 0.0

    def test_parallel_and_serial_merge_same_counters(self):
        with obs.capture():
            par = run_scenarios(_scenarios(2), duration_s=3.0,
                                base_seed=3, parallel=True)
            par_counters = perf.get_recorder().counters
        with obs.capture():
            ser = run_scenarios(_scenarios(2), duration_s=3.0,
                                base_seed=3, parallel=False)
            ser_counters = perf.get_recorder().counters
        assert par[0].reports == ser[0].reports
        assert par_counters == ser_counters

    def test_worker_trace_events_absorbed_with_trial_attr(self):
        with obs.capture() as (tracer, _registry):
            run_scenarios(_scenarios(2), duration_s=3.0, parallel=True)
            events = list(tracer.events)
        scenario_starts = [e for e in events
                          if e.get("name") == "scenario"
                          and e["event"] == "span_start"]
        assert sorted(e["attrs"]["trial"] for e in scenario_starts) == [0, 1]
        # Worker spans are re-parented under the sweep span, and IDs stay
        # unique after the offset re-basing.
        ids = [e["span"] for e in events if e["event"] == "span_start"]
        assert len(ids) == len(set(ids))
