"""Property-based tests (hypothesis): invariants the example-based suites
only spot-check.

Covered substrate:

* :mod:`repro.units` — conversion round-trips and phase-wrap ranges;
* :mod:`repro.epc.codec` — EPC96 encode/decode round-trips;
* :mod:`repro.streams` — ring/stream buffer ordering invariants, bin_sum
  sample conservation, resample grid monotonicity.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.epc.codec import EPC96, decode_user_tag, encode_user_tag
from repro.streams.resample import bin_sum, resample_linear
from repro.streams.ringbuffer import RingBuffer, StreamBuffer
from repro.streams.timeseries import TimeSeries

#: Finite, sanely-sized floats — the library works in SI units where
#: astronomically large magnitudes only exercise float artifacts.
finite = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)


# ----------------------------------------------------------------------
# repro.units
# ----------------------------------------------------------------------
class TestUnitsProperties:
    @given(st.floats(min_value=-200.0, max_value=200.0))
    def test_db_linear_round_trip(self, db):
        assert units.linear_to_db(units.db_to_linear(db)) == \
            pytest.approx(db, abs=1e-9)

    @given(st.floats(min_value=-100.0, max_value=60.0))
    def test_dbm_watts_round_trip(self, dbm):
        assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == \
            pytest.approx(dbm, abs=1e-9)

    @given(st.floats(min_value=0.0, max_value=1e4))
    def test_hz_bpm_round_trip(self, hz):
        assert units.bpm_to_hz(units.hz_to_bpm(hz)) == \
            pytest.approx(hz, rel=1e-12, abs=1e-12)

    @given(finite)
    def test_deg_rad_round_trip(self, deg):
        assert units.rad_to_deg(units.deg_to_rad(deg)) == \
            pytest.approx(deg, rel=1e-9, abs=1e-6)

    @given(finite)
    def test_wrap_phase_range(self, theta):
        wrapped = units.wrap_phase(theta)
        assert 0.0 <= wrapped < units.TWO_PI

    @given(finite)
    def test_wrap_phase_delta_range(self, delta):
        wrapped = units.wrap_phase_delta(delta)
        assert -math.pi <= wrapped < math.pi

    @given(st.floats(min_value=-3.14, max_value=3.14))
    def test_wrap_phase_delta_identity_inside_range(self, delta):
        # A delta already inside (-pi, pi) passes through unchanged (the
        # exact +/- pi boundary is a float-rounding coin flip, so stay off
        # it; the range test above still covers the edges).
        assert units.wrap_phase_delta(delta) == pytest.approx(delta, abs=1e-9)

    @given(st.lists(finite, min_size=1, max_size=32))
    def test_wrap_phase_array_matches_scalar(self, thetas):
        array = units.wrap_phase(np.array(thetas))
        scalars = [units.wrap_phase(t) for t in thetas]
        np.testing.assert_allclose(array, scalars, rtol=0, atol=0)


# ----------------------------------------------------------------------
# repro.epc.codec
# ----------------------------------------------------------------------
class TestEPCProperties:
    user_ids = st.integers(min_value=0, max_value=(1 << 64) - 1)
    tag_ids = st.integers(min_value=0, max_value=(1 << 32) - 1)

    @given(user_ids, tag_ids)
    def test_encode_decode_round_trip(self, user_id, tag_id):
        assert decode_user_tag(encode_user_tag(user_id, tag_id)) == \
            (user_id, tag_id)

    @given(user_ids, tag_ids)
    def test_epc96_hex_round_trip(self, user_id, tag_id):
        epc = EPC96.from_user_tag(user_id, tag_id)
        again = EPC96.from_hex(epc.to_hex())
        assert again == epc
        assert again.split() == (user_id, tag_id)

    @given(st.integers(min_value=0, max_value=(1 << 96) - 1))
    def test_hex_is_24_chars_for_any_value(self, value):
        assert len(EPC96(value).to_hex()) == 24


# ----------------------------------------------------------------------
# repro.streams
# ----------------------------------------------------------------------
#: Strictly increasing time lists with arbitrary values attached.
def _sample_lists(min_size=1, max_size=40):
    return st.lists(
        st.tuples(st.floats(min_value=0.001, max_value=10.0,
                            allow_nan=False),
                  st.floats(min_value=-100.0, max_value=100.0,
                            allow_nan=False)),
        min_size=min_size, max_size=max_size,
    ).map(lambda gaps: [
        (sum(g for g, _ in gaps[:i + 1]), v)
        for i, (_, v) in enumerate(gaps)
    ])


class TestRingBufferProperties:
    @given(_sample_lists(), st.integers(min_value=1, max_value=16))
    def test_keeps_newest_capacity_samples_in_order(self, samples, capacity):
        buf = RingBuffer(capacity)
        for t, v in samples:
            buf.append(t, v)
        snap = buf.snapshot()
        expected = samples[-capacity:]
        assert len(buf) == len(expected)
        assert list(snap.times) == pytest.approx([t for t, _ in expected])
        assert list(snap.values) == pytest.approx([v for _, v in expected])
        assert np.all(np.diff(snap.times) > 0)

    @given(_sample_lists(min_size=2))
    def test_offer_drops_exactly_the_non_increasing(self, samples):
        buf = RingBuffer(len(samples) * 2)
        # Feed each sample twice: the replay must all be dropped.
        accepted = sum(buf.offer(t, v) for t, v in samples)
        replayed = sum(buf.offer(t, v) for t, v in samples[:-1])
        assert accepted == len(samples)
        assert replayed == 0
        assert buf.dropped == len(samples) - 1

    @given(_sample_lists())
    def test_stream_buffer_trim_keeps_suffix(self, samples):
        buf = StreamBuffer()
        for t, v in samples:
            buf.append(t, v)
        t_cut = samples[len(samples) // 2][0]
        dropped = buf.trim_before(t_cut)
        kept = [s for s in samples if s[0] >= t_cut]
        assert dropped == len(samples) - len(kept)
        assert list(buf.snapshot().times) == pytest.approx(
            [t for t, _ in kept])


class TestResampleProperties:
    @settings(max_examples=60)
    @given(_sample_lists(min_size=2),
           st.floats(min_value=0.05, max_value=2.0))
    def test_bin_sum_conserves_total(self, samples, bin_s):
        series = TimeSeries([t for t, _ in samples], [v for _, v in samples])
        binned = bin_sum(series, bin_s)
        # Eq. 6 is a partition of the samples into bins: nothing is lost.
        assert float(np.sum(binned.values)) == \
            pytest.approx(float(np.sum(series.values)), abs=1e-6)
        assert np.all(np.diff(binned.times) > 0)

    @settings(max_examples=60)
    @given(_sample_lists(min_size=2),
           st.floats(min_value=0.5, max_value=64.0))
    def test_resample_linear_grid_regular_and_bounded(self, samples, rate_hz):
        series = TimeSeries([t for t, _ in samples], [v for _, v in samples])
        resampled = resample_linear(series, rate_hz)
        times = np.asarray(resampled.times)
        assert times[0] == pytest.approx(series.start)
        assert times[-1] <= series.end + 1e-9
        if len(times) > 1:
            np.testing.assert_allclose(np.diff(times), 1.0 / rate_hz,
                                       rtol=1e-9)
        # Interpolation cannot overshoot the sample range.
        assert np.min(resampled.values) >= min(series.values) - 1e-9
        assert np.max(resampled.values) <= max(series.values) + 1e-9


# ----------------------------------------------------------------------
# repro.core incremental streaming (DESIGN.md §12)
# ----------------------------------------------------------------------
def _report_streams(draw):
    """A messy multi-stream report sequence: several tags and channels,
    shuffled delivery, occasional exact-duplicate timestamps."""
    from repro.reader.tagreport import TagReport

    n_tags = draw(st.integers(min_value=1, max_value=2))
    n = draw(st.integers(min_value=10, max_value=60))
    reports = []
    for tag in range(n_tags):
        t = draw(st.floats(min_value=0.0, max_value=1.0))
        for i in range(n):
            dt = draw(st.sampled_from([0.0, 0.03, 0.05, 0.4, 6.0]))
            t += dt  # dt == 0.0 fabricates an exact duplicate
            reports.append(TagReport(
                epc=EPC96.from_user_tag(1, tag),
                timestamp_s=t,
                phase_rad=draw(st.floats(min_value=0.0, max_value=6.28)),
                rssi_dbm=-60.0, doppler_hz=0.0,
                channel_index=draw(st.integers(min_value=0, max_value=3)),
                antenna_port=1))
    shuffled = draw(st.permutations(reports))
    return shuffled


_report_streams = st.composite(_report_streams)


class TestIncrementalStreamingProperties:
    @staticmethod
    def _tick_pair(engine, window_s=None):
        """(kind, payload) of estimate_user vs estimate_user_recompute."""
        from repro.errors import InsufficientDataError
        import warnings as _warnings

        from repro.errors import DegradedEstimateWarning

        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", DegradedEstimateWarning)
            try:
                inc = engine.estimate_user(1, window_s=window_s)
            except InsufficientDataError as exc:
                inc = ("err", str(exc))
            try:
                rec = engine.estimate_user_recompute(1, window_s=window_s)
            except InsufficientDataError as exc:
                rec = ("err", str(exc))
        return inc, rec

    @settings(max_examples=30, deadline=None)
    @given(_report_streams())
    def test_incremental_tick_equals_recompute(self, reports):
        """Whatever mess arrives — shuffled, duplicated, multi-channel —
        the incremental tick and the from-scratch recompute agree
        bit-for-bit (identical estimate or identical refusal)."""
        from repro import TagBreathe

        engine = TagBreathe(user_ids={1})
        engine.feed_many(reports)
        inc, rec = self._tick_pair(engine)
        if isinstance(inc, tuple):
            assert inc == rec
        else:
            assert inc.rate_bpm == rec.rate_bpm
            assert inc.confidence == rec.confidence
            assert sorted(inc.degraded_reasons) == \
                sorted(rec.degraded_reasons)

    @settings(max_examples=20, deadline=None)
    @given(_report_streams())
    def test_checkpoint_restore_equals_uninterrupted(self, reports):
        """Snapshot + restore mid-stream converges on the uninterrupted
        session: identical estimates and identical drop accounting."""
        from repro import TagBreathe

        split = len(reports) // 2
        uninterrupted = TagBreathe(user_ids={1})
        uninterrupted.feed_many(reports)

        first_half = TagBreathe(user_ids={1})
        first_half.feed_many(reports[:split])
        resumed = TagBreathe(user_ids={1})
        resumed.restore_streaming(first_half.buffered_reports(),
                                  first_half.feed_drop_counts)
        resumed.feed_many(reports[split:])

        # The restored buffer was already deduplicated, so the replay
        # itself must not have dropped anything.
        assert sum(resumed.last_restore_drop_counts.values()) == 0
        assert resumed.feed_drop_counts == uninterrupted.feed_drop_counts
        a, _ = self._tick_pair(uninterrupted)
        b, _ = self._tick_pair(resumed)
        if isinstance(a, tuple) or isinstance(b, tuple):
            assert a == b
        else:
            assert a.rate_bpm == b.rate_bpm
            assert a.confidence == b.confidence
