"""Tests for the respiratory-health analytics layer."""

import numpy as np
import pytest

from repro import BreathExtractor, Scenario, TagBreathe, run_scenario
from repro.body import AsymmetricBreathing, IrregularBreathing, Subject
from repro.errors import InsufficientDataError, ReproError
from repro.metrics import (
    analyze_breathing,
    detect_apneas,
    detect_breath_cycles,
)
from repro.metrics.respiratory import Apnea
from repro.streams import TimeSeries


def clean_estimate(bpm=12.0, duration=60.0, inhale_fraction=0.4):
    """A BreathingEstimate from a synthetic asymmetric waveform."""
    waveform = AsymmetricBreathing(bpm, amplitude_m=0.005,
                                   inhale_fraction=inhale_fraction)
    t = np.arange(0.0, duration, 0.05)
    track = TimeSeries(t, waveform.displacement_array(t)
                       if hasattr(waveform, "displacement_array")
                       else np.array([waveform.displacement(x) for x in t]))
    values = np.array([waveform.displacement(float(x)) for x in t])
    track = TimeSeries(t, values)
    return BreathExtractor().estimate(track)


class TestCycleDetection:
    def test_counts_breaths(self):
        estimate = clean_estimate(bpm=12.0, duration=60.0)
        cycles = detect_breath_cycles(estimate.signal, estimate.crossings)
        # 12 bpm over 60 s -> ~12 breaths; boundary effects trim a couple.
        assert 9 <= len(cycles) <= 12

    def test_cycle_durations(self):
        estimate = clean_estimate(bpm=12.0)
        cycles = detect_breath_cycles(estimate.signal, estimate.crossings)
        durations = [c.duration_s for c in cycles]
        assert np.median(durations) == pytest.approx(5.0, abs=0.3)

    def test_inhale_shorter_than_exhale(self):
        """The asymmetric waveform's 0.4 inhale fraction must survive the
        whole extraction chain into the cycle decomposition."""
        estimate = clean_estimate(bpm=10.0, inhale_fraction=0.4)
        cycles = detect_breath_cycles(estimate.signal, estimate.crossings)
        ratios = [c.ie_ratio for c in cycles]
        assert np.median(ratios) < 1.0

    def test_ordering_invariants(self):
        estimate = clean_estimate()
        for cycle in detect_breath_cycles(estimate.signal, estimate.crossings):
            assert cycle.start_s < cycle.peak_s < cycle.end_s
            assert cycle.depth > 0

    def test_empty_signal(self):
        assert detect_breath_cycles(TimeSeries.empty(), []) == []
        with pytest.raises(ReproError):
            detect_breath_cycles(TimeSeries.empty(), [1.0])


class TestApneaDetection:
    def test_no_apnea_in_steady_breathing(self):
        estimate = clean_estimate()
        cycles = detect_breath_cycles(estimate.signal, estimate.crossings)
        assert detect_apneas(cycles, estimate.signal, min_pause_s=6.0) == []

    def test_synthetic_pause_detected(self):
        # Breathing, then a 10-second hold, then breathing again.
        t = np.arange(0.0, 60.0, 0.05)
        values = np.where(
            (t > 25.0) & (t < 35.0), 0.0,
            0.005 * np.maximum(0.0, np.sin(2 * np.pi * 0.2 * t)),
        )
        estimate = BreathExtractor().estimate(TimeSeries(t, values))
        cycles = detect_breath_cycles(estimate.signal, estimate.crossings)
        apneas = detect_apneas(cycles, estimate.signal, min_pause_s=6.0)
        assert apneas, "the 10 s hold must be detected"
        longest = max(apneas, key=lambda a: a.duration_s)
        assert 24.0 < (longest.start_s + longest.end_s) / 2 < 36.0

    def test_threshold_validation(self):
        with pytest.raises(ReproError):
            detect_apneas([], TimeSeries.empty(), min_pause_s=0.0)

    def test_apnea_duration(self):
        apnea = Apnea(start_s=10.0, end_s=18.0)
        assert apnea.duration_s == pytest.approx(8.0)


class TestFullReport:
    def test_report_fields(self):
        estimate = clean_estimate(bpm=15.0)
        report = analyze_breathing(estimate)
        assert report.mean_rate_bpm == pytest.approx(15.0, abs=1.0)
        assert report.rate_variability_bpm < 1.5
        assert 0.0 <= report.shallow_fraction <= 1.0
        assert report.apneas == ()
        assert "breaths" in str(report)

    def test_irregular_breathing_has_higher_variability(self):
        t = np.arange(0.0, 120.0, 0.05)
        steady_wf = AsymmetricBreathing(12.0, amplitude_m=0.005)
        irregular_wf = IrregularBreathing(12.0, amplitude_m=0.005,
                                          rate_jitter=0.25, seed=4)
        steady = BreathExtractor().estimate(TimeSeries(
            t, np.array([steady_wf.displacement(float(x)) for x in t])))
        irregular = BreathExtractor().estimate(TimeSeries(
            t, np.array([irregular_wf.displacement(float(x)) for x in t])))
        r_steady = analyze_breathing(steady)
        r_irregular = analyze_breathing(irregular)
        assert r_irregular.rate_variability_bpm > r_steady.rate_variability_bpm

    def test_too_few_breaths_rejected(self):
        t = np.arange(0.0, 12.0, 0.05)
        values = 0.005 * np.sin(2 * np.pi * (5.0 / 60.0) * t)  # one breath
        with pytest.raises(InsufficientDataError):
            estimate = BreathExtractor().estimate(TimeSeries(t, values))
            analyze_breathing(estimate)

    def test_end_to_end_from_rfid_capture(self):
        """Full stack: simulated RFID capture -> pipeline -> health report."""
        scenario = Scenario([Subject(
            user_id=1, distance_m=2.0,
            breathing=AsymmetricBreathing(12.0), sway_seed=2,
        )])
        result = run_scenario(scenario, duration_s=60.0, seed=23)
        user = TagBreathe(user_ids={1}).process(result.reports)[1]
        report = analyze_breathing(user.estimate)
        assert report.mean_rate_bpm == pytest.approx(12.0, abs=1.5)
        assert len(report.cycles) >= 8
