"""Tests for the reader model: reports, hopping, antennas, LLRP facade."""

import math

import numpy as np
import pytest

from repro.epc import EPC96
from repro.errors import AntennaError, ConfigError, ReaderError
from repro.config import ReaderConfig
from repro.reader import (
    Antenna,
    HopSchedule,
    LLRPClient,
    Reader,
    ROSpec,
    RoundRobinScheduler,
    TagReport,
)
from repro.rf import ChannelPlan
from repro.sim import Scenario
from repro.body import Subject
from repro.units import TWO_PI


def make_report(**overrides):
    defaults = dict(
        epc=EPC96.from_user_tag(1, 1),
        timestamp_s=1.0,
        phase_rad=1.0,
        rssi_dbm=-55.0,
        doppler_hz=0.1,
        channel_index=3,
        antenna_port=1,
    )
    defaults.update(overrides)
    return TagReport(**defaults)


class TestTagReport:
    def test_fields(self):
        report = make_report()
        assert report.user_id == 1
        assert report.tag_id == 1
        assert report.stream_key == (1, 1)

    def test_rejects_out_of_range_phase(self):
        with pytest.raises(ReaderError):
            make_report(phase_rad=7.0)
        with pytest.raises(ReaderError):
            make_report(phase_rad=-0.1)

    def test_rejects_bad_channel(self):
        with pytest.raises(ReaderError):
            make_report(channel_index=-1)

    def test_rejects_zero_port(self):
        with pytest.raises(ReaderError):
            make_report(antenna_port=0)

    def test_frozen(self):
        report = make_report()
        with pytest.raises(AttributeError):
            report.phase_rad = 0.5


class TestHopSchedule:
    def make(self, dwell=0.2, seed=0):
        plan = ChannelPlan.default(10, rng=np.random.default_rng(seed))
        return HopSchedule(plan, dwell_s=dwell, rng=np.random.default_rng(seed))

    def test_constant_within_dwell(self):
        hops = self.make()
        assert hops.channel_index_at(0.05) == hops.channel_index_at(0.15)

    def test_dwell_residency(self):
        """Fig. 5: the reader resides ~0.2 s per channel."""
        hops = self.make()
        changes = 0
        prev = hops.channel_index_at(0.0)
        for k in range(1, 50):
            cur = hops.channel_index_at(k * 0.2 + 0.01)
            if cur != prev:
                changes += 1
            prev = cur
        assert changes >= 45  # nearly every dwell boundary hops

    def test_each_sweep_visits_every_channel(self):
        hops = self.make()
        seen = {hops.channel_index_at(k * 0.2 + 0.1) for k in range(10)}
        assert seen == set(range(10))

    def test_no_immediate_repeat(self):
        hops = self.make(seed=3)
        prev = hops.channel_index_at(0.1)
        for k in range(1, 200):
            cur = hops.channel_index_at(k * 0.2 + 0.1)
            assert cur != prev
            prev = cur

    def test_deterministic_given_seed(self):
        a = self.make(seed=5)
        b = self.make(seed=5)
        for k in range(50):
            assert a.channel_index_at(k * 0.2) == b.channel_index_at(k * 0.2)

    def test_hop_boundaries(self):
        hops = self.make()
        bounds = hops.hop_boundaries(0.0, 1.0)
        assert bounds == pytest.approx([0.2, 0.4, 0.6, 0.8])

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            self.make().channel_index_at(-1.0)

    def test_bad_dwell_rejected(self):
        plan = ChannelPlan.default(10)
        with pytest.raises(ConfigError):
            HopSchedule(plan, dwell_s=0.0)


class TestAntenna:
    def test_boresight_gain_is_peak(self):
        antenna = Antenna(port=1, position_m=(0, 0, 1), boresight=(1, 0, 0))
        assert antenna.gain_dbi_toward((5, 0, 1)) == pytest.approx(8.5)

    def test_gain_falls_off_axis(self):
        antenna = Antenna(port=1, position_m=(0, 0, 1), boresight=(1, 0, 0))
        on_axis = antenna.gain_dbi_toward((5, 0, 1))
        off_axis = antenna.gain_dbi_toward((5, 3, 1))
        assert off_axis < on_axis

    def test_half_beamwidth_is_3db(self):
        antenna = Antenna(port=1, position_m=(0, 0, 0), boresight=(1, 0, 0),
                          beamwidth_deg=70.0)
        angle = math.radians(35.0)
        gain = antenna.gain_dbi_toward((math.cos(angle), math.sin(angle), 0))
        assert gain == pytest.approx(antenna.peak_gain_dbi - 3.0, abs=0.1)

    def test_back_lobe(self):
        antenna = Antenna(port=1, position_m=(0, 0, 0), boresight=(1, 0, 0))
        assert antenna.gain_dbi_toward((-5, 0, 0)) == pytest.approx(
            antenna.peak_gain_dbi - 20.0
        )

    def test_distance(self):
        antenna = Antenna(port=1, position_m=(0, 0, 1))
        assert antenna.distance_to((3, 4, 1)) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(AntennaError):
            Antenna(port=0)
        with pytest.raises(AntennaError):
            Antenna(port=1, boresight=(0, 0, 0))
        with pytest.raises(AntennaError):
            Antenna(port=1, beamwidth_deg=0.0)


class TestRoundRobin:
    def make(self, n=3, period=0.2):
        antennas = [Antenna(port=i + 1) for i in range(n)]
        return RoundRobinScheduler(antennas, switch_period_s=period)

    def test_cycles_through_all(self):
        sched = self.make(3)
        ports = [sched.active_at(t).port for t in (0.1, 0.3, 0.5, 0.7)]
        assert ports == [1, 2, 3, 1]

    def test_one_active_at_a_time(self):
        # By construction active_at returns exactly one antenna; check the
        # duty cycle accounting matches (paper: power does not grow with
        # antenna count).
        sched = self.make(4)
        assert sched.duty_cycle() == pytest.approx(0.25)

    def test_by_port(self):
        sched = self.make(2)
        assert sched.by_port(2).port == 2
        with pytest.raises(AntennaError):
            sched.by_port(9)

    def test_validation(self):
        with pytest.raises(AntennaError):
            RoundRobinScheduler([])
        with pytest.raises(AntennaError):
            RoundRobinScheduler([Antenna(port=1), Antenna(port=1)])
        with pytest.raises(AntennaError):
            RoundRobinScheduler([Antenna(port=1)], switch_period_s=0.0)
        sched = self.make()
        with pytest.raises(AntennaError):
            sched.active_at(-0.1)


class TestReader:
    def run_default(self, duration=5.0, seed=0, **reader_kwargs):
        scenario = Scenario.single_user(distance_m=2.0, sway_seed=seed)
        reader = Reader(rng=np.random.default_rng(seed), **reader_kwargs)
        return reader.run(scenario, duration), scenario

    def test_reports_sorted_and_in_range(self):
        reports, _ = self.run_default()
        assert reports
        times = [r.timestamp_s for r in reports]
        assert times == sorted(times)
        assert all(0.0 <= t < 5.0 + 0.1 for t in times)

    def test_reports_carry_low_level_fields(self):
        reports, _ = self.run_default()
        for report in reports[:50]:
            assert 0.0 <= report.phase_rad < TWO_PI
            assert -90.0 < report.rssi_dbm < -20.0
            assert 0 <= report.channel_index < 10
            assert report.antenna_port == 1

    def test_rssi_quantized(self):
        reports, _ = self.run_default()
        for report in reports[:50]:
            assert (report.rssi_dbm / 0.5) == pytest.approx(
                round(report.rssi_dbm / 0.5), abs=1e-9
            )

    def test_all_three_tags_read(self):
        reports, scenario = self.run_default()
        seen = {r.stream_key for r in reports}
        assert seen == {t.key for t in scenario.subjects[0].tags}

    def test_phase_jumps_at_hops(self):
        """Fig. 4: raw phase is discontinuous at channel boundaries."""
        reports, _ = self.run_default(duration=8.0)
        one_tag = [r for r in reports if r.stream_key == (1, 1)]
        jumps, smalls = [], []
        for prev, cur in zip(one_tag, one_tag[1:]):
            delta = abs(cur.phase_rad - prev.phase_rad)
            delta = min(delta, TWO_PI - delta)
            if prev.channel_index == cur.channel_index:
                smalls.append(delta)
            else:
                jumps.append(delta)
        # Same-channel consecutive readings move little; cross-channel
        # readings jump arbitrarily.
        assert np.median(smalls) < 0.3
        assert np.median(jumps) > np.median(smalls)

    def test_deterministic_with_seed(self):
        r1, _ = self.run_default(seed=42)
        r2, _ = self.run_default(seed=42)
        assert len(r1) == len(r2)
        assert all(a.phase_rad == b.phase_rad for a, b in zip(r1[:20], r2[:20]))

    def test_antenna_count_mismatch_rejected(self):
        config = ReaderConfig(num_antennas=2)
        with pytest.raises(ReaderError):
            Reader(config=config, antennas=[Antenna(port=1)])

    def test_empty_environment_rejected(self):
        class Empty:
            def tag_keys(self):
                return []
        with pytest.raises(ReaderError):
            Reader().run(Empty(), 1.0)

    def test_bad_duration_rejected(self):
        scenario = Scenario.single_user()
        with pytest.raises(ReaderError):
            Reader().run(scenario, 0.0)

    def test_blocked_user_yields_no_reports(self):
        scenario = Scenario([Subject(user_id=1, distance_m=4.0,
                                     orientation_deg=150.0)])
        reader = Reader(rng=np.random.default_rng(0))
        reports = reader.run(scenario, 3.0)
        assert reports == []

    def test_multi_antenna_round_robin_ports(self):
        config = ReaderConfig(num_antennas=2)
        antennas = [
            Antenna(port=1, position_m=(0, 0, 1), boresight=(1, 0, 0)),
            Antenna(port=2, position_m=(0, 1, 1), boresight=(1, 0, 0)),
        ]
        scenario = Scenario.single_user(distance_m=2.0)
        reader = Reader(config=config, antennas=antennas,
                        rng=np.random.default_rng(0))
        reports = reader.run(scenario, 4.0)
        ports = {r.antenna_port for r in reports}
        assert ports == {1, 2}


class TestLLRPClient:
    def make_client(self):
        scenario = Scenario.single_user(distance_m=2.0)
        reader = Reader(rng=np.random.default_rng(0))
        return LLRPClient(reader, scenario)

    def test_full_lifecycle(self):
        client = self.make_client()
        client.connect()
        client.add_rospec(ROSpec(duration_s=2.0))
        received = []
        client.subscribe(received.append)
        reports = client.start()
        assert len(received) == len(reports) > 0

    def test_requires_connect(self):
        client = self.make_client()
        with pytest.raises(ReaderError):
            client.add_rospec(ROSpec(duration_s=1.0))

    def test_requires_rospec(self):
        client = self.make_client()
        client.connect()
        with pytest.raises(ReaderError):
            client.start()

    def test_disconnect_clears_rospec(self):
        client = self.make_client()
        client.connect()
        client.add_rospec(ROSpec(duration_s=1.0))
        client.disconnect()
        client.connect()
        with pytest.raises(ReaderError):
            client.start()

    def test_batched_delivery(self):
        client = self.make_client()
        client.connect()
        client.add_rospec(ROSpec(duration_s=2.0, report_every_n=16))
        received = []
        client.subscribe(received.append)
        reports = client.start()
        assert len(received) == len(reports)

    def test_rospec_validation(self):
        with pytest.raises(ReaderError):
            ROSpec(duration_s=0.0)
        with pytest.raises(ReaderError):
            ROSpec(duration_s=1.0, report_every_n=0)
