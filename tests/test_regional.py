"""Tests for regional regulations and pipeline operation under each."""

import numpy as np
import pytest

from repro import Scenario, TagBreathe, breathing_rate_accuracy
from repro.body import MetronomeBreathing, Subject
from repro.config import ReaderConfig
from repro.errors import ConfigError
from repro.rf import REGULATIONS, RegionalRegulation, regulation
from repro.rf.regional import ETSI, FCC, HONG_KONG, JAPAN


class TestRegulationCatalog:
    def test_all_regions_present(self):
        assert set(REGULATIONS) == {"FCC", "ETSI", "Japan", "China", "Hong Kong"}

    def test_lookup_case_insensitive(self):
        assert regulation("fcc") is FCC
        assert regulation("Etsi") is ETSI

    def test_unknown_region(self):
        with pytest.raises(ConfigError):
            regulation("Atlantis")

    def test_channels_inside_bands(self):
        for reg in REGULATIONS.values():
            low, high = reg.band_hz
            for freq in reg.channel_frequencies_hz:
                assert low <= freq <= high

    def test_fcc_matches_paper(self):
        """The paper's regime: 902-928 MHz, hopping required."""
        assert FCC.band_hz == (902e6, 928e6)
        assert FCC.num_channels == 50
        assert FCC.hopping_required
        assert FCC.max_dwell_s == pytest.approx(0.4)

    def test_etsi_four_channels_no_hopping(self):
        assert ETSI.num_channels == 4
        assert not ETSI.hopping_required

    def test_hong_kong_band(self):
        """Where the paper's experiments actually ran."""
        assert HONG_KONG.band_hz == (920e6, 925e6)
        assert HONG_KONG.hopping_required

    def test_effective_dwell_respects_limit(self):
        assert FCC.effective_dwell_s(default_s=0.5) == pytest.approx(0.4)
        assert ETSI.effective_dwell_s(default_s=0.5) == pytest.approx(0.5)

    def test_channel_plan_construction(self):
        plan = JAPAN.channel_plan(rng=np.random.default_rng(0))
        assert len(plan) == 6

    def test_validation(self):
        with pytest.raises(ConfigError):
            RegionalRegulation(
                name="bad", band_hz=(900e6, 910e6),
                channel_frequencies_hz=(950e6,),  # outside band
                hopping_required=True, max_dwell_s=None, max_eirp_dbm=30.0,
            )
        with pytest.raises(ConfigError):
            RegionalRegulation(
                name="empty", band_hz=(900e6, 910e6),
                channel_frequencies_hz=(),
                hopping_required=True, max_dwell_s=None, max_eirp_dbm=30.0,
            )


class TestPipelineUnderRegulations:
    @pytest.mark.parametrize("region", ["ETSI", "China", "Hong Kong"])
    def test_breathing_monitored_in_any_region(self, region):
        """TagBreathe is channel-plan agnostic: the preprocessing groups
        by channel index, so any regulatory plan works unchanged."""
        reg = regulation(region)
        rng = np.random.default_rng(5)
        plan = reg.channel_plan(rng=rng)
        config = ReaderConfig(
            num_channels=reg.num_channels,
            channel_dwell_s=reg.effective_dwell_s(0.2),
        )
        scenario = Scenario([Subject(user_id=1, distance_m=3.0,
                                     breathing=MetronomeBreathing(12.0),
                                     sway_seed=1)])
        from repro.reader import Reader
        reader = Reader(config=config, channel_plan=plan,
                        rng=np.random.default_rng(71))
        reports = reader.run(scenario, 45.0)
        frequencies = [ch.frequency_hz for ch in plan.channels]
        pipeline = TagBreathe(frequencies_hz=frequencies, user_ids={1})
        estimate = pipeline.process(reports)[1]
        assert breathing_rate_accuracy(estimate.rate_bpm, 12.0) > 0.9

    def test_channel_indices_bounded_by_plan(self):
        reg = regulation("ETSI")
        plan = reg.channel_plan(rng=np.random.default_rng(0))
        config = ReaderConfig(num_channels=4)
        scenario = Scenario([Subject(user_id=1, distance_m=2.0, sway_seed=0)])
        from repro.reader import Reader
        reader = Reader(config=config, channel_plan=plan,
                        rng=np.random.default_rng(3))
        reports = reader.run(scenario, 5.0)
        assert {r.channel_index for r in reports} <= {0, 1, 2, 3}
