"""Tests for per-channel phase-offset calibration."""

import numpy as np
import pytest

from repro import Scenario, run_scenario
from repro.core.calibration import ChannelCalibrator
from repro.core.preprocess import default_frequencies
from repro.epc import EPC96
from repro.errors import InsufficientDataError, ReproError
from repro.reader import TagReport
from repro.rf.phase import backscatter_phase
from repro.units import SPEED_OF_LIGHT, TWO_PI

FREQS = default_frequencies(10)


def reference_reports(distance, offsets, n_per_channel=8, noise=0.0, seed=0):
    """Noise-controlled reads of a static reference tag on every channel."""
    rng = np.random.default_rng(seed)
    reports = []
    t = 0.0
    for ch, offset in enumerate(offsets):
        lam = SPEED_OF_LIGHT / FREQS[ch]
        for _ in range(n_per_channel):
            t += 0.01
            phase = backscatter_phase(distance, lam, offset)
            phase = (phase + rng.normal(0, noise)) % TWO_PI
            reports.append(TagReport(
                epc=EPC96.from_user_tag(99, 1), timestamp_s=t,
                phase_rad=phase, rssi_dbm=-50.0, doppler_hz=0.0,
                channel_index=ch, antenna_port=1,
            ))
    return reports


class TestCalibrator:
    def test_recovers_known_offsets(self):
        offsets = np.linspace(0.3, 5.8, 10)
        calibrator = ChannelCalibrator(2.0, FREQS)
        calibrator.ingest_many(reference_reports(2.0, offsets))
        assert calibrator.is_complete()
        for ch, true_offset in enumerate(offsets):
            cal = calibrator.calibration(ch)
            assert cal.offset_rad == pytest.approx(true_offset % TWO_PI, abs=1e-9)
            assert cal.spread_rad == pytest.approx(0.0, abs=1e-6)

    def test_noise_reflected_in_spread(self):
        offsets = [1.0] * 10
        calibrator = ChannelCalibrator(2.0, FREQS)
        calibrator.ingest_many(
            reference_reports(2.0, offsets, n_per_channel=40, noise=0.1)
        )
        cal = calibrator.calibration(0)
        assert cal.offset_rad == pytest.approx(1.0, abs=0.1)
        assert 0.05 < cal.spread_rad < 0.2

    def test_wraparound_offsets(self):
        """Offsets near 0/2*pi must not average to pi (circular mean)."""
        offsets = [0.05] * 10
        calibrator = ChannelCalibrator(3.0, FREQS)
        calibrator.ingest_many(
            reference_reports(3.0, offsets, n_per_channel=40, noise=0.2, seed=4)
        )
        cal = calibrator.calibration(0)
        distance = min(cal.offset_rad, TWO_PI - cal.offset_rad - -0.05)
        assert (cal.offset_rad < 0.4) or (cal.offset_rad > TWO_PI - 0.4)

    def test_insufficient_reads_rejected(self):
        calibrator = ChannelCalibrator(2.0, FREQS, min_reads_per_channel=10)
        calibrator.ingest_many(reference_reports(2.0, [1.0] * 10, n_per_channel=3))
        with pytest.raises(InsufficientDataError):
            calibrator.calibration(0)
        assert calibrator.calibrated_channels() == []

    def test_unknown_channel_rejected(self):
        calibrator = ChannelCalibrator(2.0, FREQS[:2])
        report = reference_reports(2.0, [0.0] * 10)[-1]  # channel 9
        with pytest.raises(ReproError):
            calibrator.ingest(report)

    def test_validation(self):
        with pytest.raises(ReproError):
            ChannelCalibrator(0.0, FREQS)
        with pytest.raises(ReproError):
            ChannelCalibrator(2.0, [])
        with pytest.raises(ReproError):
            ChannelCalibrator(2.0, FREQS, min_reads_per_channel=0)


class TestPhaseCorrection:
    def test_corrected_phase_is_geometric(self):
        offsets = np.linspace(0.5, 6.0, 10)
        calibrator = ChannelCalibrator(2.0, FREQS)
        calibrator.ingest_many(reference_reports(2.0, offsets))
        # A different (target) tag at 3.1 m, no extra circuit offset.
        target = reference_reports(3.1, offsets, n_per_channel=1)
        for report in target:
            corrected = calibrator.correct_phase(report)
            lam = SPEED_OF_LIGHT / FREQS[report.channel_index]
            expected = (TWO_PI / lam * 2.0 * 3.1) % TWO_PI
            assert corrected == pytest.approx(expected, abs=1e-9)

    def test_distance_candidates_contain_truth(self):
        offsets = [2.2] * 10
        calibrator = ChannelCalibrator(2.0, FREQS)
        calibrator.ingest_many(reference_reports(2.0, offsets))
        target = reference_reports(4.4, offsets, n_per_channel=1)[0]
        candidates = calibrator.distance_candidates(target, max_distance_m=8.0)
        assert any(abs(c - 4.4) < 1e-6 for c in candidates)
        # Candidates are spaced by half wavelengths.
        gaps = np.diff(candidates)
        lam = SPEED_OF_LIGHT / FREQS[target.channel_index]
        assert np.allclose(gaps, lam / 2.0)

    def test_uncalibrated_channel_rejected(self):
        calibrator = ChannelCalibrator(2.0, FREQS)
        report = reference_reports(2.0, [0.0] * 10, n_per_channel=1)[0]
        with pytest.raises(InsufficientDataError):
            calibrator.correct_phase(report)

    def test_candidates_validation(self):
        offsets = [1.0] * 10
        calibrator = ChannelCalibrator(2.0, FREQS)
        calibrator.ingest_many(reference_reports(2.0, offsets))
        report = reference_reports(2.0, offsets, n_per_channel=1)[0]
        with pytest.raises(ReproError):
            calibrator.distance_candidates(report, max_distance_m=0.0)


class TestEndToEndCalibration:
    def test_reference_tag_in_simulation(self):
        """Calibrate from a simulated static item tag, then verify the
        calibration's internal consistency (spread near the phase-noise
        floor at close range)."""
        scenario = Scenario.single_user(distance_m=2.0).with_contending_tags(
            1, seed=0, area_m=(2.0, 2.0)
        )
        item = scenario.contending_tags[0]
        result = run_scenario(scenario, duration_s=30.0, seed=17)
        item_reports = [r for r in result.reports if r.epc == item.epc]
        assert len(item_reports) > 100
        distance = float(np.linalg.norm(
            np.asarray(item.position_m) - np.array([0.0, 0.0, 1.0])
        ))
        calibrator = ChannelCalibrator(distance, FREQS)
        calibrator.ingest_many(item_reports)
        for cal in calibrator.all_calibrations().values():
            assert cal.spread_rad < 0.3
