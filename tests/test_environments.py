"""Tests for RF environment presets (repro.sim.environments)."""

import numpy as np
import pytest

from repro import Scenario, TagBreathe, breathing_rate_accuracy, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.errors import ConfigError
from repro.sim import ENVIRONMENTS, Environment, environment
from repro.sim.environments import ANECHOIC, BEDROOM, OFFICE, WARD


class TestCatalog:
    def test_all_present(self):
        assert set(ENVIRONMENTS) == {"office", "anechoic", "ward", "bedroom"}

    def test_lookup(self):
        assert environment("Office") is OFFICE
        with pytest.raises(ConfigError):
            environment("space-station")

    def test_clutter_ordering(self):
        """Ward > office > bedroom > anechoic in moving clutter."""
        assert WARD.clutter_amplitude_rad > OFFICE.clutter_amplitude_rad
        assert OFFICE.clutter_amplitude_rad > BEDROOM.clutter_amplitude_rad
        assert BEDROOM.clutter_amplitude_rad > ANECHOIC.clutter_amplitude_rad

    def test_factories(self):
        budget = OFFICE.link_budget()
        assert budget.path_loss.exponent == pytest.approx(2.2)
        multipath = OFFICE.multipath(rng=np.random.default_rng(0))
        assert multipath.amplitude_rad(4.0) > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            Environment("bad", 0.0, 3.0, 0.01, 1.5, "x")
        with pytest.raises(ConfigError):
            Environment("bad", 2.0, -1.0, 0.01, 1.5, "x")


class TestEnvironmentEffects:
    @staticmethod
    def run_in(env, seed=0, distance=5.0):
        scenario = Scenario([Subject(user_id=1, distance_m=distance,
                                     breathing=MetronomeBreathing(12.0),
                                     sway_seed=seed)])
        result = run_scenario(
            scenario, duration_s=60.0, seed=seed,
            link_budget=env.link_budget(),
            multipath=env.multipath(rng=np.random.default_rng(seed)),
        )
        estimates = TagBreathe(user_ids={1}).process(result.reports)
        if 1 not in estimates:
            return 0.0
        return breathing_rate_accuracy(estimates[1].rate_bpm, 12.0)

    def test_anechoic_is_easiest(self):
        anechoic = np.mean([self.run_in(ANECHOIC, s) for s in range(2)])
        ward = np.mean([self.run_in(WARD, s) for s in range(2)])
        assert anechoic >= ward - 0.01
        assert anechoic > 0.97

    def test_all_environments_usable_at_range(self):
        """Monitoring works in every preset at the 5 m far range."""
        for env in ENVIRONMENTS.values():
            accuracy = self.run_in(env, seed=3)
            assert accuracy > 0.75, f"{env.name} collapsed: {accuracy}"
