"""Unit tests for repro.units: conversions and phase wrapping."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    SPEED_OF_LIGHT,
    TWO_PI,
    bpm_to_hz,
    db_to_linear,
    dbm_to_watts,
    deg_to_rad,
    hz_to_bpm,
    linear_to_db,
    rad_to_deg,
    watts_to_dbm,
    wavelength,
    wrap_phase,
    wrap_phase_delta,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_negative_db(self):
        assert db_to_linear(-3.0) == pytest.approx(0.501187, rel=1e-5)

    def test_linear_to_db_inverse(self):
        assert linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    @given(st.floats(min_value=-100, max_value=100))
    def test_roundtrip(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)


class TestPowerConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_inverse(self):
        assert watts_to_dbm(1e-3) == pytest.approx(0.0)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)

    @given(st.floats(min_value=-60, max_value=60))
    def test_roundtrip(self, dbm):
        assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm, abs=1e-9)


class TestRateConversions:
    def test_one_hz_is_sixty_bpm(self):
        assert hz_to_bpm(1.0) == 60.0

    def test_paper_cutoff(self):
        # 0.67 Hz ~= 40 bpm, the paper's upper plausible breathing rate.
        assert hz_to_bpm(0.67) == pytest.approx(40.2)

    def test_bpm_to_hz_inverse(self):
        assert bpm_to_hz(12.0) == pytest.approx(0.2)


class TestAngleConversions:
    def test_deg_to_rad(self):
        assert deg_to_rad(180.0) == pytest.approx(math.pi)

    def test_rad_to_deg(self):
        assert rad_to_deg(math.pi / 2) == pytest.approx(90.0)


class TestWavelength:
    def test_uhf_mid_band(self):
        # 915 MHz -> ~32.8 cm.
        assert wavelength(915e6) == pytest.approx(0.3276, abs=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wavelength(0.0)

    def test_consistent_with_speed_of_light(self):
        assert wavelength(SPEED_OF_LIGHT) == pytest.approx(1.0)


class TestPhaseWrapping:
    def test_wrap_phase_identity_in_range(self):
        assert wrap_phase(1.0) == pytest.approx(1.0)

    def test_wrap_phase_wraps_above(self):
        assert wrap_phase(TWO_PI + 0.5) == pytest.approx(0.5)

    def test_wrap_phase_wraps_negative(self):
        assert wrap_phase(-0.5) == pytest.approx(TWO_PI - 0.5)

    @given(st.floats(min_value=-1000, max_value=1000))
    def test_wrap_phase_range(self, theta):
        wrapped = wrap_phase(theta)
        assert 0.0 <= wrapped < TWO_PI

    def test_wrap_delta_small_positive(self):
        assert wrap_phase_delta(0.3) == pytest.approx(0.3)

    def test_wrap_delta_small_negative(self):
        assert wrap_phase_delta(-0.3) == pytest.approx(-0.3)

    def test_wrap_delta_large_wraps(self):
        # A +350 degree apparent change is really -10 degrees.
        delta = wrap_phase_delta(math.radians(350))
        assert delta == pytest.approx(math.radians(-10), abs=1e-9)

    @given(st.floats(min_value=-1000, max_value=1000))
    def test_wrap_delta_range(self, delta):
        wrapped = wrap_phase_delta(delta)
        assert -math.pi <= wrapped < math.pi

    @given(st.floats(min_value=-math.pi + 1e-9, max_value=math.pi - 1e-9))
    def test_wrap_delta_preserves_small_changes(self, delta):
        # Any physical change within (-pi, pi) survives wrapping exactly.
        assert wrap_phase_delta(delta) == pytest.approx(delta, abs=1e-9)
