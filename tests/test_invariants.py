"""Property-based invariants of the signal pipeline (hypothesis).

These test the *mathematical* properties the paper's equations promise,
on synthetic report streams where ground truth is exact:

* Eq. (1)/(3) invariance to the constant offset ``c``: adding any
  per-channel phase offset to every report leaves the recovered
  displacement unchanged.
* Time-shift equivariance: shifting every timestamp shifts the recovered
  track and leaves the rate estimate unchanged.
* Wrap robustness: Eq. (3) recovery is exact across phase wraps as long
  as per-pair motion stays below lambda/4.
* Zero-crossing scale invariance: scaling a signal's amplitude does not
  move its crossings (hysteresis scaled accordingly).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.preprocess import default_frequencies, displacement_samples
from repro.core.zerocross import zero_crossing_times
from repro.epc import EPC96
from repro.reader import TagReport
from repro.rf.phase import backscatter_phase
from repro.streams import TimeSeries
from repro.units import SPEED_OF_LIGHT, TWO_PI

FREQS = default_frequencies(10)


def reports_from_trajectory(distances, times, channel_offsets,
                            channels=None):
    """Noise-free reports of one tag over a distance trajectory."""
    channels = channels if channels is not None else [0] * len(times)
    reports = []
    for t, d, ch in zip(times, distances, channels):
        lam = SPEED_OF_LIGHT / FREQS[ch]
        reports.append(TagReport(
            epc=EPC96.from_user_tag(1, 1),
            timestamp_s=float(t),
            phase_rad=backscatter_phase(float(d), lam, channel_offsets[ch]),
            rssi_dbm=-55.0,
            doppler_hz=0.0,
            channel_index=int(ch),
            antenna_port=1,
        ))
    return reports


@st.composite
def trajectories(draw):
    """A smooth breathing-like trajectory sampled within one dwell chain."""
    n = draw(st.integers(min_value=12, max_value=60))
    base = draw(st.floats(min_value=1.0, max_value=6.0))
    amp = draw(st.floats(min_value=0.0005, max_value=0.01))
    freq = draw(st.floats(min_value=0.1, max_value=0.4))
    times = np.arange(n) * 0.04
    distances = base + amp * np.sin(TWO_PI * freq * times)
    return times, distances


class TestOffsetInvariance:
    @given(trajectories(), st.floats(min_value=0.0, max_value=2 * math.pi))
    @settings(max_examples=40, deadline=None)
    def test_channel_offset_cancels(self, trajectory, offset):
        """Eq. (3): any constant ``c`` drops out of the displacement."""
        times, distances = trajectory
        base_offsets = [0.5] * 10
        shifted_offsets = [0.5 + offset] * 10
        a = displacement_samples(
            reports_from_trajectory(distances, times, base_offsets), FREQS)
        b = displacement_samples(
            reports_from_trajectory(distances, times, shifted_offsets), FREQS)
        np.testing.assert_allclose(a.values, b.values, atol=1e-9)

    @given(trajectories())
    @settings(max_examples=30, deadline=None)
    def test_recovers_motion_exactly(self, trajectory):
        times, distances = trajectory
        samples = displacement_samples(
            reports_from_trajectory(distances, times, [1.0] * 10), FREQS)
        expected = distances - distances.mean()
        np.testing.assert_allclose(samples.values, expected, atol=1e-9)


class TestTimeShiftEquivariance:
    @given(trajectories(), st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_shifting_time_shifts_track(self, trajectory, shift):
        times, distances = trajectory
        offsets = [0.3] * 10
        base = displacement_samples(
            reports_from_trajectory(distances, times, offsets), FREQS)
        moved = displacement_samples(
            reports_from_trajectory(distances, times + shift, offsets), FREQS)
        np.testing.assert_allclose(moved.times, base.times + shift, atol=1e-9)
        np.testing.assert_allclose(moved.values, base.values, atol=1e-9)


class TestWrapRobustness:
    @given(st.floats(min_value=1.0, max_value=6.0),
           st.floats(min_value=0.001, max_value=0.02))
    @settings(max_examples=40, deadline=None)
    def test_exact_across_wraps(self, base, total_motion):
        """A slow monotone drift across many phase wraps is recovered as
        long as each inter-read step stays below lambda/4 (~8 cm)."""
        n = 50
        times = np.arange(n) * 0.04
        distances = base + np.linspace(0.0, total_motion, n)
        samples = displacement_samples(
            reports_from_trajectory(distances, times, [2.0] * 10), FREQS)
        recovered_span = samples.values.max() - samples.values.min()
        assert recovered_span == pytest.approx(total_motion, abs=1e-9)

    def test_breaks_beyond_half_wavelength_per_step(self):
        """The documented ambiguity limit: lambda/4 per consecutive pair."""
        lam = SPEED_OF_LIGHT / FREQS[0]
        step = 0.3 * lam  # > lambda/4 per read: aliases
        times = np.arange(5) * 0.04
        distances = 2.0 + np.arange(5) * step
        samples = displacement_samples(
            reports_from_trajectory(distances, times, [0.0] * 10), FREQS)
        span = samples.values.max() - samples.values.min()
        assert span != pytest.approx(4 * step, rel=0.01)


class TestZeroCrossingInvariance:
    @given(st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_amplitude_scale_invariance(self, scale):
        t = np.arange(0, 30, 0.05)
        signal = TimeSeries(t, np.sin(TWO_PI * 0.2 * t))
        scaled = TimeSeries(t, scale * signal.values)
        a = zero_crossing_times(signal, hysteresis=0.1)
        b = zero_crossing_times(scaled, hysteresis=0.1 * scale)
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_crossing_count_stable_under_phase(self, phase):
        t = np.arange(0, 30, 0.05)
        signal = TimeSeries(t, np.sin(TWO_PI * 0.2 * t + phase))
        crossings = zero_crossing_times(signal)
        assert 10 <= len(crossings) <= 13  # ~12 half-cycles in 30 s
