"""Tests for the breath-signal extraction stage and antenna quality."""

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.core.extraction import BreathExtractor
from repro.core.quality import (
    antenna_quality_scores,
    filter_to_antenna,
    select_best_antenna,
)
from repro.epc import EPC96
from repro.errors import ExtractionError, InsufficientDataError
from repro.reader import TagReport
from repro.streams import TimeSeries


def breathing_track(bpm=12.0, duration=60.0, rate=20.0, amplitude=0.005,
                    noise=0.0, drift=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(0.0, duration, 1.0 / rate)
    v = amplitude * np.sin(2 * np.pi * bpm / 60.0 * t)
    v = v + drift * t + rng.normal(0, noise, len(t))
    return TimeSeries(t, v)


def make_report(t, antenna, rssi=-55.0, user=1, tag=1):
    return TagReport(
        epc=EPC96.from_user_tag(user, tag),
        timestamp_s=t,
        phase_rad=1.0,
        rssi_dbm=rssi,
        doppler_hz=0.0,
        channel_index=0,
        antenna_port=antenna,
    )


class TestBreathExtractor:
    def test_estimates_clean_rate(self):
        estimate = BreathExtractor().estimate(breathing_track(bpm=12.0))
        assert estimate.rate_bpm == pytest.approx(12.0, abs=0.3)

    def test_rate_range_coverage(self):
        for bpm in (5.0, 10.0, 15.0, 20.0):
            estimate = BreathExtractor().estimate(breathing_track(bpm=bpm, duration=90.0))
            assert estimate.rate_bpm == pytest.approx(bpm, rel=0.05)

    def test_survives_noise(self):
        track = breathing_track(bpm=15.0, noise=0.003, seed=3)
        estimate = BreathExtractor().estimate(track)
        assert estimate.rate_bpm == pytest.approx(15.0, rel=0.1)

    def test_survives_drift(self):
        track = breathing_track(bpm=10.0, drift=0.001)
        estimate = BreathExtractor().estimate(track)
        assert estimate.rate_bpm == pytest.approx(10.0, rel=0.1)

    def test_signal_is_band_limited(self):
        track = breathing_track(bpm=12.0, noise=0.005, seed=1)
        signal = BreathExtractor().extract_signal(track)
        spectrum = np.abs(np.fft.rfft(signal.values))
        freqs = np.fft.rfftfreq(len(signal), d=0.05)
        out_of_band = spectrum[freqs > 0.7]
        assert out_of_band.max() < 0.02 * spectrum.max()

    def test_fir_variant(self):
        estimate = BreathExtractor(filter_type="fir").estimate(breathing_track())
        assert estimate.rate_bpm == pytest.approx(12.0, abs=0.5)

    def test_adaptive_band_rejects_out_of_band_interference(self):
        t = np.arange(0.0, 60.0, 0.05)
        breath = 0.005 * np.sin(2 * np.pi * 0.2 * t)
        interferer = 0.004 * np.sin(2 * np.pi * 0.55 * t)  # in 0.05-0.67 band
        track = TimeSeries(t, breath + interferer)
        adaptive = BreathExtractor(PipelineConfig(adaptive_band=True))
        estimate = adaptive.estimate(track)
        assert estimate.rate_bpm == pytest.approx(12.0, abs=0.5)

    def test_literal_mode_available(self):
        config = PipelineConfig(adaptive_band=False, highpass_hz=0.0)
        estimate = BreathExtractor(config).estimate(breathing_track())
        assert estimate.rate_bpm == pytest.approx(12.0, abs=0.5)

    def test_fundamental_preferred_over_harmonic(self):
        t = np.arange(0.0, 60.0, 0.05)
        fundamental = 0.005 * np.sin(2 * np.pi * 0.15 * t)
        harmonic = 0.004 * np.sin(2 * np.pi * 0.30 * t)
        estimate = BreathExtractor().estimate(TimeSeries(t, fundamental + harmonic))
        assert estimate.rate_bpm == pytest.approx(9.0, abs=1.0)

    def test_short_track_rejected(self):
        with pytest.raises(InsufficientDataError):
            BreathExtractor().estimate(breathing_track(duration=5.0))

    def test_empty_track_rejected(self):
        with pytest.raises(InsufficientDataError):
            BreathExtractor().estimate(TimeSeries.empty())

    def test_flat_track_rejected(self):
        flat = TimeSeries.regular(np.zeros(1200), 20.0)
        with pytest.raises(InsufficientDataError):
            BreathExtractor().estimate(flat)

    def test_unknown_filter_rejected(self):
        with pytest.raises(ExtractionError):
            BreathExtractor(filter_type="iir")

    def test_estimate_contains_visualisation_tracks(self):
        estimate = BreathExtractor().estimate(breathing_track())
        assert len(estimate.signal) > 0
        assert len(estimate.rate_series) > 0
        assert len(estimate.crossings) >= 7


class TestAntennaQuality:
    def make_reports(self):
        reports = []
        # Antenna 1: fast and strong; antenna 2: slow and weak.
        for i in range(100):
            reports.append(make_report(i * 0.02, antenna=1, rssi=-50.0))
        for i in range(10):
            reports.append(make_report(i * 0.2, antenna=2, rssi=-70.0))
        return reports

    def test_scores_both_antennas(self):
        scores = antenna_quality_scores(self.make_reports(), span_s=2.0)
        assert set(scores) == {1, 2}
        assert scores[1].score > scores[2].score

    def test_rate_and_rssi_fields(self):
        scores = antenna_quality_scores(self.make_reports(), span_s=2.0)
        assert scores[1].sampling_rate_hz == pytest.approx(50.0)
        assert scores[1].mean_rssi_dbm == pytest.approx(-50.0)

    def test_select_best(self):
        assert select_best_antenna(self.make_reports(), span_s=2.0) == 1

    def test_rate_beats_rssi(self):
        """A strong-but-rare stream loses to a fast weaker one."""
        reports = []
        for i in range(100):
            reports.append(make_report(i * 0.02, antenna=1, rssi=-65.0))
        for i in range(4):
            reports.append(make_report(i * 0.5, antenna=2, rssi=-35.0))
        assert select_best_antenna(reports, span_s=2.0) == 1

    def test_empty_reports(self):
        assert antenna_quality_scores([]) == {}
        with pytest.raises(InsufficientDataError):
            select_best_antenna([])

    def test_filter_to_antenna(self):
        reports = self.make_reports()
        only_two = filter_to_antenna(reports, 2)
        assert len(only_two) == 10
        assert all(r.antenna_port == 2 for r in only_two)
