"""Tests for the end-to-end TagBreathe engine (batch + streaming)."""

from dataclasses import replace

import pytest

from repro import PipelineConfig, Scenario, TagBreathe, run_scenario
from repro.body import MetronomeBreathing, Subject
from repro.core.pipeline import (
    REASON_DISORDERED,
    REASON_GAPS,
    REASON_TAG_DEATH,
    sanitize_reports,
)
from repro.core.quality import select_antenna_with_failover, select_best_antenna
from repro.epc import EPC96
from repro.errors import (
    DegradedEstimateWarning,
    ExtractionError,
    InsufficientDataError,
)
from repro.faults import BurstyDrop, FaultChain, OutOfOrderDelivery, TagDeath
from repro.reader import Antenna, TagReport
from repro.config import ReaderConfig, RobustnessConfig


@pytest.fixture(scope="module")
def capture():
    """One shared 50 s close-range capture (12 bpm)."""
    scenario = Scenario([Subject(user_id=1, distance_m=2.0,
                                 breathing=MetronomeBreathing(12.0),
                                 sway_seed=0)])
    return run_scenario(scenario, duration_s=50.0, seed=11)


class TestBatch:
    def test_recovers_rate(self, capture):
        estimates = TagBreathe(user_ids={1}).process(capture.reports)
        assert estimates[1].rate_bpm == pytest.approx(12.0, rel=0.08)

    def test_estimate_metadata(self, capture):
        estimate = TagBreathe(user_ids={1}).process(capture.reports)[1]
        assert estimate.tags_fused == 3
        assert estimate.read_count == len(capture.reports)
        assert estimate.antenna_port == 1

    def test_unfiltered_monitors_all_epcs(self, capture):
        estimates = TagBreathe().process(capture.reports)
        assert 1 in estimates

    def test_filter_ignores_other_users(self, capture):
        estimates = TagBreathe(user_ids={99}).process(capture.reports)
        assert estimates == {}

    def test_missing_user_reported_in_failures(self, capture):
        _, failures = TagBreathe(user_ids={1, 99}).process_detailed(capture.reports)
        assert 99 in failures

    def test_increments_mode(self, capture):
        """The paper-literal Eq. (6)/(7) mode runs end-to-end.  It is
        noisier than the samples mode (dwell-stitch random walk), which
        is exactly what the ablation benchmark quantifies — here we only
        require a plausible estimate."""
        pipeline = TagBreathe(user_ids={1}, mode="increments")
        estimates = pipeline.process(capture.reports)
        assert 4.0 < estimates[1].rate_bpm < 40.0

    def test_samples_mode_at_least_as_accurate(self, capture):
        samples = TagBreathe(user_ids={1}, mode="samples").process(capture.reports)
        increments = TagBreathe(user_ids={1}, mode="increments").process(capture.reports)
        err_samples = abs(samples[1].rate_bpm - 12.0)
        err_increments = abs(increments[1].rate_bpm - 12.0)
        assert err_samples <= err_increments + 0.5

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExtractionError):
            TagBreathe(mode="magic")

    def test_empty_capture(self):
        estimates, failures = TagBreathe(user_ids={1}).process_detailed([])
        assert estimates == {}
        assert 1 in failures

    def test_custom_config_respected(self, capture):
        config = PipelineConfig(cutoff_hz=0.5, zero_crossing_buffer=5)
        pipeline = TagBreathe(user_ids={1}, config=config)
        assert pipeline.config.cutoff_hz == 0.5
        estimate = pipeline.process(capture.reports)[1]
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.1)

    def test_fused_track_exposed(self, capture):
        pipeline = TagBreathe(user_ids={1})
        track = pipeline.fused_track(1, capture.reports)
        assert track.duration == pytest.approx(50.0, abs=2.0)


class TestStreaming:
    def test_streaming_matches_batch(self, capture):
        batch = TagBreathe(user_ids={1}).process(capture.reports)[1]
        streaming = TagBreathe(user_ids={1})
        streaming.feed_many(capture.reports)
        estimate = streaming.estimate_user(1, window_s=40.0)
        assert estimate.rate_bpm == pytest.approx(batch.rate_bpm, rel=0.05)

    def test_trailing_window(self, capture):
        pipeline = TagBreathe(user_ids={1})
        pipeline.feed_many(capture.reports)
        estimate = pipeline.estimate_user(1, window_s=25.0)
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.1)

    def test_streamed_users(self, capture):
        pipeline = TagBreathe(user_ids={1})
        pipeline.feed_many(capture.reports)
        assert pipeline.streamed_users() == [1]

    def test_unknown_user_estimate_rejected(self, capture):
        pipeline = TagBreathe(user_ids={1})
        pipeline.feed_many(capture.reports)
        with pytest.raises(InsufficientDataError):
            pipeline.estimate_user(42)

    def test_reset(self, capture):
        pipeline = TagBreathe(user_ids={1})
        pipeline.feed_many(capture.reports)
        pipeline.reset_streaming()
        assert pipeline.streamed_users() == []
        with pytest.raises(InsufficientDataError):
            pipeline.estimate_user(1)

    def test_out_of_order_reports_ignored(self, capture):
        pipeline = TagBreathe(user_ids={1})
        pipeline.feed_many(capture.reports)
        pipeline.feed(capture.reports[0])  # stale: silently dropped
        estimate = pipeline.estimate_user(1, window_s=40.0)
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.1)

    def test_unmonitored_reports_dropped(self, capture):
        pipeline = TagBreathe(user_ids={99})
        pipeline.feed_many(capture.reports)
        assert pipeline.streamed_users() == []

    def test_memory_bounded(self, capture):
        pipeline = TagBreathe(user_ids={1})
        # Feed the capture three times with shifted timestamps to simulate
        # a long session.
        for shift in (0.0, 45.0, 90.0):
            for report in capture.reports:
                shifted = type(report)(
                    epc=report.epc,
                    timestamp_s=report.timestamp_s + shift,
                    phase_rad=report.phase_rad,
                    rssi_dbm=report.rssi_dbm,
                    doppler_hz=report.doppler_hz,
                    channel_index=report.channel_index,
                    antenna_port=report.antenna_port,
                )
                pipeline.feed(shifted)
        total = sum(len(buf) for buf in pipeline._report_buffers.values())
        # Three 40 s passes = ~3x capture, but trimming caps retention.
        assert total <= 3 * len(capture.reports)
        estimate = pipeline.estimate_user(1, window_s=25.0)
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.15)


class TestMultiAntenna:
    def test_antenna_selection_picks_facing_antenna(self):
        """Section IV-D-3: the best-quality antenna serves each user."""
        config = ReaderConfig(num_antennas=2)
        antennas = [
            Antenna(port=1, position_m=(0.0, 0.0, 1.0), boresight=(1, 0, 0)),
            # Antenna 2 sits behind the user relative to their facing.
            Antenna(port=2, position_m=(8.0, 0.0, 1.0), boresight=(-1, 0, 0)),
        ]
        subject = Subject(user_id=1, distance_m=4.0,
                          breathing=MetronomeBreathing(10.0), sway_seed=0)
        result = run_scenario(
            Scenario([subject]), duration_s=40.0, seed=3,
            reader_config=config, antennas=antennas,
        )
        ports = {r.antenna_port for r in result.reports}
        estimate = TagBreathe(user_ids={1}).process(result.reports)[1]
        if len(ports) > 1:
            assert estimate.antenna_port in ports
        assert estimate.rate_bpm == pytest.approx(10.0, rel=0.15)

    def test_selection_disabled_fuses_everything(self):
        config = ReaderConfig(num_antennas=2)
        antennas = [
            Antenna(port=1, position_m=(0.0, -0.5, 1.0)),
            Antenna(port=2, position_m=(0.0, 0.5, 1.0)),
        ]
        subject = Subject(user_id=1, distance_m=3.0,
                          breathing=MetronomeBreathing(12.0), sway_seed=1)
        result = run_scenario(Scenario([subject]), duration_s=40.0, seed=5,
                              reader_config=config, antennas=antennas)
        pipeline = TagBreathe(user_ids={1}, select_antenna=False)
        estimate = pipeline.process(result.reports)[1]
        assert estimate.antenna_port is None
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.1)


class TestMultiUser:
    def test_two_users_estimated_independently(self):
        subjects = [
            Subject(user_id=1, distance_m=3.0, lateral_offset_m=-0.6,
                    breathing=MetronomeBreathing(8.0), sway_seed=1),
            Subject(user_id=2, distance_m=3.0, lateral_offset_m=0.6,
                    breathing=MetronomeBreathing(16.0), sway_seed=2),
        ]
        result = run_scenario(Scenario(subjects), duration_s=45.0, seed=9)
        estimates = TagBreathe(user_ids={1, 2}).process(result.reports)
        assert estimates[1].rate_bpm == pytest.approx(8.0, rel=0.1)
        assert estimates[2].rate_bpm == pytest.approx(16.0, rel=0.1)

    def test_blocked_user_absent_others_fine(self):
        subjects = [
            Subject(user_id=1, distance_m=3.0, lateral_offset_m=-0.6,
                    breathing=MetronomeBreathing(10.0), sway_seed=1),
            Subject(user_id=2, distance_m=3.0, lateral_offset_m=0.6,
                    orientation_deg=170.0, sway_seed=2),  # back to antenna
        ]
        result = run_scenario(Scenario(subjects), duration_s=40.0, seed=2)
        estimates, failures = TagBreathe(user_ids={1, 2}).process_detailed(
            result.reports
        )
        assert 1 in estimates
        assert 2 in failures  # paper: no report for a fully blocked user


def _report(t, phase=1.0, port=1, tag_id=1, rssi=-55.0):
    return TagReport(
        epc=EPC96.from_user_tag(1, tag_id), timestamp_s=t, phase_rad=phase,
        rssi_dbm=rssi, doppler_hz=0.0, channel_index=0, antenna_port=port,
    )


class TestSanitizeReports:
    def test_clean_stream_untouched(self, capture):
        clean, n_dis, n_dup = sanitize_reports(capture.reports)
        assert clean == list(capture.reports)
        assert (n_dis, n_dup) == (0, 0)

    def test_sorts_and_counts_disorder(self):
        reports = [_report(0.0), _report(2.0), _report(1.0)]
        clean, n_dis, n_dup = sanitize_reports(reports)
        assert [r.timestamp_s for r in clean] == [0.0, 1.0, 2.0]
        assert n_dis == 1
        assert n_dup == 0

    def test_drops_and_counts_duplicates(self):
        reports = [_report(0.0), _report(0.0), _report(1.0)]
        clean, _, n_dup = sanitize_reports(reports)
        assert len(clean) == 2
        assert n_dup == 1

    def test_same_time_different_stream_not_duplicate(self):
        reports = [_report(0.0, tag_id=1), _report(0.0, tag_id=2)]
        clean, _, n_dup = sanitize_reports(reports)
        assert len(clean) == 2
        assert n_dup == 0


class TestAntennaFailover:
    def make_two_port_reports(self, dead_after=None):
        reports = []
        for i in range(200):
            t = i * 0.1
            # port 1: strong and fast; port 2: weaker, slower.
            if dead_after is None or t < dead_after:
                reports.append(_report(t, port=1, rssi=-45.0))
            if i % 2 == 0:
                reports.append(_report(t + 0.01, port=2, rssi=-65.0))
        return reports

    def test_healthy_matches_plain_selection(self):
        reports = self.make_two_port_reports()
        port, failed = select_antenna_with_failover(reports, stale_s=2.5)
        assert failed == ()
        assert port == select_best_antenna(reports)

    def test_dead_port_demoted(self):
        reports = self.make_two_port_reports(dead_after=10.0)
        assert select_best_antenna(reports) == 1  # score still favours port 1
        port, failed = select_antenna_with_failover(reports, stale_s=2.5)
        assert port == 2
        assert failed == (1,)

    def test_no_reports_raises(self):
        with pytest.raises(InsufficientDataError):
            select_antenna_with_failover([], stale_s=2.5)


class TestGracefulDegradation:
    def test_clean_estimate_full_confidence(self, capture):
        estimate = TagBreathe(user_ids={1}).process(capture.reports)[1]
        assert estimate.confidence == 1.0
        assert estimate.degraded_reasons == ()
        assert not estimate.degraded

    def test_disordered_batch_still_estimates(self, capture):
        faulted = FaultChain([OutOfOrderDelivery(0.3)], seed=1).apply(
            capture.reports)
        estimate = TagBreathe(user_ids={1}).process(faulted)[1]
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.1)
        assert REASON_DISORDERED in estimate.degraded_reasons
        assert estimate.confidence < 1.0

    def test_bursty_loss_flags_gaps(self, capture):
        faulted = FaultChain([BurstyDrop(0.35, burst_s=2.0)], seed=5).apply(
            capture.reports)
        estimate = TagBreathe(user_ids={1}).process(faulted)[1]
        assert REASON_GAPS in estimate.degraded_reasons
        assert estimate.confidence < 1.0
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.2)

    def test_tag_death_demotes_stream(self, capture):
        faulted = FaultChain([TagDeath(0.6, num_victims=1)], seed=2).apply(
            capture.reports)
        estimate = TagBreathe(user_ids={1}).process(faulted)[1]
        assert REASON_TAG_DEATH in estimate.degraded_reasons
        assert estimate.tags_fused == 2  # the dead tag is out of the fusion
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.1)

    def test_warning_below_confidence_threshold(self, capture):
        chain = FaultChain([BurstyDrop(0.35, burst_s=2.0),
                            TagDeath(0.6, num_victims=1)], seed=5)
        faulted = chain.apply(capture.reports)
        with pytest.warns(DegradedEstimateWarning):
            TagBreathe(user_ids={1}).process(faulted)

    def test_custom_robustness_config(self, capture):
        rb = RobustnessConfig(outlier_rejection=False, gap_warn_s=100.0,
                              stale_stream_s=100.0)
        pipeline = TagBreathe(user_ids={1}, robustness=rb)
        assert pipeline.robustness.gap_warn_s == 100.0
        faulted = FaultChain([BurstyDrop(0.3, burst_s=2.0)], seed=5).apply(
            capture.reports)
        estimate = pipeline.process(faulted)[1]
        # Thresholds too loose to trip: the estimate is not flagged.
        assert REASON_GAPS not in estimate.degraded_reasons


class TestFeedTolerance:
    def test_single_report_is_insufficient_data_not_a_crash(self, capture):
        # One read cannot form a displacement sample; both entry points
        # must surface that as the documented insufficient-data failure,
        # not leak EmptyStreamError from the fusion internals.
        estimates, failures = TagBreathe(user_ids={1}).process_detailed(
            capture.reports[:1])
        assert estimates == {}
        assert 1 in failures
        pipeline = TagBreathe(user_ids={1})
        assert pipeline.feed(capture.reports[0]) is True
        with pytest.raises(InsufficientDataError):
            pipeline.estimate_user(1)

    def test_counts_duplicate_and_late(self, capture):
        pipeline = TagBreathe(user_ids={1})
        assert pipeline.feed_many(capture.reports) == len(capture.reports)
        assert pipeline.feed(capture.reports[-1]) is False  # same timestamp
        assert pipeline.feed(capture.reports[0]) is False   # older
        counts = pipeline.feed_drop_counts
        assert counts["duplicate"] == 1
        assert counts["late"] == 1
        assert pipeline.dropped_report_count == 2
        estimate = pipeline.estimate_user(1, window_s=40.0)
        assert estimate.rate_bpm == pytest.approx(12.0, rel=0.1)

    def test_counts_invalid_channel(self, capture):
        pipeline = TagBreathe(user_ids={1})
        bad = replace(capture.reports[0], channel_index=499)
        assert pipeline.feed(bad) is False
        assert pipeline.feed_drop_counts["invalid_channel"] == 1

    def test_reversed_stream_never_raises(self, capture):
        pipeline = TagBreathe(user_ids={1})
        buffered = pipeline.feed_many(reversed(capture.reports))
        assert buffered + pipeline.dropped_report_count == len(capture.reports)

    def test_unmonitored_user_not_counted(self, capture):
        pipeline = TagBreathe(user_ids={99})
        assert pipeline.feed(capture.reports[0]) is False
        assert pipeline.dropped_report_count == 0

    def test_reset_clears_counters(self, capture):
        pipeline = TagBreathe(user_ids={1})
        pipeline.feed_many(capture.reports)
        pipeline.feed(capture.reports[0])
        pipeline.reset_streaming()
        assert pipeline.dropped_report_count == 0
