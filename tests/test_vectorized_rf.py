"""Array-vs-scalar agreement of the vectorized RF/body/schedule substrate.

Every broadcasting function must agree elementwise with a Python loop
over its scalar form — the property the batched reader synthesis rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.motion import BodySway
from repro.body.subject import Subject
from repro.body.waveforms import (
    AsymmetricBreathing,
    IrregularBreathing,
    MetronomeBreathing,
    SinusoidalBreathing,
)
from repro.errors import AntennaError, ConfigError
from repro.reader.antenna import Antenna, RoundRobinScheduler
from repro.reader.hopping import HopSchedule
from repro.rf.channel import ChannelPlan
from repro.rf.doppler import doppler_report, doppler_shift_from_velocity
from repro.rf.noise import DynamicMultipath, PhaseNoiseModel, quantize_rssi
from repro.rf.phase import PhaseModel, backscatter_phase
from repro.rf.propagation import LinkBudget
from repro.sim.scenario import Scenario
from repro.units import wavelength, wrap_phase, wrap_phase_delta

TIMES = np.linspace(0.0, 12.0, 97)
DISTANCES = np.linspace(0.5, 6.0, 23)
FREQ = 920e6


def _loop(fn, xs):
    return np.array([fn(float(x)) for x in xs])


class TestRfBroadcasts:
    def test_one_way_loss(self):
        model = LinkBudget().path_loss
        arr = model.one_way_loss_db(DISTANCES, FREQ)
        ref = _loop(lambda d: model.one_way_loss_db(d, FREQ), DISTANCES)
        np.testing.assert_allclose(arr, ref, rtol=0, atol=1e-9)

    def test_rx_power_and_snr(self):
        budget = LinkBudget()
        np.testing.assert_allclose(
            budget.rx_power_dbm(DISTANCES, FREQ, extra_loss_db=2.0),
            _loop(lambda d: budget.rx_power_dbm(d, FREQ, extra_loss_db=2.0),
                  DISTANCES),
            rtol=0, atol=1e-9)
        np.testing.assert_allclose(
            budget.snr_db(DISTANCES, FREQ),
            _loop(lambda d: budget.snr_db(d, FREQ), DISTANCES),
            rtol=0, atol=1e-9)

    def test_read_success_probability(self):
        budget = LinkBudget()
        np.testing.assert_allclose(
            budget.read_success_probability(DISTANCES, FREQ),
            _loop(lambda d: budget.read_success_probability(d, FREQ),
                  DISTANCES),
            rtol=0, atol=1e-9)

    def test_backscatter_phase(self):
        lam = wavelength(FREQ)
        np.testing.assert_allclose(
            backscatter_phase(DISTANCES, lam, 0.3),
            _loop(lambda d: backscatter_phase(d, lam, 0.3), DISTANCES),
            rtol=0, atol=1e-9)

    def test_phase_model(self):
        channel = ChannelPlan.default(4, rng=np.random.default_rng(0))[1]
        model = PhaseModel(link_offset_rad=1.1)
        np.testing.assert_allclose(
            model.phase(DISTANCES, channel, 0.05),
            _loop(lambda d: model.phase(d, channel, 0.05), DISTANCES),
            rtol=0, atol=1e-9)

    def test_doppler_shift(self):
        vels = np.linspace(-0.02, 0.02, 11)
        np.testing.assert_allclose(
            doppler_shift_from_velocity(vels, 0.33),
            _loop(lambda v: doppler_shift_from_velocity(v, 0.33), vels),
            rtol=0, atol=1e-12)

    def test_doppler_report_noise_free_matches(self):
        vels = np.linspace(-0.02, 0.02, 11)
        rng = np.random.default_rng(1)
        np.testing.assert_allclose(
            doppler_report(vels, 0.33, rng, phase_noise_rad=0.0),
            _loop(lambda v: doppler_report(v, 0.33, rng, phase_noise_rad=0.0),
                  vels),
            rtol=0, atol=1e-12)

    def test_phase_noise_sigma_and_array_gate(self):
        model = PhaseNoiseModel()
        snrs = np.linspace(-5.0, 40.0, 12)
        np.testing.assert_allclose(
            model.sigma(snrs), _loop(model.sigma, snrs), rtol=0, atol=1e-12)
        silent = PhaseNoiseModel(floor_rad=0.0, ref_rad=0.0)
        rng = np.random.default_rng(2)
        before = rng.bit_generator.state["state"]["state"]
        assert not silent.sample_array(snrs, rng).any()
        assert rng.bit_generator.state["state"]["state"] == before

    def test_multipath_offset_array(self):
        mp = DynamicMultipath(rng=np.random.default_rng(3))
        link = ("tag", 2, 1)
        arr = mp.phase_offset_array(link, TIMES, np.full(TIMES.shape, 3.0))
        ref = np.array([mp.phase_offset(link, float(t), 3.0) for t in TIMES])
        np.testing.assert_allclose(arr, ref, rtol=0, atol=1e-9)

    def test_quantize_rssi_array(self):
        values = np.linspace(-70.0, -40.0, 31)
        np.testing.assert_allclose(
            quantize_rssi(values, 0.5),
            _loop(lambda v: quantize_rssi(v, 0.5), values),
            rtol=0, atol=0)

    def test_wrap_phase_array(self):
        xs = np.linspace(-20.0, 20.0, 81)
        np.testing.assert_allclose(
            wrap_phase(xs), _loop(wrap_phase, xs), rtol=0, atol=1e-12)
        np.testing.assert_allclose(
            wrap_phase_delta(xs), _loop(wrap_phase_delta, xs),
            rtol=0, atol=1e-12)


class TestScheduleLookups:
    def test_channel_indices_match_scalar(self):
        plan = ChannelPlan.default(10, rng=np.random.default_rng(0))
        a = HopSchedule(plan, rng=np.random.default_rng(5))
        b = HopSchedule(plan, rng=np.random.default_rng(5))
        idx = a.channel_indices_at(TIMES)
        ref = np.array([b.channel_index_at(float(t)) for t in TIMES])
        np.testing.assert_array_equal(idx, ref)

    def test_channel_indices_negative_time_raises(self):
        plan = ChannelPlan.default(4, rng=np.random.default_rng(0))
        sched = HopSchedule(plan, rng=np.random.default_rng(0))
        with pytest.raises(ConfigError):
            sched.channel_indices_at(np.array([0.1, -0.2]))

    def test_antenna_indices_match_scalar(self):
        antennas = [Antenna(port=p) for p in (1, 2, 3)]
        sched = RoundRobinScheduler(antennas, switch_period_s=0.2)
        idx = sched.antenna_indices_at(TIMES)
        ref = np.array([antennas.index(sched.active_at(float(t)))
                        for t in TIMES])
        np.testing.assert_array_equal(idx, ref)
        with pytest.raises(AntennaError):
            sched.antenna_indices_at(np.array([-1.0]))


class TestAntennaGeometry:
    def test_distances_and_gains_match_scalar(self):
        antenna = Antenna(port=1, position_m=(0.0, 0.2, 1.0),
                          boresight=(1.0, 0.1, 0.0))
        rng = np.random.default_rng(7)
        points = rng.uniform(-3.0, 6.0, size=(40, 3))
        np.testing.assert_allclose(
            antenna.distances_to(points),
            np.array([antenna.distance_to(p) for p in points]),
            rtol=0, atol=1e-9)
        np.testing.assert_allclose(
            antenna.gain_dbi_toward_array(points),
            np.array([antenna.gain_dbi_toward(p) for p in points]),
            rtol=0, atol=1e-9)

    def test_gain_array_handles_coincident_point(self):
        antenna = Antenna(port=1)
        points = np.array([antenna.position_m, (2.0, 0.0, 1.0)], dtype=float)
        gains = antenna.gain_dbi_toward_array(points)
        assert gains[0] == antenna.peak_gain_dbi
        assert gains[1] == pytest.approx(
            antenna.gain_dbi_toward((2.0, 0.0, 1.0)), abs=1e-9)


class TestBodyTrajectories:
    @pytest.mark.parametrize("waveform", [
        SinusoidalBreathing(12.0),
        AsymmetricBreathing(10.0),
        MetronomeBreathing(10.0),
        IrregularBreathing(10.0, pause_probability=0.2, seed=4,
                           horizon_s=20.0),
        BodySway(seed=6),
    ])
    def test_displacement_array_matches_scalar(self, waveform):
        np.testing.assert_allclose(
            waveform.displacement_array(TIMES),
            np.array([waveform.displacement(float(t)) for t in TIMES]),
            rtol=0, atol=1e-12)

    def test_tag_position_array_matches_scalar(self):
        subject = Subject(user_id=1, distance_m=3.0, orientation_deg=25.0,
                          posture="lying", sway_seed=8)
        for tag in subject.tags:
            arr = subject.tag_position_m_array(tag.tag_id, TIMES)
            ref = np.array([subject.tag_position_m(tag.tag_id, float(t))
                            for t in TIMES])
            np.testing.assert_allclose(arr, ref, rtol=0, atol=1e-12)

    def test_scenario_position_array(self):
        scenario = Scenario.single_user(3.0, sway_seed=2) \
            .with_contending_tags(2, seed=0)
        for key in scenario.tag_keys():
            arr = scenario.position_m_array(key, TIMES)
            ref = np.array([scenario.position_m(key, float(t))
                            for t in TIMES])
            np.testing.assert_allclose(arr, ref, rtol=0, atol=1e-12)

    def test_scenario_static_loss_matches_probe(self):
        scenario = Scenario.single_user(3.0, sway_seed=2) \
            .with_contending_tags(2, seed=0)
        antenna = Antenna(port=1)
        for key in scenario.tag_keys():
            static = scenario.situational_loss_db_static(key, antenna)
            assert static == scenario.extra_loss_db(key, 5.0, antenna)
            np.testing.assert_array_equal(
                scenario.extra_loss_db_array(key, TIMES, antenna),
                np.full(TIMES.shape, static))
