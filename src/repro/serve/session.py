"""Per-user monitoring sessions and the sharded workers that drive them.

One :class:`UserSession` wraps one :class:`~repro.core.pipeline.TagBreathe`
engine restricted to a single user and drives the incremental streaming
path — ``feed()`` per report (which folds the report into the engine's
Eq. 3 differencing cursors and window index as it arrives), and
``estimate_user()`` on a stream-time cadence, which slices the
maintained state instead of recomputing from scratch and returns a
memoized estimate when no new reports landed since the last tick — so a
served estimate is *by construction* the same number the batch pipeline
computes over the same trailing window (the property
``tests/test_serve.py`` pins to 0.1 bpm; DESIGN.md §12 explains why the
streamed and batch numbers are in fact bit-identical).

Sessions are grouped into :class:`SessionShard` workers (user_id modulo
shard count), each with its own bounded ingest queue.  The shard is the
unit of backpressure:

* **shed-oldest** — when the queue is full, the *oldest* queued report
  is discarded to make room (a monitor wants the freshest breath, not a
  faithful archive), counted in ``repro_serve_shed_total``;
* **watermarks** — connection handlers stop reading their socket while a
  shard's backlog sits above the high watermark and resume below the low
  watermark, pushing backpressure into the kernel's TCP window so a
  well-behaved sender slows down instead of being shed.

Everything here is asyncio-single-threaded: sessions mutate only inside
their shard's worker task, which is what makes the checkpoint snapshot
(:mod:`repro.serve.checkpoint`) consistent without locks.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .. import obs
from ..core.pipeline import TagBreathe
from ..errors import InsufficientDataError
from ..reader.batch import ReportBatch
from ..reader.tagreport import TagReport
from .checkpoint import session_state_from_doc, session_state_to_doc
from .hibernate import HibernationStore
from .protocol import estimate_to_wire

#: Default per-shard ingest queue capacity (reports).
DEFAULT_QUEUE_CAPACITY = 4096


@dataclass(frozen=True)
class SessionConfig:
    """Tuning knobs for served monitoring sessions.

    Attributes:
        window_s: trailing analysis window passed to ``estimate_user``
            (None = the engine's 25 s paper default).
        estimate_interval_s: stream-time cadence between published
            estimates per user.
        warmup_s: stream time that must elapse after a session's first
            report before its first estimate is attempted (the paper's
            window must fill before Eq. 5 has enough crossings).
        queue_capacity: per-shard ingest queue bound; overflow sheds the
            oldest queued report.
        high_watermark: backlog at which connection handlers pause
            reading (defaults to 3/4 of capacity).
        low_watermark: backlog at which paused handlers resume
            (defaults to 1/4 of capacity).
        include_signal: embed a downsampled breathing-signal trace in
            estimate messages (for dashboard sparklines).
        signal_points: ~how many signal samples to embed when enabled.
        idle_after_s: wall-clock seconds without an ingested report
            after which the idle sweep hibernates a session (None = no
            idle-driven hibernation).
        max_resident: per-shard budget of resident (engine-backed)
            sessions; exceeding it hibernates the least-recently-active
            sessions until the budget holds (None = unbounded).
    """

    window_s: Optional[float] = None
    estimate_interval_s: float = 5.0
    warmup_s: float = 25.0
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY
    high_watermark: Optional[int] = None
    low_watermark: Optional[int] = None
    include_signal: bool = False
    signal_points: int = 60
    idle_after_s: Optional[float] = None
    max_resident: Optional[int] = None

    @property
    def high(self) -> int:
        """The effective high watermark."""
        return (self.high_watermark if self.high_watermark is not None
                else max(1, (3 * self.queue_capacity) // 4))

    @property
    def low(self) -> int:
        """The effective low watermark."""
        return (self.low_watermark if self.low_watermark is not None
                else max(0, self.queue_capacity // 4))


class UserSession:
    """One user's live monitoring state inside a shard.

    Args:
        user_id: the monitored user.
        config: serving knobs (cadence, window, signal embedding).
        engine_factory: builds the per-user TagBreathe engine; the
            default constructs one with ``user_ids={user_id}`` so stray
            reports can never pollute the session.
    """

    def __init__(self, user_id: int, config: SessionConfig,
                 engine_factory: Optional[Callable[[int], TagBreathe]] = None,
                 ) -> None:
        self.user_id = user_id
        self.config = config
        factory = engine_factory or (lambda uid: TagBreathe(user_ids={uid}))
        self.engine = factory(user_id)
        self.first_t: Optional[float] = None
        self.latest_t: Optional[float] = None
        self.next_due_t: Optional[float] = None
        self.reports_in = 0
        self.estimates_out = 0
        #: Wall-clock (monotonic) instant of the last ingested report —
        #: what the idle detector and the resident-budget eviction order
        #: key on.  Deliberately NOT stream time: a replayed historical
        #: trace is still *activity* even though its timestamps are old.
        self.last_active = time.monotonic()

    # ------------------------------------------------------------------
    def ingest(self, report: TagReport) -> bool:
        """Feed one report; returns True when the engine buffered it."""
        self.reports_in += 1
        self.last_active = time.monotonic()
        t = report.timestamp_s
        if self.first_t is None:
            self.first_t = t
            self.next_due_t = t + self.config.warmup_s
        self.latest_t = t if self.latest_t is None else max(self.latest_t, t)
        return self.engine.feed(report)

    def ingest_batch(self, batch: ReportBatch) -> int:
        """Feed one column batch; returns how many reports were buffered.

        The session bookkeeping lands where a loop of :meth:`ingest`
        would leave it (``first_t`` from the first row in arrival order,
        ``latest_t`` the running max) and the engine's ``feed_batch``
        guarantees state bit-identical to per-report feeding.
        """
        n = len(batch)
        if not n:
            return 0
        self.reports_in += n
        self.last_active = time.monotonic()
        if self.first_t is None:
            self.first_t = float(batch.t[0])
            self.next_due_t = self.first_t + self.config.warmup_s
        t_max = float(batch.t.max())
        self.latest_t = (t_max if self.latest_t is None
                         else max(self.latest_t, t_max))
        return self.engine.feed_batch(batch)

    def estimate_due(self) -> bool:
        """True when stream time has advanced past the next cadence tick."""
        return (self.next_due_t is not None and self.latest_t is not None
                and self.latest_t >= self.next_due_t)

    def maybe_estimate(self) -> Optional[Dict[str, Any]]:
        """Publish-worthy estimate message if one is due, else None.

        Advances the cadence clock even when the window holds too little
        signal (the user walked away mid-session): the session keeps
        quietly retrying every interval rather than spinning on every
        report.
        """
        if not self.estimate_due():
            return None
        self.next_due_t += self.config.estimate_interval_s
        # A stalled stream could leave the due time many intervals in the
        # past; re-anchor so recovery does not burst-publish stale ticks.
        if self.next_due_t <= self.latest_t:
            self.next_due_t = self.latest_t + self.config.estimate_interval_s
        return self.estimate_now()

    def estimate_now(self, final: bool = False) -> Optional[Dict[str, Any]]:
        """Compute an estimate message right now (None if not possible)."""
        with obs.span("serve.session.estimate", user_id=self.user_id):
            try:
                estimate = self.engine.estimate_user(
                    self.user_id, window_s=self.config.window_s)
            except InsufficientDataError:
                return None
        self.estimates_out += 1
        signal = None
        if self.config.include_signal:
            series = estimate.estimate.signal
            stride = max(1, len(series) // max(1, self.config.signal_points))
            signal = (series.times[::stride].tolist(),
                      series.values[::stride].tolist())
        return estimate_to_wire(
            self.user_id, self.latest_t if self.latest_t is not None else 0.0,
            estimate, drop_counts=self.engine.feed_drop_counts,
            signal=signal, final=final)

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """The session's checkpointable state (JSON-ready except reports)."""
        return {
            "user_id": self.user_id,
            "first_t": self.first_t,
            "latest_t": self.latest_t,
            "next_due_t": self.next_due_t,
            "reports_in": self.reports_in,
            "estimates_out": self.estimates_out,
            "drop_counts": self.engine.feed_drop_counts,
            "reports": self.engine.buffered_reports(self.user_id),
        }

    def restore(self, state: Dict[str, Any],
                reports: List[TagReport]) -> None:
        """Load a checkpointed state (inverse of :meth:`state`).

        Replaying the checkpointed reports rebuilds the engine's
        incremental state (differencing cursors, window index)
        deterministically; the engine keeps replay-time drops separate
        from the restored production counters, and any replay drops —
        normally zero, since the checkpoint holds an already-deduplicated
        buffer — are surfaced on
        ``repro_serve_restore_replay_drops_total`` rather than silently
        folded into the session's drop statistics.
        """
        self.first_t = state.get("first_t")
        self.latest_t = state.get("latest_t")
        self.next_due_t = state.get("next_due_t")
        self.reports_in = int(state.get("reports_in", 0))
        self.estimates_out = int(state.get("estimates_out", 0))
        self.engine.restore_streaming(reports, state.get("drop_counts"))
        replayed = sum(self.engine.last_restore_drop_counts.values())
        if replayed:
            obs.counter("repro_serve_restore_replay_drops_total",
                        user_id=str(self.user_id)).inc(replayed)


class SessionShard:
    """One ingest worker: a bounded queue feeding its users' sessions.

    Args:
        index: shard number (labels the shard's metrics).
        config: serving knobs shared by every session in the shard.
        publish: called with each estimate message to fan out.
        engine_factory: forwarded to :class:`UserSession`.
    """

    def __init__(self, index: int, config: SessionConfig,
                 publish: Callable[[Dict[str, Any]], None],
                 engine_factory: Optional[Callable[[int], TagBreathe]] = None,
                 ) -> None:
        self.index = index
        self.config = config
        self.sessions: Dict[int, UserSession] = {}
        #: Cold tier: idle sessions parked as compressed checkpoint
        #: documents, woken lazily (and bit-exactly) by the next report.
        self.hibernated = HibernationStore()
        self.shed_count = 0
        self.frames_in = 0
        self._publish = publish
        self._engine_factory = engine_factory
        # The queue itself is unbounded; capacity, shedding, and the
        # watermarks are accounted in REPORTS via ``_pending``, so one
        # queued column batch weighs its row count, not one slot.
        self._queue: asyncio.Queue = asyncio.Queue()
        self._pending = 0
        self._below_low = asyncio.Event()
        self._below_low.set()
        self._task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Producer side (connection handlers)
    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Reports queued but not yet ingested."""
        return self._pending

    def _shed_to_capacity(self) -> None:
        """Drop oldest queued entries until the backlog fits the bound.

        Never drops the newest entry: a single batch larger than the
        whole queue capacity is admitted intact (the engine handles any
        size; the bound is an overload valve, not a frame limit).
        """
        capacity = max(1, self.config.queue_capacity)
        while self._pending > capacity and self._queue.qsize() > 1:
            oldest = self._queue.get_nowait()
            self._queue.task_done()
            dropped = len(oldest) if type(oldest) is ReportBatch else 1
            self._pending -= dropped
            self.shed_count += dropped
            obs.counter("repro_serve_shed_total",
                        shard=str(self.index)).inc(dropped)

    def submit(self, report: TagReport) -> None:
        """Enqueue one report, shedding the oldest queued ones on overflow.

        Never blocks and never raises: under sustained overload the
        freshest data wins and ``repro_serve_shed_total`` counts the
        loss, mirroring the tolerate-and-count contract of
        ``TagBreathe.feed``.
        """
        self.frames_in += 1
        self._queue.put_nowait(report)
        self._pending += 1
        self._shed_to_capacity()
        if self._pending >= self.config.high:
            self._below_low.clear()

    def submit_batch(self, batch: ReportBatch) -> None:
        """Enqueue one single-user column batch (counted per report).

        Same never-block/never-raise contract as :meth:`submit`; the
        batch occupies ``len(batch)`` reports of queue capacity and is
        ingested by the worker in one ``feed_batch`` call.
        """
        if not len(batch):
            return
        self.frames_in += 1
        self._queue.put_nowait(batch)
        self._pending += len(batch)
        self._shed_to_capacity()
        if self._pending >= self.config.high:
            self._below_low.clear()

    async def wait_below_low(self) -> None:
        """Block while the backlog is above the low watermark.

        Connection handlers await this after submitting whenever the
        backlog crossed the high watermark; not reading the socket is
        what turns shard congestion into TCP backpressure.
        """
        await self._below_low.wait()

    @property
    def over_high(self) -> bool:
        """True when the backlog is at or above the high watermark."""
        return self._pending >= self.config.high

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the shard worker task on the running loop."""
        if self._task is None or self._task.done():
            self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Cancel the worker task (drain first for a graceful stop)."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def drain(self) -> None:
        """Wait until every queued report has been ingested."""
        await self._queue.join()

    def session_for(self, user_id: int) -> UserSession:
        """Get, wake, or lazily create the session for ``user_id``.

        A hibernated user's next touch inflates their parked checkpoint
        document back into a live session whose state is bit-identical
        to never having hibernated (``restore_streaming`` replays the
        buffered reports deterministically); a brand-new user gets a
        fresh session.  Either way the resident budget is enforced
        afterwards, hibernating the least-recently-active sessions —
        never the one just touched — when the shard is over budget.
        """
        session = self.sessions.get(user_id)
        if session is None:
            doc = self.hibernated.pop(user_id)
            if doc is not None:
                session = self._wake(user_id, doc)
            else:
                session = UserSession(user_id, self.config,
                                      engine_factory=self._engine_factory)
                self.sessions[user_id] = session
                obs.event("serve.session.open", user_id=user_id,
                          shard=self.index)
                obs.gauge("repro_serve_active_sessions").inc()
            self._enforce_budget(exclude=user_id)
        return session

    def _wake(self, user_id: int, doc: Dict[str, Any]) -> UserSession:
        """Rebuild a live session from a parked checkpoint document."""
        t0 = time.perf_counter()
        state = session_state_from_doc(doc)
        session = UserSession(user_id, self.config,
                              engine_factory=self._engine_factory)
        session.restore(state, state["reports"])
        self.sessions[user_id] = session
        elapsed = time.perf_counter() - t0
        obs.counter("repro_serve_woken_total",
                    shard=str(self.index)).inc()
        obs.histogram("repro_serve_wake_latency_seconds").observe(elapsed)
        obs.gauge("repro_serve_hibernated_sessions").inc(-1)
        obs.gauge("repro_serve_active_sessions").inc()
        obs.event("serve.session.wake", user_id=user_id, shard=self.index,
                  seconds=elapsed)
        return session

    def hibernate_session(self, user_id: int) -> bool:
        """Park one resident session in the cold tier; False when absent.

        The session's checkpoint state becomes a compressed document and
        the engine-backed ``UserSession`` is dropped — its numpy chains,
        window index, and report buffers become garbage immediately.
        Safe at any instant between queue entries (hibernation is
        synchronous inside the shard's single-threaded context); a
        report already queued for the user simply wakes them when the
        worker dequeues it, preserving order.
        """
        session = self.sessions.pop(user_id, None)
        if session is None:
            return False
        doc = session_state_to_doc(session.state())
        doc["hibernated"] = True
        blob_bytes = self.hibernated.put(user_id, doc)
        obs.counter("repro_serve_hibernated_total",
                    shard=str(self.index)).inc()
        obs.gauge("repro_serve_active_sessions").inc(-1)
        obs.gauge("repro_serve_hibernated_sessions").inc()
        obs.event("serve.session.hibernate", user_id=user_id,
                  shard=self.index, blob_bytes=blob_bytes)
        return True

    def hibernate_idle(self, now: Optional[float] = None) -> int:
        """Hibernate every session idle past ``config.idle_after_s``.

        Called by the server's idle sweep; returns how many sessions
        were parked.  No-op when the knob is unset.
        """
        idle_after = self.config.idle_after_s
        if idle_after is None:
            return 0
        now = time.monotonic() if now is None else now
        idle = [user_id for user_id, session in self.sessions.items()
                if now - session.last_active >= idle_after]
        for user_id in idle:
            self.hibernate_session(user_id)
        return len(idle)

    def _enforce_budget(self, exclude: int) -> None:
        """Hibernate LRA sessions until ``config.max_resident`` holds."""
        budget = self.config.max_resident
        if budget is None:
            return
        while len(self.sessions) > max(1, budget):
            victims = sorted(
                (session.last_active, user_id)
                for user_id, session in self.sessions.items()
                if user_id != exclude)
            if not victims:
                return
            self.hibernate_session(victims[0][1])

    def adopt_hibernated(self, user_id: int, doc: Dict[str, Any]) -> None:
        """Park an already-hibernated document without waking it.

        The checkpoint-resume and migration paths use this so idle users
        move between workers as a few KB of compressed JSON instead of a
        materialised engine.
        """
        self.hibernated.put(user_id, doc)
        obs.gauge("repro_serve_hibernated_sessions").inc()

    @property
    def session_count(self) -> int:
        """Sessions this shard owns: resident plus hibernated."""
        return len(self.sessions) + len(self.hibernated)

    def user_ids(self) -> List[int]:
        """Every owned user (resident and hibernated), sorted."""
        return sorted(set(self.sessions) | set(self.hibernated.user_ids()))

    def remove_session(self, user_id: int) -> Optional[UserSession]:
        """Detach and return one session (migration); None when absent.

        Callers must have drained the shard first — a queued report for
        a removed user would otherwise lazily re-create an empty
        session and fork the user's state across workers.
        """
        session = self.sessions.pop(user_id, None)
        if session is not None:
            obs.event("serve.session.migrate_out", user_id=user_id,
                      shard=self.index)
            obs.gauge("repro_serve_active_sessions").inc(-1)
        return session

    async def _run(self) -> None:
        while True:
            entry = await self._queue.get()
            try:
                if type(entry) is ReportBatch:
                    count = len(entry)
                    session = self.session_for(int(entry.user_id[0]))
                    session.ingest_batch(entry)
                else:
                    count = 1
                    session = self.session_for(entry.user_id)
                    session.ingest(entry)
                message = session.maybe_estimate()
                if message is not None:
                    self._publish(message)
            finally:
                self._pending -= count
                self._queue.task_done()
            if self._pending <= self.config.low:
                self._below_low.set()

    def final_estimates(self) -> List[Dict[str, Any]]:
        """One last estimate per live session (the drain farewell)."""
        messages = []
        for user_id in sorted(self.sessions):
            message = self.sessions[user_id].estimate_now(final=True)
            if message is not None:
                messages.append(message)
        return messages
