"""Wire protocol for the streaming ingest service.

Framing is length-prefixed: every message is a 4-byte big-endian payload
length followed by the encoded payload.  Payloads are JSON objects by
default; a client whose ``hello`` asks for ``codec="msgpack"`` switches
both directions to msgpack *if* the library is available on the server
(it is optional — the container may not ship it), otherwise the server's
``welcome`` answers with the codec actually in force and the client must
follow it.  The ``hello``/``welcome`` handshake itself is always JSON so
the negotiation can never deadlock on an unknown codec.

Report messages mirror the LLRP low-level report shape of
:class:`repro.reader.tagreport.TagReport` — the same seven fields
``repro.sim.trace_io`` persists, so a recorded capture replays over the
wire without translation:

    {"type": "report", "epc": "…24 hex…", "timestamp_s": …,
     "phase_rad": …, "rssi_dbm": …, "doppler_hz": …,
     "channel_index": …, "antenna_port": …}

Message types (client → server): ``hello``, ``report``,
``report_batch``, ``watch``, ``unwatch``, ``flush``, ``bye``, plus the
fabric control verbs ``ping`` (liveness/heartbeat probe),
``migrate_out`` (drain named users' session state off this server) and
``migrate_in`` (restore session state migrated from another server).
Server → client: ``welcome``, ``ack``, ``estimate``, ``flushed``,
``draining``, ``error``, ``pong``, ``migrated``.  A ``report`` may
carry an optional monotonically increasing ``seq`` (per ``client_id``):
the server remembers the highest sequence accepted per client —
snapshotted into its checkpoint — and silently drops replays at or
below it, which is what lets a client resend after a reconnect without
duplicating data (idempotent resume; the ``welcome`` answers
``last_seq``).

``report_batch`` is the columnar hot path and never exists as a
json/msgpack object on the wire: a client granted the ``column`` frame
kind in the hello/welcome ``frames`` negotiation sends whole
:class:`repro.reader.batch.ReportBatch` column blocks as binary frames
(:func:`encode_column_frame`), ~4x smaller than the per-report JSON
messages and decoded back to numpy columns without any per-row parsing;
the optional per-row seq column carries the same idempotent-resume
semantics as ``report.seq``.  See docs/SERVING.md for the exact byte
grammar.
Estimates on *watch* connections
are additionally available as plain JSONL text (one JSON object per
line) so ``nc`` / ``tail``-style tooling can consume them; see
docs/SERVING.md for the full grammar.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..epc.codec import EPC96
from ..errors import ProtocolError, ReproError
from ..reader.batch import ReportBatch
from ..reader.tagreport import TagReport

try:  # optional accelerated codec; the image may not carry it
    import msgpack  # type: ignore

    HAVE_MSGPACK = True
except ImportError:  # pragma: no cover - depends on environment
    msgpack = None
    HAVE_MSGPACK = False

#: Protocol version spoken by this module.  v2 added the fabric control
#: verbs (``ping``/``pong``, ``migrate_out``/``migrate_in``/``migrated``)
#: and idempotent-resume sequence numbers; v3 added the binary column
#: frame (``report_batch`` on the wire) and its ``frames`` negotiation —
#: all additive, so v1/v2 clients interoperate unchanged.
PROTOCOL_VERSION = 3

#: Hard ceiling on one frame's payload size.  A report frame is ~200
#: bytes; anything near this limit is a corrupt length prefix, not data.
MAX_FRAME_BYTES = 1 << 20

#: The 4-byte big-endian unsigned length prefix.
_HEADER = struct.Struct("!I")

#: Codecs a connection may negotiate.  "json" is always available.
CODECS = ("json",) + (("msgpack",) if HAVE_MSGPACK else ())

#: Binary frame kinds a connection may negotiate (hello ``frames`` →
#: welcome ``frames``).  Unlike codecs, frames are self-describing on
#: the wire — the column frame's leading magic byte 0x00 can never open
#: a JSON payload and is not a msgpack map, so the decoder dispatches
#: per frame and negotiation only gates what a peer may *send*.
FRAME_KINDS = ("column",)

#: Column-frame layout: a fixed struct header followed by the packed
#: little-endian columns, one contiguous block per column in this order.
#: Header: magic (2s, first byte 0x00), frame version (B), flags (B,
#: bit 0 = trailing per-row seq column), row count (I, big-endian like
#: the length prefix), 8 reserved zero bytes.
COLUMN_FRAME_MAGIC = b"\x00C"
COLUMN_FRAME_VERSION = 1
_COLUMN_HEADER = struct.Struct("!2sBBI8s")
_FLAG_SEQ = 0x01

#: (ReportBatch attribute, wire dtype) per packed column — 48 bytes per
#: row, plus 8 for the optional seq column.
COLUMN_WIRE_DTYPES = (
    ("t", "<f8"),
    ("phase", "<f8"),
    ("rssi", "<f8"),
    ("doppler", "<f8"),
    ("channel", "<i2"),
    ("antenna", "<i2"),
    ("user_id", "<u8"),
    ("tag_id", "<u4"),
)
_SEQ_WIRE_DTYPE = "<u8"
_ROW_BYTES = sum(np.dtype(dt).itemsize for _, dt in COLUMN_WIRE_DTYPES)

#: Message types accepted from clients / emitted by the server.
#: ``flush`` is the ingest barrier: the server answers ``flushed`` only
#: after every queued report has been ingested, giving replay clients a
#: happens-before edge between "bytes sent" and "estimates reflect them".
CLIENT_TYPES = ("hello", "report", "report_batch", "watch", "unwatch",
                "flush", "bye", "ping", "migrate_out", "migrate_in")
SERVER_TYPES = ("welcome", "ack", "estimate", "flushed", "draining",
                "error", "pong", "migrated")


def negotiate_codec(requested: Optional[str]) -> str:
    """The codec the server will speak given a client's request."""
    if requested in CODECS:
        return requested
    return "json"


def negotiate_frames(requested: Optional[List[str]]) -> Tuple[str, ...]:
    """The binary frame kinds granted from a hello's ``frames`` list.

    Unknown kinds are dropped, order and duplicates normalised away; an
    absent or empty request grants nothing (per-message codec frames
    only), which is exactly the pre-v3 behaviour.
    """
    if not requested:
        return ()
    return tuple(kind for kind in FRAME_KINDS if kind in requested)


def _check_codec(codec: str) -> None:
    """Reject a codec this process cannot speak, with a typed reason.

    A *negotiated-but-unavailable* codec (msgpack agreed during a
    handshake made against a different build, then the library is
    missing here) is a configuration fault and must fail loudly — a
    silent JSON fallback would desynchronise the two ends' framing.
    """
    if codec == "msgpack" and not HAVE_MSGPACK:
        raise ProtocolError(
            "codec 'msgpack' was negotiated but the msgpack library is "
            "not available in this process")
    if codec not in ("json", "msgpack"):
        raise ProtocolError(f"unknown codec {codec!r} (available: {CODECS})")


def _encode_payload(message: Dict[str, Any], codec: str) -> bytes:
    _check_codec(codec)
    if codec == "json":
        return json.dumps(message, separators=(",", ":"),
                          sort_keys=True).encode("utf-8")
    return msgpack.packb(message, use_bin_type=True)


def _decode_payload(payload: bytes, codec: str) -> Dict[str, Any]:
    _check_codec(codec)
    try:
        if codec == "json":
            message = json.loads(payload.decode("utf-8"))
        else:
            message = msgpack.unpackb(payload, raw=False)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable {codec} payload: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(
            f"frame payload must be an object with a 'type', got {message!r}")
    return message


def encode_frame(message: Dict[str, Any], codec: str = "json") -> bytes:
    """One message as a length-prefixed wire frame.

    Raises:
        ProtocolError: on an unknown codec or an oversized payload.
    """
    payload = _encode_payload(message, codec)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(payload)) + payload


def encode_column_frame(batch: ReportBatch,
                        seqs: Optional[np.ndarray] = None) -> bytes:
    """A ``ReportBatch`` as one length-prefixed binary column frame.

    The payload is the fixed column-frame header followed by each column
    packed contiguously in :data:`COLUMN_WIRE_DTYPES` order (~48 bytes a
    report against ~200 for the JSON ``report`` message), plus a
    trailing per-row ``seq`` column when ``seqs`` is given — per-row
    rather than a single base because a fabric router splits one frame
    into per-worker sub-batches whose rows are not contiguous in the
    original sequence space.

    Raises:
        ProtocolError: when a value overflows its wire dtype, ``seqs``
            has the wrong length, or the frame would exceed
            ``MAX_FRAME_BYTES``.
    """
    n = len(batch)
    if np.any(batch.channel > 0x7FFF) or np.any(batch.antenna > 0x7FFF):
        raise ProtocolError(
            "channel/antenna overflow the column frame's int16 range")
    flags = 0 if seqs is None else _FLAG_SEQ
    parts = [_COLUMN_HEADER.pack(COLUMN_FRAME_MAGIC, COLUMN_FRAME_VERSION,
                                 flags, n, b"\x00" * 8)]
    for name, dt in COLUMN_WIRE_DTYPES:
        parts.append(np.ascontiguousarray(
            getattr(batch, name), dtype=dt).tobytes())
    if seqs is not None:
        seqs = np.ascontiguousarray(seqs, dtype=_SEQ_WIRE_DTYPE)
        if seqs.shape != (n,):
            raise ProtocolError(
                f"seqs must be one per row ({n}), got shape {seqs.shape}")
        parts.append(seqs.tobytes())
    payload = b"".join(parts)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"column frame payload {len(payload)} bytes exceeds "
            f"{MAX_FRAME_BYTES}; split the batch")
    return _HEADER.pack(len(payload)) + payload


def decode_column_frame(payload: bytes) -> Dict[str, Any]:
    """Decode one column-frame payload into a ``report_batch`` message.

    Returns ``{"type": "report_batch", "batch": ReportBatch,
    "seqs": Optional[ndarray]}``.

    Raises:
        ProtocolError: on a bad magic/version/flags, a payload whose
            length does not exactly match the advertised row count
            (truncated or oversized), or column values ``ReportBatch``
            rejects.
    """
    if len(payload) < _COLUMN_HEADER.size:
        raise ProtocolError(
            f"column frame payload {len(payload)} bytes is shorter than "
            f"the {_COLUMN_HEADER.size}-byte header")
    magic, version, flags, count, _ = _COLUMN_HEADER.unpack_from(payload)
    if magic != COLUMN_FRAME_MAGIC:
        raise ProtocolError(f"bad column frame magic {magic!r}")
    if version != COLUMN_FRAME_VERSION:
        raise ProtocolError(f"unsupported column frame version {version}")
    if flags & ~_FLAG_SEQ:
        raise ProtocolError(f"unknown column frame flags 0x{flags:02x}")
    has_seq = bool(flags & _FLAG_SEQ)
    expected = (_COLUMN_HEADER.size + count * _ROW_BYTES
                + (count * 8 if has_seq else 0))
    if len(payload) != expected:
        raise ProtocolError(
            f"column frame length {len(payload)} != expected {expected} "
            f"for {count} rows (truncated or trailing garbage)")
    offset = _COLUMN_HEADER.size
    columns: Dict[str, np.ndarray] = {}
    for name, dt in COLUMN_WIRE_DTYPES:
        columns[name] = np.frombuffer(payload, dtype=dt, count=count,
                                      offset=offset)
        offset += count * np.dtype(dt).itemsize
    seqs = None
    if has_seq:
        seqs = np.frombuffer(payload, dtype=_SEQ_WIRE_DTYPE, count=count,
                             offset=offset)
    try:
        batch = ReportBatch(**columns)
    except ReproError as exc:
        raise ProtocolError(f"bad column frame contents: {exc}") from exc
    return {"type": "report_batch", "batch": batch, "seqs": seqs}


class FrameDecoder:
    """Incremental decoder: feed raw socket bytes, get complete messages.

    Tolerates arbitrary fragmentation — a frame may arrive one byte at a
    time or many frames in one read.  The codec can be switched between
    frames (after the hello/welcome handshake settles negotiation).

    Raises:
        ProtocolError: on an oversized length prefix or a payload the
            active codec cannot decode.  The decoder is unusable after —
            framing has lost sync, the connection must be dropped.
    """

    def __init__(self, codec: str = "json") -> None:
        self.codec = codec
        self._buffer = bytearray()

    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume bytes; return every complete message they finish."""
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds {MAX_FRAME_BYTES} "
                    "(corrupt stream?)")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            # Column frames are self-describing: the magic's leading
            # 0x00 can never open a JSON payload and is not a msgpack
            # map, so dispatch ignores the negotiated codec.
            if payload[:2] == COLUMN_FRAME_MAGIC:
                messages.append(decode_column_frame(payload))
            else:
                messages.append(_decode_payload(payload, self.codec))


# ----------------------------------------------------------------------
# Report <-> wire translation
# ----------------------------------------------------------------------
def report_to_wire(report: TagReport) -> Dict[str, Any]:
    """A ``report`` message for one tag read (trace_io JSONL shape)."""
    return {
        "type": "report",
        "epc": report.epc.to_hex(),
        "timestamp_s": report.timestamp_s,
        "phase_rad": report.phase_rad,
        "rssi_dbm": report.rssi_dbm,
        "doppler_hz": report.doppler_hz,
        "channel_index": report.channel_index,
        "antenna_port": report.antenna_port,
    }


def wire_to_report(message: Dict[str, Any]) -> TagReport:
    """Decode a ``report`` message back into a validated TagReport.

    Raises:
        ProtocolError: on missing fields or values TagReport rejects.
    """
    try:
        return TagReport(
            epc=EPC96.from_hex(message["epc"]),
            timestamp_s=float(message["timestamp_s"]),
            phase_rad=float(message["phase_rad"]),
            rssi_dbm=float(message["rssi_dbm"]),
            doppler_hz=float(message["doppler_hz"]),
            channel_index=int(message["channel_index"]),
            antenna_port=int(message["antenna_port"]),
        )
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise ProtocolError(f"bad report message: {exc}") from exc


def estimate_to_wire(user_id: int, stream_t: float, estimate: Any,
                     drop_counts: Optional[Dict[str, int]] = None,
                     signal: Optional[Tuple[List[float], List[float]]] = None,
                     final: bool = False) -> Dict[str, Any]:
    """An ``estimate`` message from a pipeline UserEstimate.

    Args:
        user_id: the monitored user.
        stream_t: stream time the estimate was computed at.
        estimate: a :class:`repro.core.pipeline.UserEstimate`.
        drop_counts: the session engine's feed drop counters (stable keys,
            see ``TagBreathe.feed_drop_counts``), surfaced so dashboards
            can tell a clean stream from a lossy one.
        signal: optional ``(times, values)`` downsample of the extracted
            breathing signal for UI sparklines.
        final: True on the last estimate before a drain completes.
    """
    message: Dict[str, Any] = {
        "type": "estimate",
        "user_id": user_id,
        "t": stream_t,
        "rate_bpm": estimate.rate_bpm,
        "confidence": estimate.confidence,
        "degraded_reasons": list(estimate.degraded_reasons),
        "estimator": estimate.estimator,
        "motion_gated": estimate.motion_gated,
        "tags_fused": estimate.tags_fused,
        "read_count": estimate.read_count,
        "antenna_port": estimate.antenna_port,
    }
    if drop_counts:
        message["drop_counts"] = dict(drop_counts)
    if signal is not None:
        message["signal"] = {"times": list(signal[0]),
                             "values": list(signal[1])}
    if final:
        message["final"] = True
    return message
