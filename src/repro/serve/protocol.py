"""Wire protocol for the streaming ingest service.

Framing is length-prefixed: every message is a 4-byte big-endian payload
length followed by the encoded payload.  Payloads are JSON objects by
default; a client whose ``hello`` asks for ``codec="msgpack"`` switches
both directions to msgpack *if* the library is available on the server
(it is optional — the container may not ship it), otherwise the server's
``welcome`` answers with the codec actually in force and the client must
follow it.  The ``hello``/``welcome`` handshake itself is always JSON so
the negotiation can never deadlock on an unknown codec.

Report messages mirror the LLRP low-level report shape of
:class:`repro.reader.tagreport.TagReport` — the same seven fields
``repro.sim.trace_io`` persists, so a recorded capture replays over the
wire without translation:

    {"type": "report", "epc": "…24 hex…", "timestamp_s": …,
     "phase_rad": …, "rssi_dbm": …, "doppler_hz": …,
     "channel_index": …, "antenna_port": …}

Message types (client → server): ``hello``, ``report``, ``watch``,
``unwatch``, ``flush``, ``bye``, plus the fabric control verbs ``ping``
(liveness/heartbeat probe), ``migrate_out`` (drain named users' session
state off this server) and ``migrate_in`` (restore session state
migrated from another server).  Server → client: ``welcome``, ``ack``,
``estimate``, ``flushed``, ``draining``, ``error``, ``pong``,
``migrated``.  A ``report`` may carry an optional monotonically
increasing ``seq`` (per ``client_id``): the server remembers the
highest sequence accepted per client — snapshotted into its checkpoint
— and silently drops replays at or below it, which is what lets a
client resend after a reconnect without duplicating data
(idempotent resume; the ``welcome`` answers ``last_seq``).
Estimates on *watch* connections
are additionally available as plain JSONL text (one JSON object per
line) so ``nc`` / ``tail``-style tooling can consume them; see
docs/SERVING.md for the full grammar.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Tuple

from ..epc.codec import EPC96
from ..errors import ProtocolError, ReproError
from ..reader.tagreport import TagReport

try:  # optional accelerated codec; the image may not carry it
    import msgpack  # type: ignore

    HAVE_MSGPACK = True
except ImportError:  # pragma: no cover - depends on environment
    msgpack = None
    HAVE_MSGPACK = False

#: Protocol version spoken by this module.  v2 added the fabric control
#: verbs (``ping``/``pong``, ``migrate_out``/``migrate_in``/``migrated``)
#: and idempotent-resume sequence numbers — all additive, so a v1 client
#: interoperates unchanged.
PROTOCOL_VERSION = 2

#: Hard ceiling on one frame's payload size.  A report frame is ~200
#: bytes; anything near this limit is a corrupt length prefix, not data.
MAX_FRAME_BYTES = 1 << 20

#: The 4-byte big-endian unsigned length prefix.
_HEADER = struct.Struct("!I")

#: Codecs a connection may negotiate.  "json" is always available.
CODECS = ("json",) + (("msgpack",) if HAVE_MSGPACK else ())

#: Message types accepted from clients / emitted by the server.
#: ``flush`` is the ingest barrier: the server answers ``flushed`` only
#: after every queued report has been ingested, giving replay clients a
#: happens-before edge between "bytes sent" and "estimates reflect them".
CLIENT_TYPES = ("hello", "report", "watch", "unwatch", "flush", "bye",
                "ping", "migrate_out", "migrate_in")
SERVER_TYPES = ("welcome", "ack", "estimate", "flushed", "draining",
                "error", "pong", "migrated")


def negotiate_codec(requested: Optional[str]) -> str:
    """The codec the server will speak given a client's request."""
    if requested in CODECS:
        return requested
    return "json"


def _encode_payload(message: Dict[str, Any], codec: str) -> bytes:
    if codec == "json":
        return json.dumps(message, separators=(",", ":"),
                          sort_keys=True).encode("utf-8")
    if codec == "msgpack" and HAVE_MSGPACK:
        return msgpack.packb(message, use_bin_type=True)
    raise ProtocolError(f"unknown codec {codec!r} (available: {CODECS})")


def _decode_payload(payload: bytes, codec: str) -> Dict[str, Any]:
    try:
        if codec == "json":
            message = json.loads(payload.decode("utf-8"))
        elif codec == "msgpack" and HAVE_MSGPACK:
            message = msgpack.unpackb(payload, raw=False)
        else:
            raise ProtocolError(
                f"unknown codec {codec!r} (available: {CODECS})")
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable {codec} payload: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(
            f"frame payload must be an object with a 'type', got {message!r}")
    return message


def encode_frame(message: Dict[str, Any], codec: str = "json") -> bytes:
    """One message as a length-prefixed wire frame.

    Raises:
        ProtocolError: on an unknown codec or an oversized payload.
    """
    payload = _encode_payload(message, codec)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental decoder: feed raw socket bytes, get complete messages.

    Tolerates arbitrary fragmentation — a frame may arrive one byte at a
    time or many frames in one read.  The codec can be switched between
    frames (after the hello/welcome handshake settles negotiation).

    Raises:
        ProtocolError: on an oversized length prefix or a payload the
            active codec cannot decode.  The decoder is unusable after —
            framing has lost sync, the connection must be dropped.
    """

    def __init__(self, codec: str = "json") -> None:
        self.codec = codec
        self._buffer = bytearray()

    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume bytes; return every complete message they finish."""
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds {MAX_FRAME_BYTES} "
                    "(corrupt stream?)")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            messages.append(_decode_payload(payload, self.codec))


# ----------------------------------------------------------------------
# Report <-> wire translation
# ----------------------------------------------------------------------
def report_to_wire(report: TagReport) -> Dict[str, Any]:
    """A ``report`` message for one tag read (trace_io JSONL shape)."""
    return {
        "type": "report",
        "epc": report.epc.to_hex(),
        "timestamp_s": report.timestamp_s,
        "phase_rad": report.phase_rad,
        "rssi_dbm": report.rssi_dbm,
        "doppler_hz": report.doppler_hz,
        "channel_index": report.channel_index,
        "antenna_port": report.antenna_port,
    }


def wire_to_report(message: Dict[str, Any]) -> TagReport:
    """Decode a ``report`` message back into a validated TagReport.

    Raises:
        ProtocolError: on missing fields or values TagReport rejects.
    """
    try:
        return TagReport(
            epc=EPC96.from_hex(message["epc"]),
            timestamp_s=float(message["timestamp_s"]),
            phase_rad=float(message["phase_rad"]),
            rssi_dbm=float(message["rssi_dbm"]),
            doppler_hz=float(message["doppler_hz"]),
            channel_index=int(message["channel_index"]),
            antenna_port=int(message["antenna_port"]),
        )
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise ProtocolError(f"bad report message: {exc}") from exc


def estimate_to_wire(user_id: int, stream_t: float, estimate: Any,
                     drop_counts: Optional[Dict[str, int]] = None,
                     signal: Optional[Tuple[List[float], List[float]]] = None,
                     final: bool = False) -> Dict[str, Any]:
    """An ``estimate`` message from a pipeline UserEstimate.

    Args:
        user_id: the monitored user.
        stream_t: stream time the estimate was computed at.
        estimate: a :class:`repro.core.pipeline.UserEstimate`.
        drop_counts: the session engine's feed drop counters (stable keys,
            see ``TagBreathe.feed_drop_counts``), surfaced so dashboards
            can tell a clean stream from a lossy one.
        signal: optional ``(times, values)`` downsample of the extracted
            breathing signal for UI sparklines.
        final: True on the last estimate before a drain completes.
    """
    message: Dict[str, Any] = {
        "type": "estimate",
        "user_id": user_id,
        "t": stream_t,
        "rate_bpm": estimate.rate_bpm,
        "confidence": estimate.confidence,
        "degraded_reasons": list(estimate.degraded_reasons),
        "tags_fused": estimate.tags_fused,
        "read_count": estimate.read_count,
        "antenna_port": estimate.antenna_port,
    }
    if drop_counts:
        message["drop_counts"] = dict(drop_counts)
    if signal is not None:
        message["signal"] = {"times": list(signal[0]),
                             "values": list(signal[1])}
    if final:
        message["final"] = True
    return message
