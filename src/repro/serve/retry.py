"""Bounded retry with exponential backoff and jitter.

The one retry policy every reconnecting component of the serve stack
shares — :class:`~repro.serve.client.IngestClient` riding through a
server restart, the fabric router's worker links, the supervisor
respawning a crashed worker.  Centralising it keeps the failure
behaviour auditable: a retry budget is *bounded* (an unreachable peer
becomes a typed error, never an infinite loop), delays grow
exponentially up to a ceiling (a flapping worker is not hammered), and
jitter is drawn from a **seeded** generator so tests and chaos runs
replay deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Schedule of delays for a bounded reconnect/retry loop.

    Attributes:
        max_attempts: total tries allowed (first try included); the
            policy yields ``max_attempts - 1`` backoff delays.
        base_delay_s: delay before the first retry.
        multiplier: exponential growth factor between retries.
        max_delay_s: ceiling the grown delay is clamped to.
        jitter: fraction of each delay randomised; the emitted delay is
            uniform in ``[d * (1 - jitter), d * (1 + jitter)]``.  0
            disables jitter (fully deterministic schedule).
    """

    max_attempts: int = 6
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")

    def delays(self, seed: Optional[int] = None) -> Iterator[float]:
        """Yield the backoff delay before each retry, jittered.

        Args:
            seed: seeds the jitter draw; None uses process entropy
                (production), an int makes the schedule reproducible
                (tests, chaos runs).
        """
        rng = random.Random(seed)
        delay = self.base_delay_s
        for _ in range(self.max_attempts - 1):
            jittered = delay
            if self.jitter > 0:
                jittered *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
            yield jittered
            delay = min(delay * self.multiplier, self.max_delay_s)


#: Default policy for client/router reconnects: ~6 tries over ~4 s.
DEFAULT_RETRY = RetryPolicy()

#: Supervisor worker-respawn policy: patient, capped at 5 s between tries.
RESPAWN_RETRY = RetryPolicy(max_attempts=8, base_delay_s=0.1,
                            max_delay_s=5.0)
