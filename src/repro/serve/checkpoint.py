"""Checkpoint/resume of live monitoring sessions.

A serving checkpoint is one JSON document holding, per user, the raw
reports still inside the engine's bounded streaming window plus the
session's cadence clock and drop counters.  Raw reports — not derived
signal state — remain the checkpointed representation even now that the
engine maintains incremental state (Eq. 3 differencing cursors, the
per-user window index, the tick memo): that state is a *pure function*
of the buffered reports, so ``restore_streaming`` rebuilds it
deterministically by replaying them, and restoring the window restores
every subsequent estimate bit for bit (``tests/test_serve.py`` asserts
resume continuity against an uninterrupted run; DESIGN.md §12 covers
the rebuild contract).  Serialising cursor/cache internals would only
buy a faster restore at the price of a schema coupled to pipeline
internals.  The cost is modest: the window is bounded (~4 analysis
windows per tag stream), so a checkpoint is O(users), not O(session
lifetime).

Writes are atomic (temp file + ``os.replace``) so a crash mid-checkpoint
leaves the previous checkpoint intact, never a torn file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Union

from ..errors import ServeError
from ..reader.tagreport import TagReport
from .protocol import report_to_wire, wire_to_report

#: Checkpoint document magic / schema version.
CHECKPOINT_FORMAT = "repro-serve-checkpoint"
CHECKPOINT_VERSION = 1


def _session_to_doc(state: Dict[str, Any]) -> Dict[str, Any]:
    doc = dict(state)
    reports: List[TagReport] = doc.pop("reports")
    doc["reports"] = [report_to_wire(r) for r in reports]
    return doc


def save_checkpoint(path: Union[str, Path],
                    sessions: List[Dict[str, Any]],
                    counters: Dict[str, int]) -> int:
    """Write a checkpoint atomically; returns total reports captured.

    Args:
        path: destination file (parent directory must exist).
        sessions: per-session state dicts from ``UserSession.state()``.
        counters: server-level totals (frames, sheds, connections) so a
            restarted server's metrics keep counting instead of lying
            back to zero.
    """
    path = Path(path)
    doc = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "counters": {k: int(v) for k, v in sorted(counters.items())},
        "sessions": [_session_to_doc(s)
                     for s in sorted(sessions, key=lambda s: s["user_id"])],
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(doc, handle, separators=(",", ":"), sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return sum(len(s["reports"]) for s in doc["sessions"])


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a checkpoint back; reports are decoded into TagReports.

    Returns:
        ``{"counters": {...}, "sessions": [state, ...]}`` where each
        session state carries a ``reports`` list of TagReport objects,
        ready for ``UserSession.restore``.

    Raises:
        ServeError: when the file is missing, not a checkpoint, or a
            newer schema version than this code understands.
    """
    path = Path(path)
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ServeError(f"cannot read checkpoint {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ServeError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != CHECKPOINT_FORMAT:
        raise ServeError(f"{path} is not a repro-serve checkpoint")
    if doc.get("version", 0) > CHECKPOINT_VERSION:
        raise ServeError(
            f"checkpoint {path} is version {doc.get('version')}, "
            f"newer than supported version {CHECKPOINT_VERSION}")
    sessions = []
    try:
        for state in doc.get("sessions", []):
            state = dict(state)
            state["reports"] = [wire_to_report(m) for m in state["reports"]]
            sessions.append(state)
        counters = {k: int(v)
                    for k, v in doc.get("counters", {}).items()}
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed checkpoint {path}: {exc}") from exc
    return {"counters": counters, "sessions": sessions}
