"""Checkpoint/resume of live monitoring sessions.

A serving checkpoint is one JSON document holding, per user, the raw
reports still inside the engine's bounded streaming window plus the
session's cadence clock and drop counters.  Raw reports — not derived
signal state — remain the checkpointed representation even now that the
engine maintains incremental state (Eq. 3 differencing cursors, the
per-user window index, the tick memo): that state is a *pure function*
of the buffered reports, so ``restore_streaming`` rebuilds it
deterministically by replaying them, and restoring the window restores
every subsequent estimate bit for bit (``tests/test_serve.py`` asserts
resume continuity against an uninterrupted run; DESIGN.md §12 covers
the rebuild contract).  Serialising cursor/cache internals would only
buy a faster restore at the price of a schema coupled to pipeline
internals.  The cost is modest: the window is bounded (~4 analysis
windows per tag stream), so a checkpoint is O(users), not O(session
lifetime).

Since v2 the document also carries ``client_seqs`` — the highest report
sequence number accepted per ``client_id`` — snapshotted in the *same*
document as the session windows, so a restored server's duplicate
filter rewinds exactly as far as its session state does (the idempotent
resume contract of :class:`~repro.serve.client.IngestClient`).

Durability is defended in depth (the fabric's chaos harness corrupts
these files mid-write on purpose):

* **atomic** — written to a temp file and ``os.replace``d into place,
  so a crash mid-checkpoint never leaves a torn live file;
* **fsynced** — the temp file is flushed and ``os.fsync``ed *before*
  the rename (and the directory after it, best effort), so the rename
  cannot be reordered ahead of the data hitting disk;
* **verified** — a file that fails to parse or validate raises a typed
  :class:`~repro.errors.CheckpointCorruptError`, never a raw decode
  exception;
* **generational** — the previous good checkpoint survives as
  ``<path>.prev``; :func:`load_checkpoint` falls back to it when the
  live file is corrupt or missing mid-rotation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import CheckpointCorruptError, ServeError
from ..reader.tagreport import TagReport
from .protocol import ProtocolError, report_to_wire, wire_to_report

#: Checkpoint document magic / schema version.
CHECKPOINT_FORMAT = "repro-serve-checkpoint"
#: v2 added ``client_seqs`` (idempotent-resume watermarks); v1 files
#: load fine — the key just defaults to empty.
CHECKPOINT_VERSION = 2


def previous_path(path: Union[str, Path]) -> Path:
    """Where :func:`save_checkpoint` keeps the previous good generation."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


def session_state_to_doc(state: Dict[str, Any]) -> Dict[str, Any]:
    """One session's ``UserSession.state()`` as a JSON-ready document.

    Also the wire shape of fabric shard migration (``migrate_out`` /
    ``migrate_in`` carry lists of exactly these documents), which is
    what makes migration checkpoint-equivalent by construction.
    """
    doc = dict(state)
    reports: List[TagReport] = doc.pop("reports")
    doc["reports"] = [report_to_wire(r) for r in reports]
    return doc


def session_state_from_doc(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`session_state_to_doc` (reports become TagReports).

    Raises:
        CheckpointCorruptError: when the document is malformed.
    """
    try:
        state = dict(doc)
        state["user_id"] = int(state["user_id"])
        state["reports"] = [wire_to_report(m) for m in state["reports"]]
        return state
    except (KeyError, TypeError, ValueError, ProtocolError) as exc:
        raise CheckpointCorruptError(
            f"malformed session document: {exc}") from exc


def save_checkpoint(path: Union[str, Path],
                    sessions: List[Dict[str, Any]],
                    counters: Dict[str, int],
                    client_seqs: Optional[Dict[str, int]] = None,
                    hibernated_docs: Optional[List[Dict[str, Any]]] = None,
                    ) -> int:
    """Write a checkpoint atomically and durably; returns reports captured.

    Args:
        path: destination file (parent directory must exist).
        sessions: per-session state dicts from ``UserSession.state()``.
        counters: server-level totals (frames, sheds, connections) so a
            restarted server's metrics keep counting instead of lying
            back to zero.
        client_seqs: highest accepted report sequence per ``client_id``
            (the duplicate-filter watermarks; omitted = empty).
        hibernated_docs: already wire-shaped session documents from the
            hibernation cold tier (flagged ``"hibernated": true``).
            They land in the same ``sessions`` list as live sessions —
            one uniform schema — without ever inflating an engine.

    The previous live checkpoint, if any, is rotated to ``<path>.prev``
    before the new one lands, so there is always at most one torn
    generation and at least one good one on disk.
    """
    path = Path(path)
    session_docs = [session_state_to_doc(s) for s in sessions]
    session_docs.extend(dict(d) for d in (hibernated_docs or []))
    session_docs.sort(key=lambda d: d["user_id"])
    doc = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "counters": {k: int(v) for k, v in sorted(counters.items())},
        "client_seqs": {str(k): int(v)
                        for k, v in sorted((client_seqs or {}).items())},
        "sessions": session_docs,
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(doc, handle, separators=(",", ":"), sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    if path.exists():
        os.replace(path, previous_path(path))
    os.replace(tmp, path)
    try:  # directory fsync makes the rename itself durable (best effort)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    return sum(len(s["reports"]) for s in doc["sessions"])


def _load_document(path: Path) -> Dict[str, Any]:
    """Parse and validate one checkpoint file (no fallback).

    Raises:
        ServeError: when the file cannot be read at all (missing, EPERM).
        CheckpointCorruptError: when it exists but cannot be trusted.
    """
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ServeError(f"cannot read checkpoint {path}: {exc}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        # Torn write, truncation, or garbage — typed so callers can fall
        # back to the previous generation instead of cold-starting.
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointCorruptError(
            f"{path} is not a repro-serve checkpoint")
    if doc.get("version", 0) > CHECKPOINT_VERSION:
        raise ServeError(
            f"checkpoint {path} is version {doc.get('version')}, "
            f"newer than supported version {CHECKPOINT_VERSION}")
    try:
        sessions = [session_state_from_doc(state)
                    for state in doc.get("sessions", [])]
        counters = {k: int(v)
                    for k, v in doc.get("counters", {}).items()}
        client_seqs = {str(k): int(v)
                       for k, v in doc.get("client_seqs", {}).items()}
    except (TypeError, ValueError, AttributeError) as exc:
        raise CheckpointCorruptError(
            f"malformed checkpoint {path}: {exc}") from exc
    return {"counters": counters, "sessions": sessions,
            "client_seqs": client_seqs, "fallback": False}


def load_checkpoint(path: Union[str, Path],
                    allow_fallback: bool = True) -> Dict[str, Any]:
    """Read a checkpoint back; reports are decoded into TagReports.

    Args:
        path: the live checkpoint file.
        allow_fallback: when True (default) a corrupt or mid-rotation
            missing live file falls back to ``<path>.prev``; the result
            then carries ``"fallback": True``.

    Returns:
        ``{"counters": {...}, "client_seqs": {...}, "sessions": [...],
        "fallback": bool}`` where each session state carries a
        ``reports`` list of TagReport objects, ready for
        ``UserSession.restore``.

    Raises:
        CheckpointCorruptError: the live file is corrupt and no good
            previous generation exists either.
        ServeError: the file is missing (cold start) or a newer schema
            version than this code understands.
    """
    path = Path(path)
    try:
        return _load_document(path)
    except (CheckpointCorruptError, ServeError) as exc:
        prev = previous_path(path)
        if not allow_fallback or not prev.exists():
            raise
        # A missing live file only falls back when a rotation could
        # have been interrupted (a .prev exists); corruption always
        # tries the previous generation.
        doc = _load_document(prev)
        doc["fallback"] = True
        doc["fallback_reason"] = str(exc)
        return doc
