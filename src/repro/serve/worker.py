"""One fabric worker process: a supervised BreathServer shard.

A worker is an ordinary :class:`~repro.serve.server.BreathServer` (same
protocol, same sessions, same checkpoints) wrapped in the small amount
of ceremony a supervised *process* needs:

* **subprocess entry point** — workers are launched as
  ``python -m repro.serve.worker`` subprocesses (never ``fork``, which
  is unsafe under a running asyncio loop, and never multiprocessing
  ``spawn``, which re-imports the *parent's* ``__main__`` and breaks
  under stdin/REPL/pytest launchers); the supervisor forwards its own
  ``sys.path`` through ``PYTHONPATH`` so ``src``-layout checkouts work
  unchanged;
* **port discovery** — workers bind port 0 (no port races across
  restarts) and publish the bound port + pid atomically to a
  *portfile* in the state directory, which is how the supervisor and
  router find them;
* **signal contract** — SIGTERM/SIGINT means *drain*: ingest the
  backlog, publish final estimates, checkpoint, exit 0.  SIGKILL is the
  crash the fabric is built to survive: the next incarnation of the
  worker resumes from the last atomic checkpoint
  (:mod:`repro.serve.checkpoint`), bit-exact mid-breath.

State layout inside the fabric's ``state_dir``::

    worker-003.ckpt        # live checkpoint (atomic, fsynced)
    worker-003.ckpt.prev   # previous good generation
    worker-003.port        # {"port": ..., "pid": ...} (atomic)
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import signal
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Basename pattern for per-worker files inside the fabric state dir.
_WORKER_STEM = "worker-{worker_id:03d}"


def checkpoint_path(state_dir: Union[str, Path], worker_id: int) -> Path:
    """Where worker ``worker_id`` keeps its live checkpoint."""
    return Path(state_dir) / (_WORKER_STEM.format(worker_id=worker_id)
                              + ".ckpt")


def portfile_path(state_dir: Union[str, Path], worker_id: int) -> Path:
    """Where worker ``worker_id`` publishes its bound port and pid."""
    return Path(state_dir) / (_WORKER_STEM.format(worker_id=worker_id)
                              + ".port")


def write_portfile(path: Path, port: int, pid: int) -> None:
    """Publish ``{"port", "pid"}`` atomically (tmp + rename)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps({"port": int(port), "pid": int(pid)},
                              sort_keys=True) + "\n")
    os.replace(tmp, path)


def read_portfile(path: Path) -> Optional[Dict[str, int]]:
    """Parse a portfile; None while absent or torn (caller polls)."""
    try:
        doc = json.loads(path.read_text())
        return {"port": int(doc["port"]), "pid": int(doc["pid"])}
    except (OSError, ValueError, KeyError, TypeError):
        return None


async def _run_worker(worker_id: int, state_dir: Path,
                      options: Dict[str, Any]) -> Dict[str, int]:
    import warnings

    from ..errors import DegradedEstimateWarning
    from .server import BreathServer
    from .session import SessionConfig

    # Degradation is surfaced structurally (degraded_reasons on every
    # estimate message); the Python warning would only spam the
    # supervisor's inherited stderr from N processes at once.
    warnings.simplefilter("ignore", DegradedEstimateWarning)

    session_keys = {f.name for f in dataclasses.fields(SessionConfig)}
    config = SessionConfig(**{k: v for k, v in options.items()
                              if k in session_keys})
    server = BreathServer(
        host=options.get("host", "127.0.0.1"),
        port=0,
        n_shards=int(options.get("n_shards", 2)),
        config=config,
        checkpoint_path=str(checkpoint_path(state_dir, worker_id)),
        checkpoint_interval_s=float(
            options.get("checkpoint_interval_s", 1.0)),
    )
    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)

    async def _orphan_watchdog(parent_pid: int) -> None:
        # Workers run in their own session (so a terminal Ctrl-C only
        # reaches the supervisor), which means a supervisor that dies
        # without draining would leave them ingesting forever.  Getting
        # re-parented (to init/subreaper) is the death certificate:
        # drain, checkpoint, exit.
        while os.getppid() == parent_pid:
            await asyncio.sleep(2.0)
        stop.set()

    watchdog = asyncio.ensure_future(_orphan_watchdog(os.getppid()))
    try:
        await server.start()
        write_portfile(portfile_path(state_dir, worker_id),
                       server.port, os.getpid())
        await server.serve_until(stop)
    finally:
        watchdog.cancel()
    return server.summary()


def worker_main(worker_id: int, state_dir: str,
                options: Dict[str, Any]) -> None:
    """Process entry point for one fabric worker.

    Args:
        worker_id: this worker's stable identity in the fabric; names
            its checkpoint and portfile, so a restarted incarnation
            resumes its predecessor's sessions automatically.
        state_dir: the fabric's shared state directory (must exist).
        options: flat knob dict — any :class:`SessionConfig` field,
            plus ``host``, ``n_shards`` and ``checkpoint_interval_s``.

    Runs until SIGTERM/SIGINT (graceful drain) and exits 0; any other
    exit is a crash the supervisor restarts from checkpoint.
    """
    asyncio.run(_run_worker(worker_id, Path(state_dir), options))


def _cli() -> None:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.serve.worker",
        description="one fabric worker process (launched by the "
                    "supervisor; not meant to be run by hand)")
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument("--state-dir", required=True)
    parser.add_argument("--options", default="{}",
                        help="flat JSON knob dict (SessionConfig fields "
                             "+ host/n_shards/checkpoint_interval_s)")
    args = parser.parse_args()
    worker_main(args.worker_id, args.state_dir, json.loads(args.options))


if __name__ == "__main__":
    _cli()
