"""One fabric worker process: a supervised BreathServer shard.

A worker is an ordinary :class:`~repro.serve.server.BreathServer` (same
protocol, same sessions, same checkpoints) wrapped in the small amount
of ceremony a supervised *process* needs:

* **subprocess entry point** — local workers are launched as
  ``python -c "from repro.serve.worker import _cli; _cli()"``
  subprocesses (never ``fork``, which is unsafe under a running asyncio
  loop, and never multiprocessing ``spawn``, which re-imports the
  *parent's* ``__main__`` and breaks under stdin/REPL/pytest
  launchers); the supervisor forwards its own ``sys.path`` through
  ``PYTHONPATH`` so ``src``-layout checkouts work unchanged;
* **TCP registration** — workers bind port 0 (no port races across
  restarts) and announce the bound port + pid to the supervisor's
  control socket with a two-phase ``join``/``register`` handshake.
  The same handshake serves a worker on *another machine*
  (``repro serve-worker --join host:port``): the ``assign`` reply
  carries the fleet's session knobs, so remote workers are
  configuration-consistent by construction.  The port is also written
  to a local portfile for debugging;
* **signal contract** — SIGTERM/SIGINT means *drain*: ingest the
  backlog, publish final estimates, checkpoint, exit 0.  SIGKILL is the
  crash the fabric is built to survive: the next incarnation of the
  worker resumes from the last atomic checkpoint
  (:mod:`repro.serve.checkpoint`), bit-exact mid-breath;
* **orphan handling** — a supervised worker that loses its parent does
  not die immediately: it hunts for a successor supervisor through
  ``supervisor.addr`` (the warm standby rewrites it on takeover) for
  ``orphan_grace_s``, re-registers if one appears, and only drains
  itself when the grace expires.  Operator-run ``--join`` workers never
  self-drain; they watch heartbeat staleness and keep re-registering.

State layout inside the fabric's ``state_dir``::

    worker-003.ckpt        # live checkpoint (atomic, fsynced)
    worker-003.ckpt.prev   # previous good generation
    worker-003.port        # {"port": ..., "pid": ...} (atomic, debug)
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import signal
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Basename pattern for per-worker files inside the fabric state dir.
_WORKER_STEM = "worker-{worker_id:03d}"

#: Per-message deadline on the registration handshake.
CONTROL_RPC_TIMEOUT_S = 5.0


def checkpoint_path(state_dir: Union[str, Path], worker_id: int) -> Path:
    """Where worker ``worker_id`` keeps its live checkpoint."""
    return Path(state_dir) / (_WORKER_STEM.format(worker_id=worker_id)
                              + ".ckpt")


def portfile_path(state_dir: Union[str, Path], worker_id: int) -> Path:
    """Where worker ``worker_id`` publishes its bound port and pid."""
    return Path(state_dir) / (_WORKER_STEM.format(worker_id=worker_id)
                              + ".port")


def write_portfile(path: Path, port: int, pid: int) -> None:
    """Publish ``{"port", "pid"}`` atomically (tmp + rename)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps({"port": int(port), "pid": int(pid)},
                              sort_keys=True) + "\n")
    os.replace(tmp, path)


def read_portfile(path: Path) -> Optional[Dict[str, int]]:
    """Parse a portfile; None while absent or torn (caller polls)."""
    try:
        doc = json.loads(path.read_text())
        return {"port": int(doc["port"]), "pid": int(doc["pid"])}
    except (OSError, ValueError, KeyError, TypeError):
        return None


# ----------------------------------------------------------------------
# Control-socket client side (registration / supervisor probing)
# ----------------------------------------------------------------------
def parse_addr(spec: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)``.

    Raises:
        ValueError: not in host:port form.
    """
    host, _, port = spec.rpartition(":")
    if not host:
        raise ValueError(f"address {spec!r} is not host:port")
    return host, int(port)


async def control_rpc(addr: Tuple[str, int], message: Dict[str, Any],
                      timeout_s: float = CONTROL_RPC_TIMEOUT_S
                      ) -> Dict[str, Any]:
    """One framed request/reply against a supervisor control socket.

    Raises:
        ConnectionError / OSError / asyncio.TimeoutError: the socket
            is unreachable or silent — callers treat all three as "no
            supervisor there" and move on to the next candidate.
    """
    from .protocol import FrameDecoder, encode_frame

    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(*addr), timeout_s)
    try:
        writer.write(encode_frame(message))
        await writer.drain()
        decoder = FrameDecoder()
        while True:
            data = await asyncio.wait_for(reader.read(65536), timeout_s)
            if not data:
                raise ConnectionError("control socket closed mid-reply")
            messages = decoder.feed(data)
            if messages:
                return messages[0]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def register_with(addrs: Sequence[Tuple[str, int]],
                        worker_id: Optional[int], host: str, port: int,
                        ) -> Optional[Dict[str, Any]]:
    """Two-phase join/register against the first reachable supervisor.

    Returns the ``assign`` reply (worker_id, epoch, fleet options) on
    success — the caller must adopt its ``worker_id`` — or ``None``
    when every candidate address failed.
    """
    for addr in addrs:
        try:
            assign = await control_rpc(
                addr, {"type": "join", "worker_id": worker_id,
                       "pid": os.getpid()})
            if assign.get("type") != "assign":
                continue
            assigned = int(assign["worker_id"])
            registered = await control_rpc(
                addr, {"type": "register", "worker_id": assigned,
                       "host": host, "port": port, "pid": os.getpid()})
            if registered.get("type") != "registered":
                continue
            assign["supervisor"] = list(addr)
            return assign
        except (ConnectionError, OSError, asyncio.TimeoutError,
                ValueError, KeyError):
            continue
    return None


def _supervisor_candidates(state_dir: Path,
                           join_addrs: Sequence[Tuple[str, int]]
                           ) -> List[Tuple[str, int]]:
    """Where a supervisor might be listening right now: the freshest
    ``supervisor.addr`` first (a standby rewrites it on takeover), then
    the original ``--join`` addresses."""
    from .statefiles import read_state_doc, supervisor_addr_path

    candidates: List[Tuple[str, int]] = []
    doc = read_state_doc(supervisor_addr_path(state_dir))
    if doc is not None and doc.get("port") is not None:
        candidates.append((str(doc.get("host", "127.0.0.1")),
                           int(doc["port"])))
    for addr in join_addrs:
        if addr not in candidates:
            candidates.append(addr)
    return candidates


async def _run_worker(worker_id: Optional[int], state_dir: Path,
                      options: Dict[str, Any]) -> Dict[str, int]:
    import warnings

    from ..errors import DegradedEstimateWarning
    from .server import BreathServer
    from .session import SessionConfig

    # Degradation is surfaced structurally (degraded_reasons on every
    # estimate message); the Python warning would only spam the
    # supervisor's inherited stderr from N processes at once.
    warnings.simplefilter("ignore", DegradedEstimateWarning)

    join_addrs = [parse_addr(spec)
                  for spec in options.get("join", []) if spec]
    supervised = bool(options.get("supervised"))
    if worker_id is None:
        # Operator-run worker: ask the supervisor for an identity and
        # the fleet's knobs *before* building the server, so every
        # machine in the fabric runs the same session configuration.
        if not join_addrs:
            raise ValueError("--worker-id or --join is required")
        assign = None
        for addr in _supervisor_candidates(state_dir, join_addrs):
            try:
                assign = await control_rpc(
                    addr, {"type": "join", "worker_id": None,
                           "pid": os.getpid()})
                if assign.get("type") == "assign":
                    break
                assign = None
            except (ConnectionError, OSError, asyncio.TimeoutError):
                assign = None
        if assign is None:
            raise ConnectionError(
                f"no supervisor reachable at {join_addrs}")
        worker_id = int(assign["worker_id"])
        fleet = dict(assign.get("options", {}))
        fleet.pop("host", None)  # bind interface stays a local decision
        fleet.update(options)
        options = fleet

    session_keys = {f.name for f in dataclasses.fields(SessionConfig)}
    config = SessionConfig(**{k: v for k, v in options.items()
                              if k in session_keys})
    server = BreathServer(
        host=options.get("host", "127.0.0.1"),
        port=0,
        n_shards=int(options.get("n_shards", 2)),
        config=config,
        checkpoint_path=str(checkpoint_path(state_dir, worker_id)),
        checkpoint_interval_s=float(
            options.get("checkpoint_interval_s", 1.0)),
    )
    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)

    advertise = options.get("advertise_host") or options.get(
        "host", "127.0.0.1")
    orphan_grace_s = float(options.get("orphan_grace_s", 10.0))
    orphan_poll_s = float(options.get("orphan_poll_s", 2.0))
    rejoin_after_s = float(options.get("rejoin_after_s", 6.0))

    async def _rejoin(deadline: Optional[float]) -> bool:
        """Hunt for a (possibly new) supervisor and re-register; True
        on success.  ``deadline=None`` means one sweep, no waiting."""
        while True:
            reply = await register_with(
                _supervisor_candidates(state_dir, join_addrs),
                worker_id, advertise, server.port)
            if reply is not None:
                server.last_ping_monotonic = time.monotonic()
                return True
            if deadline is None or time.monotonic() >= deadline:
                return False
            await asyncio.sleep(min(orphan_poll_s, 0.5))

    async def _watchdog(parent_pid: Optional[int]) -> None:
        # Two regimes.  A *supervised* worker runs in its own session
        # (so a terminal Ctrl-C only reaches the supervisor): getting
        # re-parented (to init/subreaper) is the parent's death
        # certificate — but no longer an immediate drain.  The worker
        # holds its sessions for orphan_grace_s while a warm standby
        # takes over and rewrites supervisor.addr; only if nobody
        # claims it does it drain, checkpoint, and exit.  After a
        # successful re-adoption (and for operator-run --join workers
        # from the start) there is no parent to watch, so the death
        # signal becomes heartbeat *staleness*.
        while parent_pid is not None:
            if os.getppid() != parent_pid:
                if not await _rejoin(time.monotonic() + orphan_grace_s):
                    stop.set()
                    return
                parent_pid = None  # adopted: switch to staleness watch
                break
            await asyncio.sleep(orphan_poll_s)
        if not join_addrs:
            return  # standalone invocation (tests): nothing to watch
        while True:
            await asyncio.sleep(orphan_poll_s)
            stale = time.monotonic() - server.last_ping_monotonic
            if stale < rejoin_after_s:
                continue
            if not await _rejoin(
                    time.monotonic() + orphan_grace_s
                    if supervised else None):
                if supervised:
                    stop.set()  # grace expired with no supervisor
                    return
                # Operator-run workers are the operator's to stop:
                # keep serving and keep looking.

    watchdog = asyncio.ensure_future(
        _watchdog(os.getppid() if supervised else None))
    try:
        await server.start()
        write_portfile(portfile_path(state_dir, worker_id),
                       server.port, os.getpid())
        if join_addrs:
            registered = await _rejoin(
                time.monotonic() + orphan_grace_s)
            if not registered and supervised:
                raise ConnectionError(
                    f"worker {worker_id} could not register with "
                    f"{join_addrs}")
        await server.serve_until(stop)
    finally:
        watchdog.cancel()
    return server.summary()


def worker_main(worker_id: Optional[int], state_dir: str,
                options: Dict[str, Any]) -> None:
    """Process entry point for one fabric worker.

    Args:
        worker_id: this worker's stable identity in the fabric; names
            its checkpoint and portfile, so a restarted incarnation
            resumes its predecessor's sessions automatically.  ``None``
            asks the supervisor (``options["join"]`` required) to
            assign one.
        state_dir: the fabric's shared state directory (must exist).
        options: flat knob dict — any :class:`SessionConfig` field,
            plus ``host``, ``n_shards``, ``checkpoint_interval_s``,
            ``join`` (list of ``host:port`` supervisor addresses),
            ``supervised`` (launched by a local supervisor),
            ``advertise_host``, ``orphan_grace_s``, ``orphan_poll_s``
            and ``rejoin_after_s``.

    Runs until SIGTERM/SIGINT (graceful drain) and exits 0; any other
    exit is a crash the supervisor restarts from checkpoint.
    """
    asyncio.run(_run_worker(worker_id, Path(state_dir), options))


def _cli() -> None:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.serve.worker",
        description="one fabric worker process (launched by the "
                    "supervisor, or by hand with --join to attach a "
                    "remote machine to a fabric)")
    parser.add_argument("--worker-id", type=int, default=None,
                        help="stable worker identity; omit to have the "
                             "supervisor assign one")
    parser.add_argument("--state-dir", required=True)
    parser.add_argument("--join", default=None,
                        help="comma-separated supervisor control "
                             "addresses (host:port) to register with")
    parser.add_argument("--supervised", action="store_true",
                        help="launched by a local supervisor (drain on "
                             "orphan-grace expiry)")
    parser.add_argument("--advertise", default=None,
                        help="hostname/IP the supervisor should dial "
                             "back (defaults to the bind host)")
    parser.add_argument("--options", default="{}",
                        help="flat JSON knob dict (SessionConfig fields "
                             "+ host/n_shards/checkpoint_interval_s)")
    args = parser.parse_args()
    options = json.loads(args.options)
    if args.join:
        options["join"] = [spec.strip()
                           for spec in args.join.split(",") if spec.strip()]
    if args.supervised:
        options["supervised"] = True
    if args.advertise:
        options["advertise_host"] = args.advertise
    worker_main(args.worker_id, args.state_dir, options)


if __name__ == "__main__":
    _cli()
