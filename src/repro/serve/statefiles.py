"""Shared state-dir files: the fabric's on-disk coordination plane.

Everything a second process needs to find — or take over — a running
fabric lives as small atomic JSON documents inside the fabric's
``state_dir``.  Atomicity is the whole contract: every writer goes
through tmp-file + ``os.replace``, so a reader either sees a complete
previous generation or a complete new one, never a torn write.

Files::

    supervisor.addr        # {"host","port","pid","epoch"} — the live
                           # supervisor's control socket; rewritten
                           # (epoch bumped) on standby takeover
    fabric.json            # worker registry: {"epoch","workers":{id:
                           # {"host","port","pid","spawned"}}}
    router-primary.addr    # {"host","port","pid"} — ingest endpoints,
    router-standby.addr    # one file per role (atomic, no read-modify-
                           # write races between the two routers)

The registry is how a warm-standby router knows the fleet without ever
talking to the primary, and how a promoted supervisor adopts workers it
did not spawn.  ``spawned`` records whether the worker is a local
subprocess of this state dir's machine (adoptable: kill/respawn by
pid) or a remote joiner (supervision is heartbeat-only).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

SUPERVISOR_ADDR_FILE = "supervisor.addr"
REGISTRY_FILE = "fabric.json"
ROUTER_ROLES = ("primary", "standby")


def write_state_doc(path: Union[str, Path], doc: Dict[str, Any]) -> None:
    """Publish one JSON document atomically (tmp + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, sort_keys=True) + "\n")
    os.replace(tmp, path)


def read_state_doc(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Parse one state doc; ``None`` while absent or torn (caller polls)."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def remove_state_doc(path: Union[str, Path]) -> None:
    """Retract a state doc (missing file is fine)."""
    try:
        Path(path).unlink()
    except OSError:
        pass


def supervisor_addr_path(state_dir: Union[str, Path]) -> Path:
    """Where the live supervisor publishes its control-socket address."""
    return Path(state_dir) / SUPERVISOR_ADDR_FILE


def registry_path(state_dir: Union[str, Path]) -> Path:
    """Where the supervisor publishes the worker registry."""
    return Path(state_dir) / REGISTRY_FILE


def router_addr_path(state_dir: Union[str, Path], role: str) -> Path:
    """Where the router of ``role`` ('primary'/'standby') publishes
    its ingest endpoint."""
    if role not in ROUTER_ROLES:
        raise ValueError(f"unknown router role {role!r}")
    return Path(state_dir) / f"router-{role}.addr"


def fabric_endpoints(state_dir: Union[str, Path]) -> List[Tuple[str, int]]:
    """Every published router ingest endpoint, primary first.

    Clients hand this straight to ``IngestClient(endpoints=...)`` so a
    reconnect after a router death rotates onto the standby.
    """
    endpoints: List[Tuple[str, int]] = []
    for role in ROUTER_ROLES:
        doc = read_state_doc(router_addr_path(state_dir, role))
        if doc is not None and "host" in doc and "port" in doc:
            endpoints.append((str(doc["host"]), int(doc["port"])))
    return endpoints
