"""The multi-process serving fabric: router + supervised worker fleet.

:class:`BreathFabric` scales the single-process
:class:`~repro.serve.server.BreathServer` out to N supervised worker
*processes* behind one TCP front door.  The router speaks the same
framed protocol as a plain server — an :class:`IngestClient` cannot
tell the difference — and consistent-hashes every report's ``user_id``
(:mod:`repro.serve.hashring`) onto the worker that owns that user's
session.  Each worker is a full BreathServer shard with its own atomic
checkpoint; the :class:`~repro.serve.supervisor.Supervisor` heartbeats
the fleet and restarts any worker that crashes or wedges, and the
restarted incarnation resumes its sessions from checkpoint, bit-exact.

**The recovery contract is end-to-end and client-driven.**  The router
keeps no report state: when a worker link dies mid-stream, the router
*drops the downstream connection on purpose*.  The ingest client's
bounded retry reconnects, the new handshake's ``last_seq`` answers the
*minimum* accepted sequence across workers — i.e. how far the most
rewound worker (the one restarted from checkpoint) actually got — and
the client resends from there.  Workers that never crashed silently
drop the already-accepted resends via the per-client sequence filter,
so the stream is reconstructed exactly once everywhere.  The engine's
duplicate/late drop accounting remains the backstop for the paths the
sequence filter cannot see (a router restart under a *new* client id),
so even then loss is bounded and *counted*, never silent.

**Rebalancing** (:meth:`BreathFabric.add_worker` /
:meth:`BreathFabric.remove_worker`) is checkpoint-based shard
migration: routing pauses (a barrier every in-flight connection
respects), per-route links flush so the workers' queues are quiescent,
the minimal set of users whose ring arc moved is ``migrate_out`` /
``migrate_in``-ed between live workers, then routing resumes against
the new ring.  Consistent hashing keeps that moved set ~1/N of users.

Operational metrics (router process):
``repro_fabric_routed_reports_total``, ``repro_fabric_worker_restarts_total``,
``repro_fabric_heartbeat_miss_total``, ``repro_fabric_migration_seconds``,
``repro_fabric_link_failures_total``, ``repro_fabric_rebalances_total``.
See docs/SERVING.md's failure-modes matrix for what each failure looks
like and recovers as.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

import numpy as np

from .. import obs
from ..epc.codec import EPC96
from ..errors import (
    EPCFormatError,
    FabricError,
    ProtocolError,
    ServeError,
    ServeTimeoutError,
)
from .client import IngestClient, watch_estimates
from .hashring import HashRing
from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_column_frame,
    encode_frame,
    negotiate_codec,
    negotiate_frames,
    report_to_wire,
)
from .retry import RESPAWN_RETRY
from .server import ACK_EVERY
from .statefiles import (read_state_doc, remove_state_doc,
                         router_addr_path, supervisor_addr_path,
                         write_state_doc)
from .supervisor import FabricConfig, Supervisor
from .worker import control_rpc

#: Socket read chunk size (same as the single-process server).
_READ_CHUNK = 1 << 16

#: Exceptions that mean "this worker link is gone" — the handler drops
#: the downstream connection and lets client-side resume take over.
_LINK_ERRORS = (ConnectionError, ServeTimeoutError, OSError,
                asyncio.IncompleteReadError, FabricError, ServeError)


class _Route:
    """One downstream ingest connection's routing state.

    ``lock`` serialises link use between the connection handler and a
    rebalance (which must flush every route's links while routing is
    paused); handlers only hold it while actually forwarding.
    """

    __slots__ = ("client_id", "codec", "links", "lock", "received",
                 "shed_total", "unsent")

    def __init__(self, client_id: Optional[str], codec: str) -> None:
        self.client_id = client_id
        self.codec = codec
        self.links: Dict[int, IngestClient] = {}
        self.lock = asyncio.Lock()
        self.received = 0
        self.shed_total = 0
        self.unsent: Set[int] = set()  # workers with undrained writes


class BreathFabric:
    """A router + supervised worker fleet behind one ingest port.

    Args:
        state_dir: directory for worker checkpoints and the fabric's
            coordination files; restarting the whole fabric over the
            same directory resumes every worker's sessions.
        config: fleet knobs (:class:`FabricConfig`).
        host / port: the router's listen address (0 = ephemeral; read
            :attr:`port` after :meth:`start`).
        standby: warm-standby mode.  The fabric does not spawn or
            supervise anything; it mirrors the active fabric's worker
            registry from the state dir (so it routes identically — the
            ring is a pure function of the worker-id set), serves
            ingest immediately, and probes the active supervisor's
            control socket.  When the active side goes silent it
            *promotes*: takes over supervision of the fleet (adopting
            the workers through the registry), bumps the supervisor
            epoch, and carries on.  Clients ride across via endpoint
            rotation (:class:`IngestClient` ``endpoints=``) and resume
            from their sequence watermarks.
    """

    def __init__(self, state_dir: Union[str, Path],
                 config: Optional[FabricConfig] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 standby: bool = False) -> None:
        self.config = config if config is not None else FabricConfig()
        self.state_dir = Path(state_dir)
        self.host = host
        self.port = port
        self.standby = standby
        self.role = "standby" if standby else "primary"
        self.supervisor = Supervisor(state_dir, self.config)
        self.ring: Optional[HashRing] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._routes: Set[_Route] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._routing = asyncio.Event()
        self._rebalance_lock = asyncio.Lock()
        self._failover_task: Optional[asyncio.Task] = None
        self._draining = False
        self.counters: Dict[str, int] = {
            "connections_total": 0,
            "routed_reports_total": 0,
            "link_failures_total": 0,
            "rebalances_total": 0,
            "failovers_total": 0,
            "absorbed_workers_total": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn (or mirror) the fleet, build the ring, open the door."""
        if self._server is not None:
            raise FabricError("fabric already started")
        if self.standby:
            await self.supervisor.attach()
            if not self.supervisor.workers:
                raise FabricError(
                    "standby found no worker registry in "
                    f"{self.state_dir}; start the primary fabric first")
            self.supervisor.on_registry_change = self._on_registry_change
        else:
            self.supervisor.on_worker_joined = self._on_worker_joined
            await self.supervisor.start()
        self.ring = HashRing(self.supervisor.worker_ids())
        self._routing.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        write_state_doc(router_addr_path(self.state_dir, self.role), {
            "host": self.host, "port": self.port, "pid": os.getpid()})
        if self.standby:
            self._failover_task = asyncio.ensure_future(
                self._failover_monitor())
        obs.event("fabric.start", host=self.host, port=self.port,
                  role=self.role, workers=len(self.ring.workers))

    async def stop(self, graceful: bool = True) -> None:
        """Close the front door and stop the fleet.

        ``graceful`` lets workers drain and checkpoint (SIGTERM); the
        state directory then holds a complete, resumable snapshot.  A
        never-promoted standby stops only itself — the active fabric's
        fleet is not ours to kill.
        """
        self._draining = True
        self._routing.set()  # unblock handlers parked on the barrier
        if self._failover_task is not None:
            self._failover_task.cancel()
            try:
                await self._failover_task
            except asyncio.CancelledError:
                pass
            self._failover_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        remove_state_doc(router_addr_path(self.state_dir, self.role))
        pending = [t for t in self._conn_tasks if not t.done()]
        if pending:
            _done, stuck = await asyncio.wait(pending, timeout=1.0)
            for task in stuck:
                task.cancel()
            if stuck:
                await asyncio.gather(*stuck, return_exceptions=True)
        await self.supervisor.stop(graceful=graceful)
        obs.event("fabric.stop", graceful=graceful)

    # ------------------------------------------------------------------
    # Introspection / fleet-wide queries
    # ------------------------------------------------------------------
    def owner(self, user_id: int) -> int:
        """The worker id currently owning ``user_id``."""
        if self.ring is None:
            raise FabricError("fabric not started")
        return self.ring.owner(user_id)

    async def fleet_stats(self) -> Dict[str, Any]:
        """Aggregated pong across the fleet (sessions, reports, sheds)."""
        totals = {"sessions": 0, "reports_total": 0, "shed_total": 0,
                  "workers": {}}
        for worker_id in self.supervisor.worker_ids():
            pong = await self.supervisor.ping_worker(worker_id)
            totals["sessions"] += int(pong.get("sessions", 0))
            totals["reports_total"] += int(pong.get("reports_total", 0))
            totals["shed_total"] += int(pong.get("shed_total", 0))
            totals["workers"][worker_id] = pong
        return totals

    async def collect_states(self) -> List[Dict[str, Any]]:
        """Pull every live session's state doc off the fleet (destructive).

        Uses ``migrate_out`` worker by worker — the sessions are
        *removed* from the workers — so this is an end-of-run harvest
        (the chaos harness's streamed-vs-batch comparison), not a probe.
        """
        docs: List[Dict[str, Any]] = []
        for worker_id in self.supervisor.worker_ids():
            docs.extend(await self.supervisor.harvest(worker_id))
        return docs

    # ------------------------------------------------------------------
    # Rebalancing (membership changes)
    # ------------------------------------------------------------------
    async def add_worker(self) -> int:
        """Grow the fleet by one worker and migrate its ring arc to it.

        Returns the new worker id.  Users whose owner did not change
        are untouched (consistent hashing moves ~1/(N+1) of them).
        """
        async with self._rebalance_lock:
            new_id = await self.supervisor.add_worker()
            new_ring = self.ring.with_workers(
                self.supervisor.worker_ids())
            moved = 0
            async with self._pause_routing():
                for src in self.supervisor.worker_ids():
                    if src == new_id:
                        continue
                    users = await self.supervisor.sessions_of(src)
                    to_move = [u for u in users
                               if new_ring.owner(u) == new_id]
                    moved += await self.supervisor.migrate(
                        src, new_id, to_move)
                self.ring = new_ring
            self.counters["rebalances_total"] += 1
            obs.counter("repro_fabric_rebalances_total").inc()
            obs.event("fabric.rebalance", kind="add", worker=new_id,
                      moved=moved, workers=len(new_ring.workers))
            return new_id

    async def remove_worker(self, worker_id: int) -> int:
        """Shrink the fleet: migrate the worker's sessions away, stop it.

        Returns how many sessions moved.  The worker is only terminated
        after every one of its sessions has landed on its new owner.
        """
        async with self._rebalance_lock:
            remaining = [w for w in self.supervisor.worker_ids()
                         if w != worker_id]
            if not remaining:
                raise FabricError("cannot remove the last worker")
            new_ring = self.ring.with_workers(remaining)
            moved = 0
            async with self._pause_routing():
                users = await self.supervisor.sessions_of(worker_id)
                by_dst: Dict[int, List[int]] = {}
                for uid in users:
                    by_dst.setdefault(new_ring.owner(uid), []).append(uid)
                for dst, uids in sorted(by_dst.items()):
                    moved += await self.supervisor.migrate(
                        worker_id, dst, uids)
                self.ring = new_ring
                await self.supervisor.remove_worker(worker_id)
            self.counters["rebalances_total"] += 1
            obs.counter("repro_fabric_rebalances_total").inc()
            obs.event("fabric.rebalance", kind="remove", worker=worker_id,
                      moved=moved, workers=len(new_ring.workers))
            return moved

    # ------------------------------------------------------------------
    # Failover (standby role) and late worker joins
    # ------------------------------------------------------------------
    async def _failover_monitor(self) -> None:
        """Probe the active supervisor's control socket; promote after
        ``max_heartbeat_misses`` consecutive silent intervals.

        The address is re-read from ``supervisor.addr`` every probe, so
        the monitor follows a supervisor that restarts on a new port —
        and a *retracted* address (graceful shutdown removes the file)
        counts as a miss, because a fleet with checkpoints on disk and
        no supervisor is exactly what a warm standby exists to revive.
        """
        misses = 0
        while True:
            await asyncio.sleep(self.config.heartbeat_interval_s)
            addr = read_state_doc(supervisor_addr_path(self.state_dir))
            if (addr is not None and addr.get("port") is not None
                    and int(addr.get("pid", -1)) != os.getpid()):
                try:
                    pong = await control_rpc(
                        (str(addr.get("host", self.config.host)),
                         int(addr["port"])),
                        {"type": "ping"},
                        timeout_s=self.config.heartbeat_timeout_s)
                    if pong.get("type") == "pong":
                        misses = 0
                        continue
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    pass
            misses += 1
            obs.event("fabric.failover.miss", misses=misses)
            if misses >= self.config.max_heartbeat_misses:
                await self.promote()
                return

    async def promote(self) -> None:
        """Take over the fabric: become the supervisor of record.

        Idempotent; safe to call directly (operator-driven failover)
        or from the monitor.  After promotion this fabric heartbeats,
        restarts, and rebalances exactly like a primary — the ingest
        address does not change, so connected clients never notice.
        """
        if not self.standby:
            return
        self.standby = False
        self.counters["failovers_total"] += 1
        obs.counter("repro_fabric_failovers_total").inc()
        with obs.span("fabric.failover", role=self.role):
            self.supervisor.on_registry_change = None
            self.supervisor.on_worker_joined = self._on_worker_joined
            await self.supervisor.takeover()
            self.ring = HashRing(self.supervisor.worker_ids())
        obs.event("fabric.failover.promoted", role=self.role,
                  epoch=self.supervisor.epoch,
                  workers=len(self.ring.workers))

    def _on_registry_change(self) -> None:
        """Standby: mirror the active fabric's membership.  The ring is
        a pure function of the worker-id set, so both routers always
        agree on ownership without talking to each other."""
        ids = self.supervisor.worker_ids()
        if ids and (self.ring is None
                    or tuple(sorted(ids)) != self.ring.workers):
            self.ring = HashRing(ids)
            obs.event("fabric.ring.refresh", workers=len(ids))

    def _on_worker_joined(self, worker_id: int) -> None:
        """An unsolicited registration (remote ``--join`` or a
        rediscovered orphan): fold the newcomer into the ring."""
        asyncio.ensure_future(self._absorb_worker(worker_id))

    async def _absorb_worker(self, worker_id: int) -> None:
        """Migrate the joining worker's ring arc onto it (same dance as
        :meth:`add_worker`, minus the spawn)."""
        try:
            async with self._rebalance_lock:
                if (self.ring is not None
                        and worker_id in self.ring.workers):
                    return  # re-registration, not a membership change
                if worker_id not in self.supervisor.workers:
                    return  # removed before we got the lock
                new_ring = (self.ring.with_workers(
                    self.supervisor.worker_ids()) if self.ring is not None
                    else HashRing(self.supervisor.worker_ids()))
                moved = 0
                async with self._pause_routing():
                    for src in self.supervisor.worker_ids():
                        if src == worker_id:
                            continue
                        users = await self.supervisor.sessions_of(src)
                        to_move = [u for u in users
                                   if new_ring.owner(u) == worker_id]
                        moved += await self.supervisor.migrate(
                            src, worker_id, to_move)
                    self.ring = new_ring
                self.counters["rebalances_total"] += 1
                self.counters["absorbed_workers_total"] += 1
                obs.counter("repro_fabric_rebalances_total").inc()
                obs.event("fabric.rebalance", kind="absorb",
                          worker=worker_id, moved=moved,
                          workers=len(new_ring.workers))
        except _LINK_ERRORS as exc:
            obs.event("fabric.absorb.failed", worker=worker_id,
                      error=str(exc))

    def _pause_routing(self):
        """Context manager: barrier new forwards, quiesce in-flight ones.

        On entry routing is paused (handlers park at the barrier before
        touching links), every route's lock is taken (no forward is
        mid-write), and every route's links are flushed so the workers'
        shard queues are empty — the preconditions ``migrate_out``
        needs for a consistent snapshot.  On exit routing resumes.
        """
        fabric = self

        class _Pause:
            def __init__(self) -> None:
                self.held: List[_Route] = []

            async def __aenter__(self) -> None:
                fabric._routing.clear()
                for route in list(fabric._routes):
                    await route.lock.acquire()
                    self.held.append(route)
                for route in self.held:
                    for worker_id, link in list(route.links.items()):
                        if not link.connected:
                            continue
                        try:
                            await link.drain()
                            await link.flush()
                            route.unsent.discard(worker_id)
                        except _LINK_ERRORS:
                            # A dying link here is the worker-crash path;
                            # the handler will notice and drop downstream.
                            pass

            async def __aexit__(self, *exc) -> None:
                for route in self.held:
                    route.lock.release()
                fabric._routing.set()

        return _Pause()

    # ------------------------------------------------------------------
    # Connection handling (the router data plane)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.counters["connections_total"] += 1
        obs.counter("repro_fabric_connections_total").inc()
        peer = writer.get_extra_info("peername")
        decoder = FrameDecoder("json")
        codec = "json"
        route: Optional[_Route] = None
        try:
            hello = await self._read_one(reader, decoder)
            if hello is None or hello.get("type") != "hello":
                raise ProtocolError("first frame must be 'hello'")
            role = hello.get("role", "ingest")
            codec = negotiate_codec(hello.get("codec"))
            client_id = hello.get("client_id")
            if not isinstance(client_id, str):
                client_id = None
            if role == "watch":
                await self._serve_watch(reader, writer, decoder, codec)
                return
            if role != "ingest":
                raise ProtocolError(f"unknown role {hello.get('role')!r}")
            frames = negotiate_frames(hello.get("frames"))
            route = _Route(client_id, codec)
            # Eager links when resuming matters: the welcome's last_seq
            # must answer the most-rewound worker's watermark, which
            # requires asking all of them before streaming starts.
            last_seq = 0
            if client_id is not None:
                seqs = []
                for worker_id in self.supervisor.worker_ids():
                    link = await self._link(route, worker_id)
                    seqs.append(link.last_seq)
                last_seq = min(seqs) if seqs else 0
            self._routes.add(route)
            writer.write(encode_frame({
                "type": "welcome", "version": PROTOCOL_VERSION,
                "codec": codec, "role": "ingest",
                "frames": list(frames),
                "draining": self._draining,
                "last_seq": last_seq,
            }, "json"))
            await writer.drain()
            decoder.codec = codec
            if self._draining:
                return
            await self._route_loop(reader, writer, decoder, route)
        except ProtocolError as exc:
            obs.counter("repro_fabric_protocol_errors_total").inc()
            try:
                writer.write(encode_frame(
                    {"type": "error", "message": str(exc)}, codec))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except _LINK_ERRORS as exc:
            # A worker link died mid-stream.  Dropping the downstream
            # connection is the *recovery mechanism*, not a bug: the
            # client's bounded retry reconnects and resumes from the
            # fleet's last_seq once the supervisor has the worker back.
            self.counters["link_failures_total"] += 1
            obs.counter("repro_fabric_link_failures_total").inc()
            obs.event("fabric.link.failed", peer=str(peer),
                      error=str(exc))
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            if route is not None:
                self._routes.discard(route)
                for link in route.links.values():
                    await link.close(polite=False)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _read_one(self, reader: asyncio.StreamReader,
                        decoder: FrameDecoder) -> Optional[Dict[str, Any]]:
        while True:
            data = await reader.read(_READ_CHUNK)
            if not data:
                return None
            messages = decoder.feed(data)
            if messages:
                if len(messages) > 1:
                    raise ProtocolError(
                        "client must wait for 'welcome' before streaming")
                return messages[0]

    async def _route_loop(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter,
                          decoder: FrameDecoder, route: _Route) -> None:
        codec = route.codec
        while True:
            data = await reader.read(_READ_CHUNK)
            if not data:
                return
            messages = decoder.feed(data)
            if not messages:
                continue
            await self._routing.wait()  # rebalance barrier (lock-free path)
            async with route.lock:
                for message in messages:
                    mtype = message.get("type")
                    if mtype == "report":
                        await self._forward_report(route, message)
                        if route.received % ACK_EVERY == 0:
                            await self._drain_links(route)
                            writer.write(encode_frame({
                                "type": "ack",
                                "received": route.received,
                                "shed_total": route.shed_total,
                            }, codec))
                            await writer.drain()
                    elif mtype == "report_batch":
                        n = await self._forward_batch(route, message)
                        if n and (route.received // ACK_EVERY
                                  > (route.received - n) // ACK_EVERY):
                            await self._drain_links(route)
                            writer.write(encode_frame({
                                "type": "ack",
                                "received": route.received,
                                "shed_total": route.shed_total,
                            }, codec))
                            await writer.drain()
                    elif mtype == "flush":
                        await self._drain_links(route)
                        for link in route.links.values():
                            if link.connected:
                                flushed = await link.flush()
                                if flushed is None:
                                    raise FabricError(
                                        "worker closed during flush")
                                route.shed_total = max(
                                    route.shed_total,
                                    int(flushed.get("shed_total", 0)))
                        writer.write(encode_frame({
                            "type": "flushed",
                            "received": route.received,
                            "shed_total": route.shed_total,
                        }, codec))
                        await writer.drain()
                    elif mtype == "ping":
                        stats = await self.fleet_stats()
                        writer.write(encode_frame({
                            "type": "pong",
                            "nonce": message.get("nonce"),
                            "sessions": stats["sessions"],
                            "reports_total": stats["reports_total"],
                            "shed_total": stats["shed_total"],
                            "draining": self._draining,
                        }, codec))
                        await writer.drain()
                    elif mtype == "bye":
                        await self._drain_links(route)
                        return
                    elif mtype == "hello":
                        raise ProtocolError("duplicate hello")
                    else:
                        raise ProtocolError(
                            f"unsupported message type {mtype!r} "
                            "on a fabric connection")

    async def _forward_report(self, route: _Route,
                              message: Dict[str, Any]) -> None:
        try:
            user_id = EPC96.from_hex(message.get("epc", "")).user_id
        except (EPCFormatError, TypeError) as exc:
            raise ProtocolError(f"bad report epc: {exc}") from exc
        worker_id = self.ring.owner(user_id)
        link = await self._link(route, worker_id)
        link.write_message(message)
        route.unsent.add(worker_id)
        route.received += 1
        self.counters["routed_reports_total"] += 1
        obs.counter("repro_fabric_routed_reports_total",
                    worker=str(worker_id)).inc()

    async def _forward_batch(self, route: _Route,
                             message: Dict[str, Any]) -> int:
        """Route one column frame, split per owning worker.

        Sub-batches keep their per-row sequence numbers, so the workers'
        duplicate filters see exactly what a per-report stream would
        have carried; each sub-frame is re-encoded binary when the
        worker link granted column frames (always, for our own fleet)
        and falls back to per-report messages otherwise.
        """
        batch = message["batch"]
        seqs = message.get("seqs")
        n = len(batch)
        if not n:
            return 0
        user = batch.user_id
        by_worker: Dict[int, List[int]] = {}
        for uid in np.unique(user).tolist():
            by_worker.setdefault(self.ring.owner(int(uid)), []).append(uid)
        for worker_id, uids in sorted(by_worker.items()):
            if len(by_worker) == 1:
                sub, seq_sub = batch, seqs
            else:
                mask = np.isin(user, np.asarray(uids, dtype=np.uint64))
                sub = batch.select(mask)
                seq_sub = seqs[mask] if seqs is not None else None
            link = await self._link(route, worker_id)
            if link.column_frames:
                link.write_frame(encode_column_frame(sub, seq_sub))
            else:
                for i, report in enumerate(sub.to_reports()):
                    wire = report_to_wire(report)
                    if seq_sub is not None:
                        wire["seq"] = int(seq_sub[i])
                    link.write_message(wire)
            route.unsent.add(worker_id)
            obs.counter("repro_fabric_routed_reports_total",
                        worker=str(worker_id)).inc(len(sub))
        route.received += n
        self.counters["routed_reports_total"] += n
        return n

    async def _drain_links(self, route: _Route) -> None:
        """Push buffered writes to the workers (their backpressure
        propagates to the downstream sender through this await)."""
        for worker_id in sorted(route.unsent):
            link = route.links.get(worker_id)
            if link is not None and link.connected:
                await link.drain()
        route.unsent.clear()

    async def _link(self, route: _Route, worker_id: int) -> IngestClient:
        """The route's link to one worker, (re)connected with patience.

        A worker mid-restart is retried on the supervisor's respawn
        schedule — re-resolving the port each attempt, since restarts
        land on fresh ephemeral ports — before the link is declared
        dead (which tears down the downstream connection).
        """
        link = route.links.get(worker_id)
        if link is not None and link.connected:
            return link
        delays = RESPAWN_RETRY.delays()
        while True:
            try:
                host, port = self.supervisor.address_of(worker_id)
                link = IngestClient(
                    host, port,
                    frames=("column",),
                    client_id=route.client_id,
                    connect_timeout_s=self.config.heartbeat_timeout_s,
                    read_timeout_s=max(
                        30.0, self.config.heartbeat_timeout_s))
                await link.connect()
                route.links[worker_id] = link
                return link
            except _LINK_ERRORS as exc:
                try:
                    delay = next(delays)
                except StopIteration:
                    raise FabricError(
                        f"no link to worker {worker_id}: {exc}") from exc
                await asyncio.sleep(delay)

    # ------------------------------------------------------------------
    # Watch fan-in
    # ------------------------------------------------------------------
    async def _serve_watch(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           decoder: FrameDecoder, codec: str) -> None:
        """Multiplex every worker's estimate stream onto one watcher.

        The subscription set is read from the client's first ``watch``
        frame; estimates from all *current* workers are merged as JSONL
        (workers added by a later rebalance join on the watcher's next
        connection — documented in SERVING.md).
        """
        writer.write(encode_frame({
            "type": "welcome", "version": PROTOCOL_VERSION,
            "codec": codec, "role": "watch",
            "draining": self._draining, "last_seq": 0,
        }, "json"))
        await writer.drain()
        decoder.codec = codec
        watch = await self._read_one(reader, decoder)
        if watch is None:
            return
        if watch.get("type") != "watch":
            raise ProtocolError("watch connections must subscribe first")
        user_id = watch.get("user_id")
        wanted = None if user_id is None else int(user_id)
        queue: asyncio.Queue = asyncio.Queue()

        async def _pump(worker_id: int) -> None:
            try:
                host, port = self.supervisor.address_of(worker_id)
                async for message in watch_estimates(
                        host, port, user_id=wanted):
                    await queue.put(message)
            except _LINK_ERRORS:
                pass  # that worker's stream ends; others keep flowing

        pumps = [asyncio.ensure_future(_pump(w))
                 for w in self.supervisor.worker_ids()]
        eof = asyncio.ensure_future(reader.read(_READ_CHUNK))
        try:
            while True:
                getter = asyncio.ensure_future(queue.get())
                done, _pending = await asyncio.wait(
                    {getter, eof}, return_when=asyncio.FIRST_COMPLETED)
                if eof in done:  # watcher hung up (or sent unwatch/bye)
                    getter.cancel()
                    return
                message = getter.result()
                line = json.dumps(message, separators=(",", ":"),
                                  sort_keys=True) + "\n"
                writer.write(line.encode("utf-8"))
                await writer.drain()
        finally:
            eof.cancel()
            for pump in pumps:
                pump.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)
