"""Clients for the streaming ingest service: replay (load) and watch.

:class:`IngestClient` speaks the framed side of the protocol and doubles
as the **load generator**: :meth:`IngestClient.replay` streams a recorded
capture — simulated via :func:`repro.sim.trace_io.save_trace_csv` or
recorded from hardware — at 1x wall-clock real time, Nx accelerated, or
``speed=0`` (as fast as the server's backpressure admits).  Inter-report
gaps are honoured relative to the capture's own timestamps, so a 5-user
60 s capture at ``speed=4`` takes ~15 s and arrives with realistic
burst structure instead of a single blast.

Failure behaviour is part of the contract (the fabric's chaos suite
exercises every clause):

* **deadlines** — connects and reads carry timeouts; a dead or
  partitioned server raises :class:`~repro.errors.ServeTimeoutError`
  instead of blocking the caller forever;
* **bounded retry** — with a ``client_id``, :meth:`IngestClient.replay`
  rides through server restarts: each disconnect triggers a
  reconnect loop with exponential backoff and jitter
  (:class:`~repro.serve.retry.RetryPolicy`), bounded so an unreachable
  server becomes an error, not a hang;
* **idempotent resume** — reports are stamped with per-client sequence
  numbers; on reconnect the server's ``welcome`` answers ``last_seq``
  (the highest sequence it has accepted, surviving its own
  checkpoint/restore) and the client resends exactly from there, so a
  worker restart duplicates nothing and loses nothing the checkpoint
  covered.

:func:`watch_estimates` is the subscription side: an async iterator over
the server's JSONL estimate stream for one user (or all users).

Synchronous convenience wrappers (:func:`replay_trace`,
:func:`collect_estimates`) run the event loop internally for scripts,
examples, and the ``repro replay`` / ``repro watch`` CLI commands.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import (
    AsyncIterator,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..errors import ProtocolError, ServeError, ServeTimeoutError
from ..reader.batch import ReportBatch
from ..reader.tagreport import TagReport
from .protocol import (
    FrameDecoder,
    encode_column_frame,
    encode_frame,
    report_to_wire,
)
from .retry import DEFAULT_RETRY, RetryPolicy

#: How many report frames to pack into one socket write.
_WRITE_BATCH = 64

#: How many reports to coalesce into one column frame when the server
#: granted the binary frame format (48 bytes/report vs ~200 of JSON).
_COLUMN_BATCH = 256

#: Default deadline for opening a connection + handshake reads.
DEFAULT_CONNECT_TIMEOUT_S = 10.0

#: Default deadline for any single awaited reply (ack/flush/pong).  A
#: healthy server answers a flush as fast as it can ingest the backlog,
#: so a minute of silence means dead, not slow.
DEFAULT_READ_TIMEOUT_S = 60.0


@dataclass
class ReplayStats:
    """What one replay run delivered.

    Attributes:
        sent: reports written to the wire (this call; resends included).
        acked: reports the server acknowledged (from its last ack).
        shed_total: server-side shed counter at the last ack/flush.
        wall_s: wall-clock seconds the replay took.
        retries: reconnect attempts the replay survived.
        resumed_skipped: reports skipped up front because the server's
            ``last_seq`` said a previous incarnation already delivered
            them (idempotent resume).
        bytes_sent: report payload bytes written (framed; excludes
            control messages) — the wire-efficiency numerator.
    """

    sent: int = 0
    acked: int = 0
    shed_total: int = 0
    wall_s: float = 0.0
    retries: int = 0
    resumed_skipped: int = 0
    bytes_sent: int = 0
    errors: List[str] = field(default_factory=list)


class IngestClient:
    """A framed ingest connection to a :class:`~repro.serve.server.BreathServer`.

    Args:
        host / port: server address.
        codec: wire codec to request ("json" always works; "msgpack"
            falls back to json when either side lacks the library).
        frames: binary frame kinds to request in the handshake (e.g.
            ``("column",)``); the server grants the intersection it
            supports, read back on :attr:`column_frames`.  When the
            column format is granted, :meth:`replay` coalesces reports
            into binary column frames instead of per-report messages.
        client_id: stable identity string; enables idempotent resume
            (sequence numbering + ``last_seq``) and makes reconnects
            under the same id tick ``repro_serve_reconnects_total``.
        connect_timeout_s: deadline for TCP connect + handshake
            (None = wait forever, the pre-timeout behaviour).
        read_timeout_s: deadline for any single awaited reply
            (None = wait forever).
        retry: reconnect backoff schedule for :meth:`replay`'s
            ride-through behaviour.
        retry_seed: seeds the backoff jitter (tests/chaos determinism).
        endpoints: alternative servers for the same fabric (e.g. the
            primary and standby routers, from
            :func:`~repro.serve.statefiles.fabric_endpoints`).  Each
            failed stretch of a resumable replay rotates to the next
            endpoint before reconnecting, so a router death rides onto
            its peer without operator action; sequence watermarks make
            the handoff idempotent.  When given, ``host``/``port`` may
            be omitted (the first endpoint is the starting point).
    """

    def __init__(self, host: Optional[str] = None,
                 port: Optional[int] = None, codec: str = "json",
                 frames: Sequence[str] = (),
                 client_id: Optional[str] = None,
                 connect_timeout_s: Optional[float]
                 = DEFAULT_CONNECT_TIMEOUT_S,
                 read_timeout_s: Optional[float] = DEFAULT_READ_TIMEOUT_S,
                 retry: RetryPolicy = DEFAULT_RETRY,
                 retry_seed: Optional[int] = None,
                 endpoints: Optional[Sequence[Tuple[str, int]]] = None
                 ) -> None:
        if endpoints:
            self._endpoints: List[Tuple[str, int]] = [
                (str(h), int(p)) for h, p in endpoints]
        elif host is not None and port is not None:
            self._endpoints = [(host, int(port))]
        else:
            raise ValueError("IngestClient needs host+port or endpoints")
        self._endpoint_index = 0
        self.host, self.port = self._endpoints[0]
        self.requested_codec = codec
        self.codec = codec
        self.requested_frames = tuple(frames)
        #: Frame kinds the server granted (from welcome; empty pre-connect).
        self.frames: tuple = ()
        self.client_id = client_id
        self.connect_timeout_s = connect_timeout_s
        self.read_timeout_s = read_timeout_s
        self.retry = retry
        self.retry_seed = retry_seed
        #: Highest sequence the server reported accepted (from welcome).
        self.last_seq = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._decoder = FrameDecoder("json")
        self._inbox: List[Dict] = []
        self._nonce = 0

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> Dict:
        """Open the connection and complete the hello/welcome handshake.

        Returns:
            The server's ``welcome`` message (``last_seq`` is also kept
            on :attr:`last_seq`).

        Raises:
            ServeError: when the server rejects the handshake.
            ServeTimeoutError: when connect or the handshake reply
                exceeds ``connect_timeout_s``.
        """
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.connect_timeout_s)
        except asyncio.TimeoutError:
            raise ServeTimeoutError(
                f"connect to {self.host}:{self.port} timed out after "
                f"{self.connect_timeout_s}s") from None
        self._decoder = FrameDecoder("json")
        self._inbox = []
        try:
            hello = {"type": "hello", "role": "ingest",
                     "codec": self.requested_codec}
            if self.requested_frames:
                hello["frames"] = list(self.requested_frames)
            if self.client_id is not None:
                hello["client_id"] = self.client_id
            self._writer.write(encode_frame(hello, "json"))
            await self._writer.drain()
            welcome = await self._read_message(
                timeout=self.connect_timeout_s)
            if welcome is None or welcome.get("type") != "welcome":
                raise ServeError(f"handshake failed: {welcome!r}")
        except BaseException:
            # A failed handshake must not leave a half-open connection
            # behind: `connected` stays False and retry loops reconnect
            # from a clean slate.
            await self._teardown()
            raise
        self.codec = welcome.get("codec", "json")
        self._decoder.codec = self.codec
        self.frames = tuple(welcome.get("frames") or ())
        self.last_seq = int(welcome.get("last_seq", 0))
        return welcome

    @property
    def connected(self) -> bool:
        """True while a connection is open."""
        return self._writer is not None

    @property
    def endpoints(self) -> Tuple[Tuple[str, int], ...]:
        """Every endpoint this client rotates across."""
        return tuple(self._endpoints)

    def rotate_endpoint(self) -> Tuple[str, int]:
        """Advance to the next endpoint (round-robin); returns it.

        A no-op with a single endpoint.  Resumable replays call this
        after every failed stretch so a dead router's clients converge
        on its standby within one retry delay.
        """
        self._endpoint_index = ((self._endpoint_index + 1)
                                % len(self._endpoints))
        self.host, self.port = self._endpoints[self._endpoint_index]
        return self.host, self.port

    @property
    def column_frames(self) -> bool:
        """True when the server granted the binary column frame format."""
        return "column" in self.frames

    async def _read_message(self, timeout: Optional[float] = "unset"
                            ) -> Optional[Dict]:
        if timeout == "unset":
            timeout = self.read_timeout_s
        if self._inbox:
            return self._inbox.pop(0)
        while True:
            try:
                data = await asyncio.wait_for(
                    self._reader.read(1 << 16), timeout=timeout)
            except asyncio.TimeoutError:
                raise ServeTimeoutError(
                    f"no reply from {self.host}:{self.port} within "
                    f"{timeout}s") from None
            if not data:
                return None
            messages = self._decoder.feed(data)
            if messages:
                self._inbox.extend(messages[1:])
                return messages[0]

    def _drain_inbox_nowait(self) -> List[Dict]:
        """Decode any already-received frames without blocking."""
        messages = list(self._inbox)
        self._inbox.clear()
        return messages

    async def _teardown(self) -> None:
        """Drop the connection state without a polite bye (it's dead)."""
        writer, self._writer, self._reader = self._writer, None, None
        self._inbox = []
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _report_message(self, report: TagReport,
                        seq: Optional[int]) -> Dict:
        message = report_to_wire(report)
        if seq is not None:
            message["seq"] = seq
        return message

    async def send_report(self, report: TagReport,
                          seq: Optional[int] = None) -> None:
        """Send one tag report (buffered; flushed by the transport)."""
        self._writer.write(
            encode_frame(self._report_message(report, seq), self.codec))
        await self._writer.drain()

    async def send_message(self, message: Dict) -> None:
        """Send one raw protocol message (fabric control plumbing)."""
        self._writer.write(encode_frame(message, self.codec))
        await self._writer.drain()

    def write_message(self, message: Dict) -> None:
        """Buffer one message without draining (router batching path).

        Raises:
            ConnectionResetError: the transport is already closing —
                surfaced here so a dead link fails fast instead of
                buffering into a closed socket.
        """
        if self._writer is None or self._writer.is_closing():
            raise ConnectionResetError("link transport is closed")
        self._writer.write(encode_frame(message, self.codec))

    def write_frame(self, data: bytes) -> None:
        """Buffer one pre-encoded frame (column-frame fan-out path).

        The bytes must already carry their length prefix — the output of
        :func:`~repro.serve.protocol.encode_frame` or
        :func:`~repro.serve.protocol.encode_column_frame`.

        Raises:
            ConnectionResetError: the transport is already closing.
        """
        if self._writer is None or self._writer.is_closing():
            raise ConnectionResetError("link transport is closed")
        self._writer.write(data)

    def _flush_column(self, pending: List[TagReport],
                      first_seq: Optional[int],
                      stats: ReplayStats) -> None:
        """Encode buffered reports as one column frame and clear them."""
        batch = ReportBatch.from_reports(pending)
        seqs = None
        if first_seq is not None:
            seqs = np.arange(first_seq, first_seq + len(pending),
                             dtype=np.uint64)
        data = encode_column_frame(batch, seqs)
        self._writer.write(data)
        stats.bytes_sent += len(data)
        stats.sent += len(pending)
        pending.clear()

    async def drain(self) -> None:
        """Flush buffered writes; blocks under transport backpressure."""
        await self._writer.drain()

    async def _await_type(self, wanted: str,
                          stats: Optional[ReplayStats] = None) -> Dict:
        """Read until a message of ``wanted`` type arrives.

        Acks (and other interleaved traffic) are absorbed into ``stats``
        when given; an ``error`` message raises ProtocolError; EOF
        raises ServeError.
        """
        while True:
            message = await self._read_message()
            if message is None:
                raise ServeError(
                    f"connection closed awaiting {wanted!r}")
            mtype = message.get("type")
            if mtype == wanted:
                return message
            if mtype == "error":
                raise ProtocolError(str(message.get("message")))
            if stats is not None:
                self._absorb(message, stats)

    # ------------------------------------------------------------------
    # Control verbs (heartbeats, migration) — the fabric's plumbing
    # ------------------------------------------------------------------
    async def ping(self, detail: bool = False) -> Dict:
        """Health probe: returns the server's ``pong`` (session counts).

        Raises:
            ServeTimeoutError: no pong within ``read_timeout_s`` — the
                heartbeat miss signal the supervisor acts on.
        """
        self._nonce += 1
        await self.send_message({"type": "ping", "nonce": self._nonce,
                                 "detail": bool(detail)})
        while True:
            pong = await self._await_type("pong")
            if pong.get("nonce") == self._nonce:
                return pong

    async def migrate_out(self, user_ids: Sequence[int]) -> List[Dict]:
        """Ask the server to drain+detach these users; returns state docs."""
        await self.send_message({"type": "migrate_out",
                                 "user_ids": [int(u) for u in user_ids]})
        reply = await self._await_type("migrated")
        return list(reply.get("sessions", []))

    async def migrate_in(self, sessions: List[Dict]) -> int:
        """Restore migrated session documents onto the server."""
        await self.send_message({"type": "migrate_in",
                                 "sessions": list(sessions)})
        reply = await self._await_type("migrated")
        return int(reply.get("count", 0))

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    async def replay(self, reports: Iterable[TagReport],
                     speed: float = 1.0,
                     progress: Optional[Callable[[int], None]] = None,
                     ) -> ReplayStats:
        """Stream a capture, pacing inter-report gaps by ``speed``.

        With a ``client_id`` the replay is **restart-proof**: every
        report carries a sequence number, and a dropped connection is
        retried with backoff; on reconnect the server's ``last_seq``
        says exactly where to resume, so a server/worker restart in the
        middle of a replay neither duplicates nor silently loses
        reports (only data the server's checkpoint never covered is
        re-sent).  Without a ``client_id`` the pre-fabric behaviour is
        kept: a connection error propagates to the caller.

        Args:
            reports: timestamp-ordered reports (a recorded capture).
            speed: time acceleration; 1.0 = real time, 4.0 = 4x, 0 = no
                pacing (as fast as backpressure admits).
            progress: optional callback invoked with the running sent
                count after every write batch.

        Returns:
            ReplayStats (the server's shed counter is read back from the
            terminating ``flushed`` barrier, so `shed_total` is exact).

        Raises:
            ServeError: when the connection was never opened, or the
                reconnect budget was exhausted mid-replay.
            ServeTimeoutError: a reply deadline expired with no retry
                budget left.
        """
        if self._writer is None:
            raise ServeError("connect() before replay()")
        loop = asyncio.get_event_loop()
        t_start = loop.time()
        stats = ReplayStats()
        if self.client_id is not None:
            await self._replay_resumable(list(reports), speed, progress,
                                         stats, loop)
        else:
            await self._replay_simple(reports, speed, progress, stats)
        stats.wall_s = loop.time() - t_start
        return stats

    async def _replay_simple(self, reports: Iterable[TagReport],
                             speed: float,
                             progress: Optional[Callable[[int], None]],
                             stats: ReplayStats) -> None:
        prev_t: Optional[float] = None
        batch = 0
        pending: List[TagReport] = []
        columns = self.column_frames
        threshold = _COLUMN_BATCH if columns else _WRITE_BATCH
        for report in reports:
            if speed > 0 and prev_t is not None:
                gap = (report.timestamp_s - prev_t) / speed
                if gap > 0:
                    if pending:
                        self._flush_column(pending, None, stats)
                    await asyncio.sleep(gap)
            prev_t = report.timestamp_s
            if self._writer.is_closing():
                raise ConnectionResetError("server closed the connection")
            if columns:
                pending.append(report)
            else:
                data = encode_frame(report_to_wire(report), self.codec)
                self._writer.write(data)
                stats.bytes_sent += len(data)
                stats.sent += 1
            batch += 1
            if batch >= threshold:
                if pending:
                    self._flush_column(pending, None, stats)
                await self._writer.drain()
                batch = 0
                if progress is not None:
                    progress(stats.sent)
                for message in self._drain_inbox_nowait():
                    self._absorb(message, stats)
        if pending:
            self._flush_column(pending, None, stats)
        await self._writer.drain()
        flushed = await self.flush()
        if flushed is not None:
            self._absorb(flushed, stats)

    async def _replay_resumable(self, reports: List[TagReport],
                                speed: float,
                                progress: Optional[Callable[[int], None]],
                                stats: ReplayStats,
                                loop: asyncio.AbstractEventLoop) -> None:
        """Sequence-numbered replay that rides through reconnects.

        ``reports[i]`` carries ``seq = i + 1``; the resume index always
        comes from the server's ``last_seq``, so the loop converges no
        matter how far a restarted server's checkpoint rewound.
        """
        index = min(self.last_seq, len(reports))
        stats.resumed_skipped = index
        delays = None  # reset after any progress; built lazily on failure
        progressed_at = index
        while True:
            try:
                if not self.connected:
                    await self.connect()
                    index = min(self.last_seq, len(reports))
                prev_t: Optional[float] = None
                batch = 0
                pending: List[TagReport] = []
                pending_seq = 0
                columns = self.column_frames
                threshold = _COLUMN_BATCH if columns else _WRITE_BATCH
                while index < len(reports):
                    report = reports[index]
                    if speed > 0 and prev_t is not None:
                        gap = (report.timestamp_s - prev_t) / speed
                        if gap > 0:
                            if pending:
                                self._flush_column(
                                    pending, pending_seq, stats)
                            await asyncio.sleep(gap)
                    prev_t = report.timestamp_s
                    if self._writer.is_closing():
                        raise ConnectionResetError(
                            "server closed the connection")
                    if columns:
                        if not pending:
                            pending_seq = index + 1
                        pending.append(report)
                    else:
                        data = encode_frame(
                            self._report_message(report, index + 1),
                            self.codec)
                        self._writer.write(data)
                        stats.bytes_sent += len(data)
                        stats.sent += 1
                    index += 1
                    batch += 1
                    if batch >= threshold:
                        if pending:
                            self._flush_column(pending, pending_seq, stats)
                        await self._writer.drain()
                        batch = 0
                        if progress is not None:
                            progress(stats.sent)
                        for message in self._drain_inbox_nowait():
                            self._absorb(message, stats)
                if pending:
                    self._flush_column(pending, pending_seq, stats)
                await self._writer.drain()
                flushed = await self.flush()
                if flushed is not None:
                    self._absorb(flushed, stats)
                return
            except (ConnectionError, ServeTimeoutError, OSError,
                    asyncio.IncompleteReadError) as exc:
                await self._teardown()
                if len(self._endpoints) > 1:
                    self.rotate_endpoint()
                if index > progressed_at:
                    delays = None  # made progress: fresh retry budget
                    progressed_at = index
                if delays is None:
                    delays = self.retry.delays(seed=self.retry_seed)
                try:
                    delay = next(delays)
                except StopIteration:
                    raise ServeError(
                        f"replay retry budget exhausted "
                        f"({self.retry.max_attempts} attempts) talking "
                        f"to {self.host}:{self.port}: {exc}") from exc
                stats.retries += 1
                stats.errors.append(f"reconnect after: {exc}")
                await asyncio.sleep(delay)

    def _absorb(self, message: Dict, stats: ReplayStats) -> None:
        mtype = message.get("type")
        if mtype in ("ack", "flushed"):
            stats.acked = max(stats.acked, int(message.get("received", 0)))
            stats.shed_total = int(message.get("shed_total", 0))
        elif mtype == "error":
            stats.errors.append(str(message.get("message")))

    async def flush(self) -> Optional[Dict]:
        """Barrier: wait until the server has ingested everything sent.

        Returns:
            The server's ``flushed`` message (None on connection loss).

        Raises:
            ServeTimeoutError: no ``flushed`` within ``read_timeout_s``.
        """
        self._writer.write(encode_frame({"type": "flush"}, self.codec))
        await self._writer.drain()
        while True:
            message = await self._read_message()
            if message is None:
                return None
            if message.get("type") == "flushed":
                return message
            if message.get("type") == "error":
                raise ProtocolError(str(message.get("message")))
            # acks racing the flush barrier are absorbed silently

    async def close(self, polite: bool = True) -> None:
        """Close the connection (``polite`` sends ``bye`` first)."""
        if self._writer is None:
            return
        if polite:
            try:
                self._writer.write(encode_frame({"type": "bye"}, self.codec))
                await self._writer.drain()
            except (ConnectionError, OSError):
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            pass
        self._writer = None
        self._reader = None


async def watch_estimates(host: str, port: int,
                          user_id: Optional[int] = None,
                          codec: str = "json",
                          connect_timeout_s: Optional[float]
                          = DEFAULT_CONNECT_TIMEOUT_S,
                          read_timeout_s: Optional[float] = None,
                          ) -> AsyncIterator[Dict]:
    """Subscribe to a server's estimate stream; yields estimate dicts.

    The iterator ends when the server drains (a ``draining`` message) or
    the connection closes.  ``user_id=None`` subscribes to every user.

    Args:
        connect_timeout_s: deadline for connect + handshake; a dead
            server raises :class:`~repro.errors.ServeTimeoutError`
            instead of blocking forever.
        read_timeout_s: optional per-estimate idle deadline (None =
            wait indefinitely between estimates, the default — estimate
            cadence is workload-defined).
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=connect_timeout_s)
    except asyncio.TimeoutError:
        raise ServeTimeoutError(
            f"connect to {host}:{port} timed out after "
            f"{connect_timeout_s}s") from None
    decoder = FrameDecoder("json")

    async def _read(n: int, timeout: Optional[float]) -> bytes:
        try:
            return await asyncio.wait_for(reader.read(n), timeout=timeout)
        except asyncio.TimeoutError:
            raise ServeTimeoutError(
                f"no data from {host}:{port} within {timeout}s") from None

    async def _readline(timeout: Optional[float]) -> bytes:
        try:
            return await asyncio.wait_for(reader.readline(),
                                          timeout=timeout)
        except asyncio.TimeoutError:
            raise ServeTimeoutError(
                f"no estimate from {host}:{port} within {timeout}s"
            ) from None

    try:
        writer.write(encode_frame(
            {"type": "hello", "role": "watch", "codec": codec}, "json"))
        watch: Dict = {"type": "watch"}
        if user_id is not None:
            watch["user_id"] = int(user_id)
        # Wait for welcome (framed), then subscribe; everything after
        # arrives as JSONL text lines.
        welcome = None
        while welcome is None:
            data = await _read(1 << 16, connect_timeout_s)
            if not data:
                return
            messages = decoder.feed(data)
            if messages:
                welcome = messages[0]
        if welcome.get("type") != "welcome":
            raise ServeError(f"handshake failed: {welcome!r}")
        writer.write(encode_frame(watch, welcome.get("codec", "json")))
        await writer.drain()
        while True:
            line = await _readline(read_timeout_s)
            if not line:
                return
            message = json.loads(line)
            if message.get("type") == "draining":
                return
            if message.get("type") == "estimate":
                yield message
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            pass


# ----------------------------------------------------------------------
# Synchronous conveniences (scripts, examples, CLI)
# ----------------------------------------------------------------------
def replay_trace(source: Union[str, Sequence[TagReport]],
                 host: str, port: int, speed: float = 1.0,
                 client_id: Optional[str] = None,
                 codec: str = "json",
                 frames: Sequence[str] = ()) -> ReplayStats:
    """Replay a capture file (CSV/JSONL) or report list synchronously.

    The blocking face of :meth:`IngestClient.replay` for scripts and the
    ``repro replay`` CLI command.
    """
    if isinstance(source, str):
        from ..sim.trace_io import load_trace

        reports: Sequence[TagReport] = load_trace(source)
    else:
        reports = source

    async def _run() -> ReplayStats:
        client = IngestClient(host, port, codec=codec, frames=frames,
                              client_id=client_id)
        await client.connect()
        try:
            return await client.replay(reports, speed=speed)
        finally:
            await client.close()

    return asyncio.run(_run())


def collect_estimates(host: str, port: int, user_id: Optional[int] = None,
                      limit: Optional[int] = None,
                      timeout_s: Optional[float] = None) -> List[Dict]:
    """Gather estimate messages synchronously (testing/scripting aid).

    Stops after ``limit`` estimates, at server drain, or after
    ``timeout_s`` of total wall time, whichever comes first.
    """

    async def _run() -> List[Dict]:
        collected: List[Dict] = []

        async def _consume() -> None:
            async for message in watch_estimates(host, port, user_id):
                collected.append(message)
                if limit is not None and len(collected) >= limit:
                    return

        try:
            if timeout_s is not None:
                await asyncio.wait_for(_consume(), timeout=timeout_s)
            else:
                await _consume()
        except asyncio.TimeoutError:
            pass
        return collected

    return asyncio.run(_run())
