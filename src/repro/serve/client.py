"""Clients for the streaming ingest service: replay (load) and watch.

:class:`IngestClient` speaks the framed side of the protocol and doubles
as the **load generator**: :meth:`IngestClient.replay` streams a recorded
capture — simulated via :func:`repro.sim.trace_io.save_trace_csv` or
recorded from hardware — at 1x wall-clock real time, Nx accelerated, or
``speed=0`` (as fast as the server's backpressure admits).  Inter-report
gaps are honoured relative to the capture's own timestamps, so a 5-user
60 s capture at ``speed=4`` takes ~15 s and arrives with realistic
burst structure instead of a single blast.

:func:`watch_estimates` is the subscription side: an async iterator over
the server's JSONL estimate stream for one user (or all users).

Synchronous convenience wrappers (:func:`replay_trace`,
:func:`collect_estimates`) run the event loop internally for scripts,
examples, and the ``repro replay`` / ``repro watch`` CLI commands.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import (
    AsyncIterator,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

from ..errors import ProtocolError, ServeError
from ..reader.tagreport import TagReport
from .protocol import FrameDecoder, encode_frame, report_to_wire

#: How many report frames to pack into one socket write.
_WRITE_BATCH = 64


@dataclass
class ReplayStats:
    """What one replay run delivered.

    Attributes:
        sent: reports written to the wire.
        acked: reports the server acknowledged (from its last ack).
        shed_total: server-side shed counter at the last ack/flush.
        wall_s: wall-clock seconds the replay took.
    """

    sent: int = 0
    acked: int = 0
    shed_total: int = 0
    wall_s: float = 0.0
    errors: List[str] = field(default_factory=list)


class IngestClient:
    """A framed ingest connection to a :class:`~repro.serve.server.BreathServer`.

    Args:
        host / port: server address.
        codec: wire codec to request ("json" always works; "msgpack"
            falls back to json when either side lacks the library).
        client_id: stable identity string; reconnects under the same id
            tick the server's ``repro_serve_reconnects_total`` counter.
    """

    def __init__(self, host: str, port: int, codec: str = "json",
                 client_id: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.requested_codec = codec
        self.codec = codec
        self.client_id = client_id
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._decoder = FrameDecoder("json")
        self._inbox: List[Dict] = []

    async def connect(self) -> Dict:
        """Open the connection and complete the hello/welcome handshake.

        Returns:
            The server's ``welcome`` message.

        Raises:
            ServeError: when the server rejects the handshake.
        """
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        hello = {"type": "hello", "role": "ingest",
                 "codec": self.requested_codec}
        if self.client_id is not None:
            hello["client_id"] = self.client_id
        self._writer.write(encode_frame(hello, "json"))
        await self._writer.drain()
        welcome = await self._read_message()
        if welcome is None or welcome.get("type") != "welcome":
            raise ServeError(f"handshake failed: {welcome!r}")
        self.codec = welcome.get("codec", "json")
        self._decoder.codec = self.codec
        return welcome

    async def _read_message(self) -> Optional[Dict]:
        if self._inbox:
            return self._inbox.pop(0)
        while True:
            data = await self._reader.read(1 << 16)
            if not data:
                return None
            messages = self._decoder.feed(data)
            if messages:
                self._inbox.extend(messages[1:])
                return messages[0]

    def _drain_inbox_nowait(self) -> List[Dict]:
        """Decode any already-received frames without blocking."""
        messages = list(self._inbox)
        self._inbox.clear()
        return messages

    async def send_report(self, report: TagReport) -> None:
        """Send one tag report (buffered; flushed by the transport)."""
        self._writer.write(encode_frame(report_to_wire(report), self.codec))
        await self._writer.drain()

    async def replay(self, reports: Iterable[TagReport],
                     speed: float = 1.0,
                     progress: Optional[Callable[[int], None]] = None,
                     ) -> ReplayStats:
        """Stream a capture, pacing inter-report gaps by ``speed``.

        Args:
            reports: timestamp-ordered reports (a recorded capture).
            speed: time acceleration; 1.0 = real time, 4.0 = 4x, 0 = no
                pacing (as fast as backpressure admits).
            progress: optional callback invoked with the running sent
                count after every write batch.

        Returns:
            ReplayStats (the server's shed counter is read back from the
            terminating ``flushed`` barrier, so `shed_total` is exact).

        Raises:
            ServeError: when the connection was never opened.
        """
        if self._writer is None:
            raise ServeError("connect() before replay()")
        loop = asyncio.get_event_loop()
        t_start = loop.time()
        stats = ReplayStats()
        prev_t: Optional[float] = None
        batch = 0
        for report in reports:
            if speed > 0 and prev_t is not None:
                gap = (report.timestamp_s - prev_t) / speed
                if gap > 0:
                    await asyncio.sleep(gap)
            prev_t = report.timestamp_s
            self._writer.write(
                encode_frame(report_to_wire(report), self.codec))
            stats.sent += 1
            batch += 1
            if batch >= _WRITE_BATCH:
                await self._writer.drain()
                batch = 0
                if progress is not None:
                    progress(stats.sent)
                for message in self._drain_inbox_nowait():
                    self._absorb(message, stats)
        await self._writer.drain()
        flushed = await self.flush()
        if flushed is not None:
            self._absorb(flushed, stats)
        stats.wall_s = loop.time() - t_start
        return stats

    def _absorb(self, message: Dict, stats: ReplayStats) -> None:
        mtype = message.get("type")
        if mtype in ("ack", "flushed"):
            stats.acked = max(stats.acked, int(message.get("received", 0)))
            stats.shed_total = int(message.get("shed_total", 0))
        elif mtype == "error":
            stats.errors.append(str(message.get("message")))

    async def flush(self) -> Optional[Dict]:
        """Barrier: wait until the server has ingested everything sent.

        Returns:
            The server's ``flushed`` message (None on connection loss).
        """
        self._writer.write(encode_frame({"type": "flush"}, self.codec))
        await self._writer.drain()
        while True:
            message = await self._read_message()
            if message is None:
                return None
            if message.get("type") == "flushed":
                return message
            if message.get("type") == "error":
                raise ProtocolError(str(message.get("message")))
            # acks racing the flush barrier are absorbed silently

    async def close(self, polite: bool = True) -> None:
        """Close the connection (``polite`` sends ``bye`` first)."""
        if self._writer is None:
            return
        if polite:
            try:
                self._writer.write(encode_frame({"type": "bye"}, self.codec))
                await self._writer.drain()
            except ConnectionError:
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
        self._writer = None
        self._reader = None


async def watch_estimates(host: str, port: int,
                          user_id: Optional[int] = None,
                          codec: str = "json",
                          ) -> AsyncIterator[Dict]:
    """Subscribe to a server's estimate stream; yields estimate dicts.

    The iterator ends when the server drains (a ``draining`` message) or
    the connection closes.  ``user_id=None`` subscribes to every user.
    """
    reader, writer = await asyncio.open_connection(host, port)
    decoder = FrameDecoder("json")
    try:
        writer.write(encode_frame(
            {"type": "hello", "role": "watch", "codec": codec}, "json"))
        watch: Dict = {"type": "watch"}
        if user_id is not None:
            watch["user_id"] = int(user_id)
        # Wait for welcome (framed), then subscribe; everything after
        # arrives as JSONL text lines.
        welcome = None
        while welcome is None:
            data = await reader.read(1 << 16)
            if not data:
                return
            messages = decoder.feed(data)
            if messages:
                welcome = messages[0]
        if welcome.get("type") != "welcome":
            raise ServeError(f"handshake failed: {welcome!r}")
        writer.write(encode_frame(watch, welcome.get("codec", "json")))
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                return
            message = json.loads(line)
            if message.get("type") == "draining":
                return
            if message.get("type") == "estimate":
                yield message
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


# ----------------------------------------------------------------------
# Synchronous conveniences (scripts, examples, CLI)
# ----------------------------------------------------------------------
def replay_trace(source: Union[str, Sequence[TagReport]],
                 host: str, port: int, speed: float = 1.0,
                 client_id: Optional[str] = None,
                 codec: str = "json") -> ReplayStats:
    """Replay a capture file (CSV/JSONL) or report list synchronously.

    The blocking face of :meth:`IngestClient.replay` for scripts and the
    ``repro replay`` CLI command.
    """
    if isinstance(source, str):
        from ..sim.trace_io import load_trace

        reports: Sequence[TagReport] = load_trace(source)
    else:
        reports = source

    async def _run() -> ReplayStats:
        client = IngestClient(host, port, codec=codec, client_id=client_id)
        await client.connect()
        try:
            return await client.replay(reports, speed=speed)
        finally:
            await client.close()

    return asyncio.run(_run())


def collect_estimates(host: str, port: int, user_id: Optional[int] = None,
                      limit: Optional[int] = None,
                      timeout_s: Optional[float] = None) -> List[Dict]:
    """Gather estimate messages synchronously (testing/scripting aid).

    Stops after ``limit`` estimates, at server drain, or after
    ``timeout_s`` of total wall time, whichever comes first.
    """

    async def _run() -> List[Dict]:
        collected: List[Dict] = []

        async def _consume() -> None:
            async for message in watch_estimates(host, port, user_id):
                collected.append(message)
                if limit is not None and len(collected) >= limit:
                    return

        try:
            if timeout_s is not None:
                await asyncio.wait_for(_consume(), timeout=timeout_s)
            else:
                await _consume()
        except asyncio.TimeoutError:
            pass
        return collected

    return asyncio.run(_run())
