"""Chaos harness: prove the fabric recovers, don't just claim it.

:func:`run_chaos` runs a real multi-process fabric over a seeded
simulated capture while a fault injector attacks it, then checks the
only invariant that matters for a breath monitor: **after arbitrary
worker crashes, partitions, and checkpoint corruption, every user's
final streamed estimate equals the batch pipeline's answer** for the
same capture (within the 0.1 bpm bound the serve tests pin on the
clean path).  Faults injected, seeded per run:

* ``kill``    — SIGKILL a random worker mid-ingest.  The supervisor
  restarts it from its atomic checkpoint; the ingest client's
  idempotent resume resends exactly the window the checkpoint had not
  yet covered.
* ``stall``   — SIGSTOP a worker for longer than the heartbeat
  deadline (the router↔worker partition / link-delay case), then
  SIGCONT.  The supervisor's protocol-level probe sees the silence,
  counts ``repro_fabric_heartbeat_miss_total``, and restarts the
  worker.
* ``corrupt`` — overwrite / truncate a worker's *live* checkpoint file
  (a torn write at the worst moment) and then SIGKILL it, forcing
  recovery through the ``.prev`` generation fallback
  (:mod:`repro.serve.checkpoint`).
* ``router kill`` (``router_kill=True``) — the big one: SIGKILL the
  *active router process itself* mid-replay.  The run stands up the
  primary fabric as a subprocess and a warm-standby
  :class:`~repro.serve.fabric.BreathFabric` in-process over the same
  state dir; the client replays with both endpoints
  (``IngestClient(endpoints=...)``).  When the primary dies, the
  client's reconnect rotates onto the standby, the standby's failover
  monitor promotes it (adopting the orphaned workers through the
  on-disk registry), and the replay resumes from the fleet's sequence
  watermarks.  The verdict additionally requires the failover to be
  *observed* (``failovers >= 1`` and client reconnects > 0).

Recovery must be *visible*: the report fails the run if faults were
injected but no worker restart was observed — silent survival usually
means the fault never landed, and a chaos suite that cannot tell is
worthless.  ``repro chaos`` is the CLI face; ``tests/test_chaos.py``
runs a short seeded configuration in CI.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import subprocess
import sys
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import obs
from ..core.pipeline import TagBreathe
from ..errors import DegradedEstimateWarning, InsufficientDataError
from .checkpoint import session_state_from_doc
from .client import IngestClient
from .fabric import BreathFabric
from .retry import RetryPolicy
from .session import SessionConfig, UserSession
from .statefiles import read_state_doc, router_addr_path
from .supervisor import FabricConfig
from .worker import checkpoint_path

#: Replay retry policy for chaos runs: patient enough to ride out a
#: worker respawn (~import cost) several times in one replay.
CHAOS_RETRY = RetryPolicy(max_attempts=12, base_delay_s=0.2,
                          multiplier=1.7, max_delay_s=2.5)


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos run's shape (everything seeded and bounded).

    Attributes:
        users: simulated subjects in the capture.
        duration_s: capture length (stream time, not wall time).
        seed: master seed — capture synthesis, fault schedule, and
            retry jitter all derive from it.
        workers: fabric worker-process count.
        kills / stalls / corruptions: how many of each fault to inject
            (spread across the replay; 0 disables that fault).
        router_kill: run the *router failover* experiment instead of
            worker faults: the primary fabric runs as a subprocess, a
            warm standby runs in-process, and the primary is SIGKILLed
            mid-replay; recovery must flow through the standby.
        fault_interval_s: mean wall-clock gap between injected faults.
        speed: replay acceleration (0 = as fast as backpressure
            admits; the default paces the replay so faults land while
            data is in flight).
        tolerance_bpm: allowed |streamed - batch| per user.
    """

    users: int = 4
    duration_s: float = 60.0
    seed: int = 0
    workers: int = 2
    kills: int = 2
    stalls: int = 1
    corruptions: int = 1
    router_kill: bool = False
    fault_interval_s: float = 2.0
    speed: float = 6.0
    tolerance_bpm: float = 0.1


@dataclass
class ChaosReport:
    """What a chaos run did and whether the invariant held."""

    users: int = 0
    reports: int = 0
    sent: int = 0
    retries: int = 0
    resumed_skipped: int = 0
    kills: int = 0
    stalls: int = 0
    corruptions: int = 0
    router_kills: int = 0
    failovers: int = 0
    restarts_observed: int = 0
    heartbeat_misses: int = 0
    compared_users: int = 0
    max_delta_bpm: float = 0.0
    missing_users: List[int] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    ok: bool = False

    def summary_lines(self) -> List[str]:
        """Human-readable outcome for the CLI."""
        lines = [
            f"chaos: {self.users} users, {self.reports} reports, "
            f"{self.kills} kills / {self.stalls} stalls / "
            f"{self.corruptions} corruptions / "
            f"{self.router_kills} router kill(s)",
            f"failover: {self.failovers} standby promotion(s)",
            f"recovery: {self.restarts_observed} worker restart(s), "
            f"{self.heartbeat_misses} heartbeat miss(es), "
            f"{self.retries} client reconnect(s), "
            f"{self.resumed_skipped} report(s) resumed past",
            f"invariant: {self.compared_users}/{self.users} users "
            f"compared, max |streamed-batch| = "
            f"{self.max_delta_bpm:.4f} bpm",
            f"verdict: {'OK' if self.ok else 'FAILED'}",
        ]
        lines.extend(f"note: {n}" for n in self.notes)
        return lines


def _chaos_fabric_config(workers: int) -> FabricConfig:
    """The tight-timing fleet knobs every chaos fabric (primary,
    standby, subprocess) must share, so failover detection and session
    estimates agree across processes."""
    return FabricConfig(
        workers=workers,
        n_shards=1,
        heartbeat_interval_s=0.25,
        heartbeat_timeout_s=1.0,
        max_heartbeat_misses=2,
        orphan_grace_s=15.0,
        checkpoint_interval_s=0.25,
        session=SessionConfig(estimate_interval_s=5.0),
    )


def _batch_rates(reports, user_ids, window_s: Optional[float]
                 ) -> Dict[int, float]:
    """The batch pipeline's final per-user rates over the full capture."""
    engine = TagBreathe(user_ids=set(user_ids))
    for report in reports:
        engine.feed(report)
    rates: Dict[int, float] = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstimateWarning)
        for uid in user_ids:
            try:
                rates[uid] = engine.estimate_user(
                    uid, window_s=window_s).rate_bpm
            except InsufficientDataError:
                pass
    return rates


def _corrupt_file(path: Path, rng: random.Random) -> bool:
    """Tear a checkpoint file the way a crash mid-write would."""
    try:
        data = path.read_bytes()
    except OSError:
        return False
    if rng.random() < 0.5 and len(data) > 2:
        path.write_bytes(data[:len(data) // 2])  # truncation
    else:
        garbage = bytes(rng.randrange(256) for _ in range(64))
        path.write_bytes(garbage + data[64:])  # scribbled header
    return True


async def _inject_faults(fabric: BreathFabric, config: ChaosConfig,
                         report: ChaosReport,
                         replay_done: asyncio.Event) -> None:
    rng = random.Random(config.seed * 7919 + 1)
    plan = (["kill"] * config.kills + ["stall"] * config.stalls
            + ["corrupt"] * config.corruptions)
    rng.shuffle(plan)
    for action in plan:
        delay = config.fault_interval_s * rng.uniform(0.5, 1.5)
        try:
            await asyncio.wait_for(replay_done.wait(), timeout=delay)
            return  # replay finished; stop injecting
        except asyncio.TimeoutError:
            pass
        workers = fabric.supervisor.worker_ids()
        if not workers:
            continue
        victim = rng.choice(workers)
        handle = fabric.supervisor.workers.get(victim)
        if handle is None or not handle.alive:
            continue
        pid = handle.process.pid
        if action == "kill":
            os.kill(pid, signal.SIGKILL)
            report.kills += 1
            obs.event("chaos.kill", worker=victim, pid=pid)
        elif action == "stall":
            # Longer than max_misses * interval so the heartbeat
            # deadline genuinely expires (a partition, not a blip).
            hold = (fabric.config.heartbeat_interval_s
                    * (fabric.config.max_heartbeat_misses + 2)
                    + fabric.config.heartbeat_timeout_s)
            os.kill(pid, signal.SIGSTOP)
            report.stalls += 1
            obs.event("chaos.stall", worker=victim, pid=pid,
                      hold_s=round(hold, 3))
            await asyncio.sleep(hold)
            try:  # the supervisor may already have killed+replaced it
                os.kill(pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
        else:  # corrupt: tear the live checkpoint, then crash the
            # worker so recovery *must* go through the fallback path.
            if _corrupt_file(
                    checkpoint_path(fabric.supervisor.state_dir, victim),
                    rng):
                report.corruptions += 1
                obs.event("chaos.corrupt", worker=victim)
                os.kill(pid, signal.SIGKILL)
                report.kills += 1


async def _compare_streamed(report: ChaosReport, fabric: BreathFabric,
                            reports, user_ids, session: SessionConfig
                            ) -> None:
    """The invariant: streamed final state == batch pipeline."""
    batch = _batch_rates(reports, user_ids, session.window_s)
    docs = await fabric.collect_states()
    streamed: Dict[int, float] = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstimateWarning)
        for doc in docs:
            state = session_state_from_doc(doc)
            if state["user_id"] not in set(user_ids):
                continue  # contending item tags, not subjects
            local = UserSession(state["user_id"], session)
            local.restore(state, state["reports"])
            message = local.estimate_now()
            if message is not None:
                streamed[state["user_id"]] = message["rate_bpm"]
    report.compared_users = len(set(batch) & set(streamed))
    report.missing_users = sorted(set(batch) - set(streamed))
    for uid in set(batch) & set(streamed):
        delta = abs(batch[uid] - streamed[uid])
        report.max_delta_bpm = max(report.max_delta_bpm, delta)


async def _run_chaos_async(reports, config: ChaosConfig,
                           state_dir: Path) -> ChaosReport:
    report = ChaosReport(users=config.users, reports=len(reports))
    user_ids = sorted({r.user_id for r in reports
                       if 1 <= r.user_id <= config.users})
    fabric_config = _chaos_fabric_config(config.workers)
    session = fabric_config.session
    fabric = BreathFabric(state_dir, fabric_config)
    await fabric.start()
    try:
        client = IngestClient(
            "127.0.0.1", fabric.port, client_id="chaos-replay",
            connect_timeout_s=5.0, read_timeout_s=10.0,
            retry=CHAOS_RETRY, retry_seed=config.seed)
        await client.connect()
        replay_done = asyncio.Event()
        injector = asyncio.ensure_future(
            _inject_faults(fabric, config, report, replay_done))
        try:
            stats = await client.replay(reports, speed=config.speed)
        finally:
            replay_done.set()
            await injector
            await client.close(polite=False)
        report.sent = stats.sent
        report.retries = stats.retries
        report.resumed_skipped = stats.resumed_skipped
        report.restarts_observed = sum(
            h.restarts for h in fabric.supervisor.workers.values())
        report.heartbeat_misses = sum(
            h.total_misses for h in fabric.supervisor.workers.values())
        await _compare_streamed(report, fabric, reports, user_ids, session)
    finally:
        await fabric.stop(graceful=True)
    _verdict(report, config)
    return report


def _verdict(report: ChaosReport, config: ChaosConfig) -> None:
    faults = report.kills + report.stalls + report.corruptions
    report.ok = True
    if report.missing_users:
        report.ok = False
        report.notes.append(
            f"users lost their session entirely: {report.missing_users}")
    if report.max_delta_bpm > config.tolerance_bpm:
        report.ok = False
        report.notes.append(
            f"streamed diverged from batch by {report.max_delta_bpm:.4f} "
            f"bpm (> {config.tolerance_bpm})")
    if faults > 0 and report.restarts_observed == 0:
        report.ok = False
        report.notes.append(
            "faults were injected but no worker restart was observed — "
            "recovery must be visible, not assumed")
    if report.router_kills > 0:
        # Failover must be *observed*, not assumed: the standby has to
        # have promoted itself, and the client has to have actually
        # ridden a reconnect (a kill the replay never felt never
        # exercised the path).
        if report.failovers == 0:
            report.ok = False
            report.notes.append(
                "router was killed but the standby never promoted")
        if report.retries == 0:
            report.ok = False
            report.notes.append(
                "router was killed but the client never reconnected — "
                "the kill landed after the replay finished")


async def _run_failover_async(reports, config: ChaosConfig,
                              state_dir: Path) -> ChaosReport:
    """The router-kill experiment: primary as a subprocess, warm
    standby in-process, SIGKILL the primary mid-replay, recover
    through the standby."""
    report = ChaosReport(users=config.users, reports=len(reports))
    user_ids = sorted({r.user_id for r in reports
                       if 1 <= r.user_id <= config.users})
    fabric_config = _chaos_fabric_config(config.workers)
    session = fabric_config.session
    rng = random.Random(config.seed * 7919 + 3)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in sys.path if p] +
        [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
    primary = subprocess.Popen(
        [sys.executable, "-c",
         "from repro.serve.chaos import _fabric_main; _fabric_main()",
         "--state-dir", str(state_dir),
         "--workers", str(config.workers)],
        env=env, stdin=subprocess.DEVNULL, start_new_session=True)
    standby: Optional[BreathFabric] = None
    try:
        deadline = time.monotonic() + 60.0
        while True:  # wait for the primary's router endpoint
            doc = read_state_doc(router_addr_path(state_dir, "primary"))
            if doc is not None and doc.get("pid") == primary.pid:
                primary_addr = (str(doc["host"]), int(doc["port"]))
                break
            if primary.poll() is not None:
                raise RuntimeError(
                    f"primary fabric exited during startup "
                    f"(exitcode {primary.returncode})")
            if time.monotonic() > deadline:
                raise RuntimeError("primary fabric never published "
                                   "its router address")
            await asyncio.sleep(0.05)
        standby = BreathFabric(state_dir, fabric_config, standby=True)
        await standby.start()
        obs.event("chaos.failover.up", primary=primary_addr,
                  standby=(standby.host, standby.port))

        client = IngestClient(
            endpoints=[primary_addr, (standby.host, standby.port)],
            client_id="chaos-replay",
            connect_timeout_s=5.0, read_timeout_s=10.0,
            retry=CHAOS_RETRY, retry_seed=config.seed)
        await client.connect()

        async def _kill_router() -> None:
            await asyncio.sleep(
                config.fault_interval_s * rng.uniform(0.8, 1.2))
            os.kill(primary.pid, signal.SIGKILL)
            primary.wait()
            report.router_kills += 1
            obs.event("chaos.router_kill", pid=primary.pid)

        killer = asyncio.ensure_future(_kill_router())
        try:
            stats = await client.replay(reports, speed=config.speed)
        finally:
            await killer
            await client.close(polite=False)
        report.sent = stats.sent
        report.retries = stats.retries
        report.resumed_skipped = stats.resumed_skipped

        # The standby promotes on its own clock; the replay usually
        # outlives the detection window, but never assume it.
        deadline = time.monotonic() + fabric_config.orphan_grace_s
        while standby.standby and time.monotonic() < deadline:
            await asyncio.sleep(0.1)
        report.failovers = standby.counters["failovers_total"]
        report.restarts_observed = sum(
            h.restarts for h in standby.supervisor.workers.values())
        report.heartbeat_misses = sum(
            h.total_misses for h in standby.supervisor.workers.values())
        await _compare_streamed(report, standby, reports, user_ids,
                                session)
    finally:
        if standby is not None:
            await standby.stop(graceful=True)
        if primary.poll() is None:
            primary.kill()
            primary.wait()
    _verdict(report, config)
    return report


def _fabric_main() -> None:
    """Subprocess entry point: one primary chaos fabric until SIGTERM.

    Launched by the router-kill experiment (and nothing else) so there
    is a real router *process* to SIGKILL; the knobs come from
    :func:`_chaos_fabric_config` in both processes, keeping session
    configuration identical across the failover boundary.
    """
    import argparse

    parser = argparse.ArgumentParser(prog="repro.serve.chaos._fabric_main")
    parser.add_argument("--state-dir", required=True)
    parser.add_argument("--workers", type=int, required=True)
    args = parser.parse_args()

    async def _run() -> None:
        fabric = BreathFabric(args.state_dir,
                              _chaos_fabric_config(args.workers))
        stop = asyncio.Event()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        await fabric.start()
        await stop.wait()
        await fabric.stop(graceful=True)

    asyncio.run(_run())


def run_chaos(config: Optional[ChaosConfig] = None,
              state_dir: Optional[Union[str, Path]] = None) -> ChaosReport:
    """Run one full chaos experiment; returns the verdict report.

    Args:
        config: run shape (defaults are CI-sized: ~2 workers, a few
            faults, a 4-user minute of breathing).
        state_dir: fabric state directory (default: a fresh temp dir,
            removed afterwards).

    The capture is simulated fresh from ``config.seed`` so the run is
    self-contained; the batch baseline is computed from the *same*
    in-memory reports the replay streams.
    """
    import tempfile

    from ..bench import benchmark_scenario
    from ..sim.engine import run_scenario

    config = config if config is not None else ChaosConfig()
    scenario = benchmark_scenario(config.users, seed=config.seed)
    result = run_scenario(scenario, duration_s=config.duration_s,
                          seed=config.seed)

    def _run(directory: Path) -> ChaosReport:
        runner = (_run_failover_async if config.router_kill
                  else _run_chaos_async)
        return asyncio.run(runner(result.reports, config, directory))

    if state_dir is not None:
        Path(state_dir).mkdir(parents=True, exist_ok=True)
        return _run(Path(state_dir))
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        return _run(Path(tmp))
