"""Consistent hashing of users onto fabric workers.

The fabric router must answer "which worker owns user *u*" such that

* the answer is **stable**: the same ``(user_id, worker set)`` always
  maps to the same worker, across processes and Python versions — so a
  restarted router routes exactly like its predecessor (hashes are
  SHA-1 based, never ``hash()``, which is salted per process);
* the mapping is **balanced**: with ``vnodes`` virtual nodes per worker
  the per-worker load stays within a small factor of the mean;
* membership changes are **minimal**: adding or removing one worker
  moves only the keys that land on its virtual arcs (~1/N of users),
  which is what makes checkpoint-based shard migration affordable.

This is the textbook ring (SNIPPETS.md's service-mesh exemplars use the
same construction); it lives in its own module so the property tests in
``tests/test_fabric.py`` can pin stability and balance without touching
any networking.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import FabricError

#: Virtual nodes per worker; 64 keeps the max/mean load factor < ~1.4
#: for small worker counts while the ring stays tiny (N * 64 entries).
DEFAULT_VNODES = 64


def _hash64(data: bytes) -> int:
    """First 8 bytes of SHA-1 as an unsigned int (process-stable)."""
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring mapping integer user ids to worker ids.

    Args:
        workers: worker identifiers (typically ``range(n_workers)``).
        vnodes: virtual nodes per worker.

    Raises:
        FabricError: on an empty worker set, duplicate workers, or a
            non-positive vnode count.
    """

    def __init__(self, workers: Sequence[int],
                 vnodes: int = DEFAULT_VNODES) -> None:
        workers = list(workers)
        if not workers:
            raise FabricError("hash ring needs at least one worker")
        if len(set(workers)) != len(workers):
            raise FabricError(f"duplicate workers in ring: {workers}")
        if vnodes < 1:
            raise FabricError(f"vnodes must be >= 1, got {vnodes}")
        self.workers: Tuple[int, ...] = tuple(sorted(workers))
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for worker in self.workers:
            for v in range(vnodes):
                points.append((_hash64(b"worker:%d:%d" % (worker, v)),
                               worker))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [w for _, w in points]

    def owner(self, user_id: int) -> int:
        """The worker that owns ``user_id`` (first vnode clockwise)."""
        h = _hash64(b"user:%d" % user_id)
        index = bisect_right(self._points, h)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignments(self, user_ids: Iterable[int]) -> Dict[int, int]:
        """``{user_id: worker}`` for a batch of users."""
        return {uid: self.owner(uid) for uid in user_ids}

    def load(self, user_ids: Iterable[int]) -> Dict[int, int]:
        """``{worker: user count}`` over a batch (all workers present)."""
        counts = dict.fromkeys(self.workers, 0)
        for uid in user_ids:
            counts[self.owner(uid)] += 1
        return counts

    def with_workers(self, workers: Sequence[int]) -> "HashRing":
        """A new ring over a different worker set (same vnode count)."""
        return HashRing(workers, vnodes=self.vnodes)
