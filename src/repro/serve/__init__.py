"""``repro.serve`` — the streaming ingest service.

Turns the reproduction from a batch library into a long-running monitor:
a framed TCP server ingests LLRP-shaped tag reports, sharded per-user
sessions drive the incremental pipeline (``TagBreathe.feed`` /
``estimate_user``), and per-user breathing estimates fan out to
subscribers as a JSONL stream — with service-grade backpressure,
load shedding, checkpoint/resume, and graceful drain.

Layout:

* :mod:`repro.serve.protocol` — length-prefixed msgpack/JSON framing,
  report and estimate wire shapes;
* :mod:`repro.serve.session` — per-user sessions, sharded workers,
  watermark backpressure and shed-oldest queues;
* :mod:`repro.serve.checkpoint` — atomic, fsynced, generational
  session-state save/load;
* :mod:`repro.serve.hibernate` — compressed cold storage for idle
  sessions (per-user budgets, idle sweep, lazy bit-exact wake);
* :mod:`repro.serve.server` — the asyncio TCP server;
* :mod:`repro.serve.client` — replay (load generator) and watch clients
  with deadlines, bounded retry, and idempotent resume;
* :mod:`repro.serve.retry` — the shared backoff policy;
* :mod:`repro.serve.hashring` — consistent hashing of users onto
  workers;
* :mod:`repro.serve.worker` / :mod:`repro.serve.supervisor` /
  :mod:`repro.serve.fabric` — the multi-machine scale-out fabric:
  supervised worker processes behind a consistent-hash router, joined
  over a TCP control socket (``repro serve-worker --join``), with
  heartbeat-driven restart from checkpoint, live shard migration, and
  a warm-standby router (``repro serve --standby``) that promotes
  itself when the primary dies;
* :mod:`repro.serve.statefiles` — the on-disk coordination plane
  (supervisor address, worker registry, router endpoints; all atomic);
* :mod:`repro.serve.chaos` — the fault-injection harness that proves
  the recovery story, worker kills and router failover alike
  (``repro chaos [--router-kill]``).

See docs/SERVING.md for the wire grammar and operational semantics, and
``repro serve`` / ``repro replay`` / ``repro watch`` for the CLI faces.
"""

from .chaos import ChaosConfig, ChaosReport, run_chaos
from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    load_checkpoint,
    previous_path,
    save_checkpoint,
    session_state_from_doc,
    session_state_to_doc,
)
from .client import (
    IngestClient,
    ReplayStats,
    collect_estimates,
    replay_trace,
    watch_estimates,
)
from .fabric import BreathFabric
from .hashring import DEFAULT_VNODES, HashRing
from .retry import DEFAULT_RETRY, RESPAWN_RETRY, RetryPolicy
from .protocol import (
    CODECS,
    COLUMN_FRAME_VERSION,
    FRAME_KINDS,
    HAVE_MSGPACK,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    decode_column_frame,
    encode_column_frame,
    encode_frame,
    estimate_to_wire,
    negotiate_codec,
    negotiate_frames,
    report_to_wire,
    wire_to_report,
)
from .hibernate import HibernationStore, blob_to_doc, doc_to_blob
from .server import ACK_EVERY, BreathServer
from .session import SessionConfig, SessionShard, UserSession
from .statefiles import (
    fabric_endpoints,
    read_state_doc,
    registry_path,
    router_addr_path,
    supervisor_addr_path,
    write_state_doc,
)
from .supervisor import FabricConfig, Supervisor, WorkerHandle
from .worker import control_rpc, parse_addr, register_with, worker_main

__all__ = [
    "BreathServer", "ACK_EVERY",
    "SessionConfig", "SessionShard", "UserSession",
    "HibernationStore", "doc_to_blob", "blob_to_doc",
    "IngestClient", "ReplayStats", "replay_trace", "watch_estimates",
    "collect_estimates",
    "FrameDecoder", "encode_frame", "report_to_wire", "wire_to_report",
    "estimate_to_wire", "negotiate_codec", "negotiate_frames",
    "encode_column_frame", "decode_column_frame",
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "CODECS", "HAVE_MSGPACK",
    "FRAME_KINDS", "COLUMN_FRAME_VERSION",
    "save_checkpoint", "load_checkpoint", "previous_path",
    "session_state_to_doc", "session_state_from_doc",
    "CHECKPOINT_FORMAT", "CHECKPOINT_VERSION",
    "RetryPolicy", "DEFAULT_RETRY", "RESPAWN_RETRY",
    "HashRing", "DEFAULT_VNODES",
    "BreathFabric", "FabricConfig", "Supervisor", "WorkerHandle",
    "control_rpc", "parse_addr", "register_with", "worker_main",
    "read_state_doc", "write_state_doc", "supervisor_addr_path",
    "registry_path", "router_addr_path", "fabric_endpoints",
    "ChaosConfig", "ChaosReport", "run_chaos",
]
