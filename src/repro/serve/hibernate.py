"""Compressed cold storage for idle monitoring sessions.

Real fleets are idle-heavy: of a million registered users, only a few
percent are breathing into the system at any instant, yet every
registered session would otherwise keep its full differencing chains,
window index, and buffered reports resident forever.  The
:class:`HibernationStore` is the cold tier that fixes the economics: an
idle session's checkpoint document (the exact wire shape
:func:`repro.serve.checkpoint.session_state_to_doc` produces — already
proven sufficient to rebuild the engine bit-exactly by the
checkpoint/resume and migration paths) is serialised to canonical
compact JSON, deflated, and parked as one ``bytes`` blob per user.

The blob *is* the session: hibernated users ride checkpoints and shard
migration as their documents without ever materialising a
``TagBreathe`` engine, and the next report for a hibernated user
inflates the blob back into a live :class:`~repro.serve.session.UserSession`
whose subsequent estimates are bit-identical to an uninterrupted
session's (``tests/test_lifecycle.py`` pins the property).

A breathing session's document compresses to a few KB — two to three
orders of magnitude below the resident numpy/object state it replaces —
which is what makes the 1M-registered / 1%-active scenario of
``run_idle_economics_benchmark`` fit on one machine.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: zlib level: 6 is the speed/size knee for these highly repetitive
#: JSON documents (level 9 buys ~2 % at ~2x the CPU).
_COMPRESS_LEVEL = 6

#: Estimated per-entry bookkeeping bytes beyond the blob payload: the
#: bytes-object header (~33 B), the boxed int key (~28 B), and the
#: amortised dict slot (~100 B).  Folded into :meth:`resident_bytes` so
#: the idle-economics numbers reflect what the process actually holds.
ENTRY_OVERHEAD_BYTES = 160


def compress_doc_text(text: str) -> bytes:
    """Deflate one already-canonicalised document string.

    Exposed for the idle-economics benchmark's bulk registration, which
    rewrites a template document per user and must produce blobs
    byte-identical to what :func:`doc_to_blob` would have made.
    """
    return zlib.compress(text.encode("utf-8"), _COMPRESS_LEVEL)


def doc_to_blob(doc: Dict[str, Any]) -> bytes:
    """Serialise one checkpoint-shaped session document to a cold blob.

    Canonical compact JSON (sorted keys, no whitespace) before deflate,
    so equal states produce byte-equal blobs.
    """
    return compress_doc_text(
        json.dumps(doc, separators=(",", ":"), sort_keys=True))


def blob_to_doc(blob: bytes) -> Dict[str, Any]:
    """Inflate a cold blob back to its session document."""
    return json.loads(zlib.decompress(blob).decode("utf-8"))


class HibernationStore:
    """Per-shard map of ``user_id -> compressed session document``.

    Mutated only from the owning shard's asyncio worker context, like
    the live session dict it shadows — no locking.
    """

    def __init__(self) -> None:
        self._blobs: Dict[int, bytes] = {}

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._blobs

    def put(self, user_id: int, doc: Dict[str, Any]) -> int:
        """Park one session document; returns the blob's size in bytes."""
        blob = doc_to_blob(doc)
        self._blobs[user_id] = blob
        return len(blob)

    def put_blob(self, user_id: int, blob: bytes) -> None:
        """Park an already-compressed document (bulk-registration path)."""
        self._blobs[user_id] = blob

    def blob(self, user_id: int) -> bytes:
        """The raw compressed blob for one parked user (no inflate)."""
        return self._blobs[user_id]

    def get(self, user_id: int) -> Optional[Dict[str, Any]]:
        """Inflate one parked document without removing it."""
        blob = self._blobs.get(user_id)
        return None if blob is None else blob_to_doc(blob)

    def pop(self, user_id: int) -> Optional[Dict[str, Any]]:
        """Remove and inflate one parked document (the wake path)."""
        blob = self._blobs.pop(user_id, None)
        return None if blob is None else blob_to_doc(blob)

    def discard(self, user_id: int) -> bool:
        """Drop one parked document without inflating it."""
        return self._blobs.pop(user_id, None) is not None

    def user_ids(self) -> List[int]:
        """Parked users, sorted."""
        return sorted(self._blobs)

    def docs(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Iterate ``(user_id, document)`` in user order (checkpointing)."""
        for user_id in sorted(self._blobs):
            yield user_id, blob_to_doc(self._blobs[user_id])

    def resident_bytes(self) -> int:
        """Approximate bytes this store keeps resident (blobs + entries)."""
        return sum(len(blob) + ENTRY_OVERHEAD_BYTES
                   for blob in self._blobs.values())

    def clear(self) -> None:
        self._blobs.clear()
