"""The asyncio streaming ingest server: TagBreathe as a live service.

:class:`BreathServer` accepts framed TCP connections
(:mod:`repro.serve.protocol`), routes each tag report to the shard that
owns its user (:mod:`repro.serve.session`), and fans per-user breathing
estimates out to subscribed *watch* connections as a JSONL stream — the
paper's "realtime" prototype (Section V) turned into a long-running
monitor the ROADMAP's heavy-traffic north star asks for.

Service behaviours, in the order they matter at 3 a.m.:

* **backpressure** — per-connection: while the owning shard's backlog
  is above its high watermark the handler stops reading the socket
  (TCP pushes back on the sender) and resumes below the low watermark;
* **load shedding** — under overload the shard queue sheds its *oldest*
  reports first, counted in ``repro_serve_shed_total`` (a breath monitor
  wants the freshest window, not an archive);
* **checkpoint/resume** — session state is periodically written via
  :mod:`repro.serve.checkpoint`; a restarted server reloads it and
  continues mid-breath;
* **graceful drain** — :meth:`BreathServer.drain` stops accepting,
  ingests everything queued, publishes one final estimate per session,
  checkpoints, and tells watchers the stream is over.

Observability: every connection and session emits trace events, frame /
report / shed / reconnect counters and the active-session and
active-connection gauges live in :mod:`repro.obs`.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .. import obs
from ..core.pipeline import TagBreathe
from ..errors import CheckpointCorruptError, ProtocolError, ServeError
from .checkpoint import (
    load_checkpoint,
    save_checkpoint,
    session_state_from_doc,
    session_state_to_doc,
)
from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    negotiate_codec,
    negotiate_frames,
    wire_to_report,
)
from .session import SessionConfig, SessionShard, UserSession

#: Socket read chunk size.
_READ_CHUNK = 1 << 16

#: An ack frame is sent to ingest connections every this many reports.
ACK_EVERY = 256

#: Per-watcher estimate queue bound; a slower consumer loses the oldest.
_WATCH_QUEUE = 256


class _Watcher:
    """One subscribed watch connection: an estimate queue + user filter."""

    __slots__ = ("queue", "user_ids", "dropped")

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=_WATCH_QUEUE)
        self.user_ids: Optional[Set[int]] = None  # None = all users
        self.dropped = 0

    def wants(self, user_id: int) -> bool:
        return self.user_ids is None or user_id in self.user_ids

    def offer(self, message: Dict[str, Any]) -> None:
        while True:
            try:
                self.queue.put_nowait(message)
                return
            except asyncio.QueueFull:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                    obs.counter("repro_serve_watch_dropped_total").inc()
                except asyncio.QueueEmpty:  # pragma: no cover
                    continue


class BreathServer:
    """A long-running TagBreathe monitoring service.

    Args:
        host: interface to bind.
        port: TCP port (0 = ephemeral; read :attr:`port` after start).
        n_shards: session worker count; users map to shards by
            ``user_id % n_shards``.
        config: serving knobs (cadence, watermarks, signal embedding).
        checkpoint_path: when given, session state is saved here every
            ``checkpoint_interval_s`` and on drain, and reloaded on
            :meth:`start` if the file exists.
        checkpoint_interval_s: periodic checkpoint cadence (wall clock);
            0 disables the periodic task (drain still checkpoints).
        engine_factory: builds each session's TagBreathe engine
            (hook for custom PipelineConfig/RobustnessConfig).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 n_shards: int = 4,
                 config: Optional[SessionConfig] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_interval_s: float = 30.0,
                 engine_factory: Optional[Callable[[int], TagBreathe]] = None,
                 ) -> None:
        if n_shards < 1:
            raise ServeError(f"n_shards must be >= 1, got {n_shards}")
        self.host = host
        self.port = port
        self.config = config if config is not None else SessionConfig()
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval_s = checkpoint_interval_s
        self._engine_factory = engine_factory
        self._shards = [
            SessionShard(i, self.config, self._publish,
                         engine_factory=engine_factory)
            for i in range(n_shards)
        ]
        self._watchers: Set[_Watcher] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._checkpoint_task: Optional[asyncio.Task] = None
        self._idle_task: Optional[asyncio.Task] = None
        self._seen_clients: Set[str] = set()
        self._client_seq: Dict[str, int] = {}
        self._draining = False
        self._drained = asyncio.Event()
        #: monotonic time of the last heartbeat ping; the worker's
        #: rejoin watchdog reads this to notice a dead supervisor.
        self.last_ping_monotonic: float = time.monotonic()
        #: How long drain waits for connection handlers to wind down on
        #: their own before cancelling stragglers.
        self.drain_grace_s = 1.0
        self.counters: Dict[str, int] = {
            "frames_total": 0,
            "reports_total": 0,
            "connections_total": 0,
            "reconnects_total": 0,
            "protocol_errors_total": 0,
            "resumed_reports": 0,
            "seq_filtered_total": 0,
            "drain_stuck_total": 0,
            "migrated_out_total": 0,
            "migrated_in_total": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, resume any checkpoint, and begin accepting connections."""
        if self._server is not None:
            raise ServeError("server already started")
        self._maybe_resume()
        for shard in self._shards:
            shard.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        obs.event("serve.start", host=self.host, port=self.port,
                  shards=len(self._shards))
        if self.checkpoint_path and self.checkpoint_interval_s > 0:
            self._checkpoint_task = asyncio.ensure_future(
                self._checkpoint_loop())
        if self.config.idle_after_s is not None:
            self._idle_task = asyncio.ensure_future(self._idle_sweep_loop())

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then drain gracefully."""
        await stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: flush, final estimates, checkpoint, close."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        with obs.span("serve.drain"):
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            for shard in self._shards:
                await shard.drain()
            for shard in self._shards:
                for message in shard.final_estimates():
                    self._publish(message)
            if self.checkpoint_path:
                self.checkpoint_now()
            for watcher in list(self._watchers):
                watcher.offer({"type": "draining"})
                watcher.offer(None)  # type: ignore[arg-type]  # sentinel
            if self._checkpoint_task is not None:
                self._checkpoint_task.cancel()
            if self._idle_task is not None:
                self._idle_task.cancel()
            for shard in self._shards:
                await shard.stop()
            # Give connection handlers a beat to see EOF/sentinels, then
            # cancel stragglers so no task outlives the server.  A stuck
            # handler is never *silently* abandoned: it is cancelled,
            # awaited, logged, and counted — a handler that repeatedly
            # shows up here is a bug, and the counter is how it surfaces.
            pending = [t for t in self._conn_tasks
                       if t is not asyncio.current_task() and not t.done()]
            if pending:
                _done, stuck = await asyncio.wait(
                    pending, timeout=self.drain_grace_s)
                for task in stuck:
                    task.cancel()
                if stuck:
                    await asyncio.gather(*stuck, return_exceptions=True)
                    self.counters["drain_stuck_total"] += len(stuck)
                    obs.counter("repro_serve_drain_stuck_total").inc(
                        len(stuck))
                    obs.event("serve.drain.stuck", count=len(stuck),
                              grace_s=self.drain_grace_s,
                              tasks=sorted(t.get_name() for t in stuck))
            obs.gauge("repro_serve_active_sessions").set(0)
            obs.gauge("repro_serve_hibernated_sessions").set(0)
            obs.event("serve.drain.done", sessions=self.session_count(),
                      reports=self.counters["reports_total"],
                      shed=self.shed_total())
        self._drained.set()

    async def stop(self) -> None:
        """Alias for :meth:`drain` (there is no un-graceful stop API)."""
        await self.drain()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_for(self, user_id: int) -> SessionShard:
        """The shard that owns ``user_id``."""
        return self._shards[user_id % len(self._shards)]

    def sessions(self) -> List[UserSession]:
        """Every resident (engine-backed) session, user-id ordered."""
        out = [s for shard in self._shards
               for s in shard.sessions.values()]
        return sorted(out, key=lambda s: s.user_id)

    def session_count(self) -> int:
        """How many user sessions this server owns (resident + hibernated).

        Hibernated sessions count: the user is still registered, their
        state still rides checkpoints and migration — only the resident
        engine is gone.  The fabric's session-conservation invariant
        (settled == requested users) sums this across workers.
        """
        return sum(shard.session_count for shard in self._shards)

    def resident_count(self) -> int:
        """Sessions currently backed by a live engine."""
        return sum(len(shard.sessions) for shard in self._shards)

    def hibernated_count(self) -> int:
        """Sessions parked in the compressed cold tier."""
        return sum(len(shard.hibernated) for shard in self._shards)

    def shed_total(self) -> int:
        """Reports shed across all shards since start/resume."""
        return sum(shard.shed_count for shard in self._shards)

    def summary(self) -> Dict[str, int]:
        """Counter snapshot for operator output (CLI exit summary)."""
        out = dict(self.counters)
        out["shed_total"] = self.shed_total()
        out["sessions"] = self.session_count()
        out["resident"] = self.resident_count()
        out["hibernated"] = self.hibernated_count()
        out["watchers"] = len(self._watchers)
        return out

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint_now(self) -> int:
        """Write a checkpoint synchronously; returns reports captured.

        Raises:
            ServeError: when no checkpoint path was configured.
        """
        if not self.checkpoint_path:
            raise ServeError("no checkpoint_path configured")
        with obs.span("serve.checkpoint"):
            counters = dict(self.counters)
            counters["shed_total"] = self.shed_total()
            n = save_checkpoint(
                self.checkpoint_path,
                [s.state() for s in self.sessions()],
                counters,
                client_seqs=self._client_seq,
                hibernated_docs=[doc for shard in self._shards
                                 for _uid, doc in shard.hibernated.docs()],
            )
        obs.counter("repro_serve_checkpoints_total").inc()
        return n

    def _maybe_resume(self) -> None:
        if not self.checkpoint_path:
            return
        try:
            saved = load_checkpoint(self.checkpoint_path)
        except CheckpointCorruptError as exc:
            # Both generations torn/garbage: cold start, but *visibly* —
            # a clinical monitor must never lose state in silence.
            obs.counter("repro_serve_checkpoint_corrupt_total").inc()
            obs.event("serve.checkpoint.corrupt",
                      path=str(self.checkpoint_path), error=str(exc))
            return
        except ServeError:
            return  # no checkpoint at all: genuine cold start
        if saved.get("fallback"):
            # The live file was torn mid-write; the previous good
            # generation carried the restore.  Count the corruption.
            obs.counter("repro_serve_checkpoint_corrupt_total").inc()
            obs.event("serve.checkpoint.fallback",
                      path=str(self.checkpoint_path),
                      reason=saved.get("fallback_reason", ""))
        resumed = 0
        for state in saved["sessions"]:
            user_id = int(state["user_id"])
            shard = self.shard_for(user_id)
            if state.get("hibernated"):
                # A hibernated session stays cold across the restart: it
                # goes straight back to the shard's compressed store —
                # no engine is materialised until the user's next report.
                shard.adopt_hibernated(user_id, session_state_to_doc(state))
            else:
                session = shard.session_for(user_id)
                session.restore(state, state["reports"])
            resumed += len(state["reports"])
        for key in ("frames_total", "reports_total", "reconnects_total",
                    "seq_filtered_total"):
            self.counters[key] = int(saved["counters"].get(key, 0))
        self.counters["resumed_reports"] = resumed
        # The duplicate-filter watermarks rewind exactly as far as the
        # session state does (same document), so a client resending from
        # its last acked position reconstructs the stream exactly once.
        self._client_seq = dict(saved.get("client_seqs", {}))
        self._seen_clients.update(self._client_seq)
        obs.event("serve.resume", sessions=len(saved["sessions"]),
                  reports=resumed, clients=len(self._client_seq))

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.checkpoint_interval_s)
            self.checkpoint_now()

    # ------------------------------------------------------------------
    # Idle hibernation
    # ------------------------------------------------------------------
    def hibernate_idle_now(self) -> int:
        """One idle sweep across every shard; returns sessions parked."""
        parked = sum(shard.hibernate_idle() for shard in self._shards)
        if parked:
            obs.event("serve.idle_sweep", hibernated=parked,
                      resident=self.resident_count(),
                      cold=self.hibernated_count())
        return parked

    async def _idle_sweep_loop(self) -> None:
        # Sweeping at half the idle threshold bounds hibernation lag to
        # 1.5x idle_after_s while keeping the sweep off the hot path.
        interval = max(0.05, self.config.idle_after_s / 2.0)
        while True:
            await asyncio.sleep(interval)
            self.hibernate_idle_now()

    # ------------------------------------------------------------------
    # Fabric control: heartbeat and shard migration
    # ------------------------------------------------------------------
    def _pong(self, ping: Dict[str, Any]) -> Dict[str, Any]:
        """The heartbeat reply (echoes the ping's nonce + health stats)."""
        self.last_ping_monotonic = time.monotonic()
        reply: Dict[str, Any] = {
            "type": "pong",
            "nonce": ping.get("nonce"),
            "sessions": self.session_count(),
            "reports_total": self.counters["reports_total"],
            "shed_total": self.shed_total(),
            "draining": self._draining,
        }
        if ping.get("detail"):
            reply["user_ids"] = sorted(
                uid for shard in self._shards for uid in shard.user_ids())
        return reply

    async def migrate_out(self, user_ids: List[int]) -> List[Dict[str, Any]]:
        """Drain and detach the named users' sessions; returns their state.

        The owning shards' queues are drained first so the snapshot is
        consistent (every accepted report is inside the state), then the
        sessions are removed — subsequent reports for these users would
        open *fresh* sessions, so the router must have stopped sending
        them here before asking.  The returned documents are exactly the
        checkpoint session schema (``session_state_to_doc``): migration
        is a targeted checkpoint whose storage is the wire.
        """
        owning = {self.shard_for(uid).index for uid in user_ids}
        for index in sorted(owning):
            await self._shards[index].drain()
        docs = []
        for uid in sorted(set(user_ids)):
            shard = self.shard_for(uid)
            session = shard.remove_session(uid)
            if session is not None:
                docs.append(session_state_to_doc(session.state()))
                continue
            # A hibernated user migrates as their parked document — a
            # few KB of compressed state, never inflated into an engine.
            doc = shard.hibernated.pop(uid)
            if doc is not None:
                obs.gauge("repro_serve_hibernated_sessions").inc(-1)
                docs.append(doc)
        self.counters["migrated_out_total"] += len(docs)
        obs.counter("repro_serve_migrated_sessions_total",
                    direction="out").inc(len(docs))
        return docs

    def migrate_in(self, docs: List[Dict[str, Any]]) -> int:
        """Restore migrated session documents into this server.

        Raises:
            CheckpointCorruptError: when a document is malformed (the
                connection handler answers a protocol error; nothing is
                partially restored from the bad document).
        """
        count = 0
        for doc in docs:
            state = session_state_from_doc(doc)  # validates either kind
            uid = state["user_id"]
            if doc.get("hibernated"):
                self.shard_for(uid).adopt_hibernated(uid, dict(doc))
            else:
                session = self.shard_for(uid).session_for(uid)
                session.restore(state, state["reports"])
            count += 1
        self.counters["migrated_in_total"] += count
        obs.counter("repro_serve_migrated_sessions_total",
                    direction="in").inc(count)
        return count

    # ------------------------------------------------------------------
    # Estimate fan-out
    # ------------------------------------------------------------------
    def _publish(self, message: Dict[str, Any]) -> None:
        obs.counter("repro_serve_estimates_total").inc()
        user_id = int(message.get("user_id", -1))
        for watcher in self._watchers:
            if watcher.wants(user_id):
                watcher.offer(message)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.counters["connections_total"] += 1
        obs.counter("repro_serve_connections_total").inc()
        gauge = obs.gauge("repro_serve_active_connections")
        gauge.inc()
        peer = writer.get_extra_info("peername")
        obs.event("serve.connection.open", peer=str(peer))
        decoder = FrameDecoder("json")
        codec = "json"
        role = "ingest"
        watcher: Optional[_Watcher] = None
        write_task: Optional[asyncio.Task] = None
        received = 0
        try:
            hello = await self._read_one(reader, decoder)
            if hello is None or hello.get("type") != "hello":
                raise ProtocolError("first frame must be 'hello'")
            role = hello.get("role", "ingest")
            if role not in ("ingest", "watch"):
                raise ProtocolError(f"unknown role {hello.get('role')!r}")
            codec = negotiate_codec(hello.get("codec"))
            frames = negotiate_frames(hello.get("frames"))
            client_id = hello.get("client_id")
            if not isinstance(client_id, str):
                client_id = None
            else:
                if client_id in self._seen_clients:
                    self.counters["reconnects_total"] += 1
                    obs.counter("repro_serve_reconnects_total").inc()
                self._seen_clients.add(client_id)
            writer.write(encode_frame({
                "type": "welcome", "version": PROTOCOL_VERSION,
                "codec": codec, "role": role,
                "frames": list(frames),
                "draining": self._draining,
                # Idempotent resume: the highest report sequence this
                # client_id got through before (0 = nothing / unknown),
                # so a reconnecting sender knows where to resend from.
                "last_seq": self._client_seq.get(client_id, 0)
                if client_id else 0,
            }, "json"))
            await writer.drain()
            decoder.codec = codec
            if self._draining:
                return
            if role == "watch":
                watcher = _Watcher()
                self._watchers.add(watcher)
                write_task = asyncio.ensure_future(
                    self._watch_writer(writer, watcher))
            received = await self._read_loop(
                reader, writer, decoder, codec, watcher, client_id)
        except ProtocolError as exc:
            self.counters["protocol_errors_total"] += 1
            obs.counter("repro_serve_protocol_errors_total").inc()
            try:
                writer.write(encode_frame(
                    {"type": "error", "message": str(exc)}, codec))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished; session state survives for a reconnect
        except asyncio.CancelledError:
            pass  # server shutting down under us; fall through to cleanup
        finally:
            self._conn_tasks.discard(task)
            if watcher is not None:
                self._watchers.discard(watcher)
                watcher.offer(None)  # type: ignore[arg-type]
            if write_task is not None:
                try:
                    await write_task
                except (ConnectionError, asyncio.CancelledError):
                    pass
            gauge.inc(-1)
            obs.event("serve.connection.close", peer=str(peer),
                      role=role, reports=received)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_one(self, reader: asyncio.StreamReader,
                        decoder: FrameDecoder) -> Optional[Dict[str, Any]]:
        """Read exactly one message (None on clean EOF before a frame)."""
        while True:
            messages = decoder.feed(b"")
            if messages:
                return messages[0]
            data = await reader.read(_READ_CHUNK)
            if not data:
                return None
            messages = decoder.feed(data)
            if messages:
                # At the handshake stage more than one frame in flight is
                # a client racing ahead of negotiation; push extras back.
                if len(messages) > 1:
                    raise ProtocolError(
                        "client must wait for 'welcome' before streaming")
                return messages[0]

    async def _read_loop(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         decoder: FrameDecoder, codec: str,
                         watcher: Optional[_Watcher],
                         client_id: Optional[str] = None) -> int:
        received = 0
        touched: Set[int] = set()
        while True:
            data = await reader.read(_READ_CHUNK)
            if not data:
                return received
            for message in decoder.feed(data):
                self.counters["frames_total"] += 1
                obs.counter("repro_serve_frames_total").inc()
                mtype = message.get("type")
                if mtype == "report":
                    received += 1
                    seq = message.get("seq")
                    if seq is not None and client_id is not None:
                        seq = int(seq)
                        if seq <= self._client_seq.get(client_id, 0):
                            # Replay of an already-accepted sequence
                            # (resend after a reconnect): drop before
                            # the shard, count the filter.
                            self.counters["seq_filtered_total"] += 1
                            obs.counter(
                                "repro_serve_seq_filtered_total").inc()
                            continue
                        self._client_seq[client_id] = seq
                    report = wire_to_report(message)
                    shard = self.shard_for(report.user_id)
                    shard.submit(report)
                    touched.add(shard.index)
                    self.counters["reports_total"] += 1
                    if received % ACK_EVERY == 0:
                        writer.write(encode_frame({
                            "type": "ack", "received": received,
                            "shed_total": self.shed_total(),
                            "backlog": shard.backlog,
                        }, codec))
                        await writer.drain()
                    if shard.over_high:
                        await shard.wait_below_low()
                elif mtype == "report_batch":
                    batch = message["batch"]
                    n = len(batch)
                    if n == 0:
                        continue
                    received += n
                    seqs = message.get("seqs")
                    if seqs is not None and client_id is not None:
                        last = self._client_seq.get(client_id, 0)
                        keep = seqs > last
                        dropped = int(n - int(keep.sum()))
                        if dropped:
                            self.counters["seq_filtered_total"] += dropped
                            obs.counter(
                                "repro_serve_seq_filtered_total").inc(dropped)
                        self._client_seq[client_id] = max(
                            last, int(seqs.max()))
                        if dropped == n:
                            continue
                        if dropped:
                            batch = batch.select(keep)
                    shard = None
                    for _uid, sub in batch.split_by_user():
                        shard = self.shard_for(_uid)
                        shard.submit_batch(sub)
                        touched.add(shard.index)
                    self.counters["reports_total"] += len(batch)
                    if received // ACK_EVERY > (received - n) // ACK_EVERY:
                        writer.write(encode_frame({
                            "type": "ack", "received": received,
                            "shed_total": self.shed_total(),
                            "backlog": shard.backlog if shard else 0,
                        }, codec))
                        await writer.drain()
                    for index in sorted(touched):
                        if self._shards[index].over_high:
                            await self._shards[index].wait_below_low()
                elif mtype == "ping":
                    writer.write(encode_frame(
                        self._pong(message), codec))
                    await writer.drain()
                elif mtype == "migrate_out":
                    docs = await self.migrate_out(
                        [int(u) for u in message.get("user_ids", [])])
                    writer.write(encode_frame({
                        "type": "migrated", "direction": "out",
                        "sessions": docs,
                    }, codec))
                    await writer.drain()
                elif mtype == "migrate_in":
                    try:
                        count = self.migrate_in(
                            message.get("sessions", []))
                    except CheckpointCorruptError as exc:
                        raise ProtocolError(
                            f"bad migrate_in payload: {exc}") from exc
                    writer.write(encode_frame({
                        "type": "migrated", "direction": "in",
                        "count": count,
                    }, codec))
                    await writer.drain()
                elif mtype == "watch":
                    if watcher is None:
                        raise ProtocolError(
                            "'watch' requires role=watch in hello")
                    user_id = message.get("user_id")
                    if user_id is None:
                        watcher.user_ids = None
                    else:
                        if watcher.user_ids is None:
                            watcher.user_ids = set()
                        watcher.user_ids.add(int(user_id))
                elif mtype == "unwatch":
                    if watcher is not None and watcher.user_ids is not None:
                        watcher.user_ids.discard(
                            int(message.get("user_id", -1)))
                elif mtype == "flush":
                    for index in sorted(touched) or range(len(self._shards)):
                        await self._shards[index].drain()
                    writer.write(encode_frame({
                        "type": "flushed", "received": received,
                        "shed_total": self.shed_total(),
                    }, codec))
                    await writer.drain()
                elif mtype == "bye":
                    return received
                elif mtype == "hello":
                    raise ProtocolError("duplicate hello")
                else:
                    raise ProtocolError(f"unknown message type {mtype!r}")

    async def _watch_writer(self, writer: asyncio.StreamWriter,
                            watcher: _Watcher) -> None:
        """Stream estimate messages to a watcher as JSONL text lines."""
        while True:
            message = await watcher.queue.get()
            if message is None:
                return
            line = json.dumps(message, separators=(",", ":"),
                              sort_keys=True) + "\n"
            try:
                writer.write(line.encode("utf-8"))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                return
