"""Worker-process supervision: spawn, heartbeat, restart, migrate.

The :class:`Supervisor` owns the fabric's worker fleet as *processes*:
it launches them as ``python -m repro.serve.worker`` subprocesses,
discovers their ephemeral ports through portfiles, probes liveness with protocol-level heartbeats
(``ping``/``pong`` — a worker whose event loop is wedged fails the
probe even while its process is technically alive), and restarts any
worker that dies or goes silent.  Restart is *recovery*, not reset: the
new incarnation keeps the worker id, so it reloads its predecessor's
atomic checkpoint and resumes every session mid-breath
(:mod:`repro.serve.checkpoint`).

Shard migration between live workers is also driven from here
(:meth:`Supervisor.migrate`): a ``migrate_out``/``migrate_in`` exchange
over the workers' own control links, timed into the
``repro_fabric_migration_seconds`` histogram.  The documents on the
wire are exactly the checkpoint session schema, so migration inherits
the checkpoint's correctness argument wholesale.

Health metrics (supervisor side — worker processes have their own
registries): ``repro_fabric_worker_restarts_total``,
``repro_fabric_heartbeat_miss_total``, ``repro_fabric_workers`` gauge.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .. import obs
from ..errors import FabricError, ServeError, ServeTimeoutError
from .client import IngestClient
from .retry import RESPAWN_RETRY, RetryPolicy
from .session import SessionConfig
from .worker import portfile_path, read_portfile

#: How many session documents ride in one migrate frame.  A document is
#: dominated by its buffered report window (~200 bytes/report, bounded
#: at a few hundred reports), so 8 per frame stays far under
#: MAX_FRAME_BYTES even for dense streams.
MIGRATE_CHUNK = 8


@dataclass(frozen=True)
class FabricConfig:
    """Knobs for the worker fabric (supervisor + router).

    Attributes:
        workers: initial worker-process count.
        host: interface workers (and the router) bind.
        n_shards: asyncio session shards *inside* each worker.
        heartbeat_interval_s: wall-clock period between liveness probes.
        heartbeat_timeout_s: per-probe deadline; a miss is counted and
            ``max_heartbeat_misses`` consecutive misses trigger restart.
        max_heartbeat_misses: consecutive probe failures tolerated
            before a worker is declared dead (a dead *process* is
            restarted immediately, without waiting out the misses).
        spawn_deadline_s: how long a freshly spawned worker gets to
            publish its portfile (covers the package import cost).
        checkpoint_interval_s: workers' periodic checkpoint cadence;
            also the upper bound on ingest a crash can force the
            clients to resend (never on what it can *lose* — resend
            from ``last_seq`` covers the gap).
        session: per-user session knobs forwarded to every worker.
        respawn_retry: backoff between failed respawn attempts.
    """

    workers: int = 4
    host: str = "127.0.0.1"
    n_shards: int = 2
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 2.0
    max_heartbeat_misses: int = 3
    spawn_deadline_s: float = 60.0
    checkpoint_interval_s: float = 1.0
    session: SessionConfig = field(default_factory=SessionConfig)
    respawn_retry: RetryPolicy = RESPAWN_RETRY

    def worker_options(self) -> Dict[str, Any]:
        """The flat options dict :func:`worker_main` expects."""
        options: Dict[str, Any] = {
            "host": self.host,
            "n_shards": self.n_shards,
            "checkpoint_interval_s": self.checkpoint_interval_s,
        }
        for key in ("window_s", "estimate_interval_s", "warmup_s",
                    "queue_capacity", "high_watermark", "low_watermark",
                    "include_signal", "signal_points",
                    "idle_after_s", "max_resident"):
            options[key] = getattr(self.session, key)
        return options


class WorkerHandle:
    """One supervised worker: its process, discovered port, and health."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.pid: Optional[int] = None
        self.misses = 0
        self.total_misses = 0
        self.restarts = 0

    @property
    def alive(self) -> bool:
        """True while the worker process exists and has not exited."""
        return self.process is not None and self.process.poll() is None

    def kill(self, graceful: bool, join_s: float) -> None:
        """Terminate the process (SIGTERM first when graceful), wait up
        to ``join_s`` for it to exit, then SIGKILL what remains."""
        if self.process is None:
            return
        if graceful and self.alive:
            self.process.terminate()
        if join_s > 0:
            try:
                self.process.wait(join_s)
            except subprocess.TimeoutExpired:
                pass
        if self.alive:
            self.process.kill()
            try:
                self.process.wait(5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass


class Supervisor:
    """Spawns and keeps alive the fabric's worker processes.

    Args:
        state_dir: directory holding every worker's checkpoint and
            portfile (created if missing).  Shared state *on disk* is
            the whole recovery story: a restarted supervisor — or a
            restarted worker — finds everything it needs here.
        config: fleet knobs (:class:`FabricConfig`).
    """

    def __init__(self, state_dir: Union[str, Path],
                 config: Optional[FabricConfig] = None) -> None:
        self.state_dir = Path(state_dir)
        self.config = config if config is not None else FabricConfig()
        self.workers: Dict[int, WorkerHandle] = {}
        self._controls: Dict[int, IngestClient] = {}
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._restart_locks: Dict[int, asyncio.Lock] = {}
        # One lock per worker's control link: heartbeats, migrations,
        # and harvests share the link, and a framed stream tolerates
        # exactly one reader at a time.
        self._control_locks: Dict[int, asyncio.Lock] = {}
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the initial fleet and begin heartbeating it."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        await asyncio.gather(*(
            self._spawn(worker_id)
            for worker_id in range(self.config.workers)))
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())
        obs.event("fabric.supervisor.start", workers=len(self.workers),
                  state_dir=str(self.state_dir))

    async def stop(self, graceful: bool = True) -> None:
        """Stop heartbeating and terminate the fleet.

        ``graceful`` sends SIGTERM (workers drain + checkpoint);
        stragglers — and everything when ``graceful=False`` — get
        SIGKILL.
        """
        self._stopping = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            except Exception as exc:  # a crashed loop must not block stop
                obs.event("fabric.heartbeat.crashed", error=str(exc))
            self._heartbeat_task = None
        await self._close_controls()
        for handle in self.workers.values():
            if graceful and handle.alive:
                handle.process.terminate()  # SIGTERM: drain + checkpoint
        deadline = time.monotonic() + (10.0 if graceful else 0.0)
        for handle in self.workers.values():
            handle.kill(graceful=False,
                        join_s=max(0.0, deadline - time.monotonic()))
        obs.gauge("repro_fabric_workers").set(0)
        obs.event("fabric.supervisor.stop", graceful=graceful)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_ids(self) -> List[int]:
        """The current fleet's worker ids, sorted."""
        return sorted(self.workers)

    def port_of(self, worker_id: int) -> int:
        """The worker's current ingest port.

        Raises:
            FabricError: unknown worker or port not (yet) published.
        """
        handle = self.workers.get(worker_id)
        if handle is None or handle.port is None:
            raise FabricError(f"worker {worker_id} has no published port")
        return handle.port

    # ------------------------------------------------------------------
    # Spawning and restart
    # ------------------------------------------------------------------
    async def _spawn(self, worker_id: int) -> WorkerHandle:
        handle = self.workers.setdefault(worker_id, WorkerHandle(worker_id))
        portfile = portfile_path(self.state_dir, worker_id)
        try:  # a stale portfile must not satisfy the discovery poll
            portfile.unlink()
        except OSError:
            pass
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in sys.path if p] +
            [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
        # -c instead of -m: runpy would re-import repro.serve.worker on
        # top of the package import and warn about the shadowed module.
        process = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.serve.worker import _cli; _cli()",
             "--worker-id", str(worker_id),
             "--state-dir", str(self.state_dir),
             "--options", json.dumps(self.config.worker_options())],
            env=env,
            stdin=subprocess.DEVNULL,
            # Own session: a terminal Ctrl-C must reach only the
            # supervisor, which then drains workers deliberately — a
            # group-delivered SIGINT mid-import would kill them before
            # their signal handlers exist.
            start_new_session=True,
        )
        handle.process = process
        handle.port = None
        handle.misses = 0
        deadline = time.monotonic() + self.config.spawn_deadline_s
        while True:
            doc = read_portfile(portfile)
            if doc is not None and doc["pid"] == process.pid:
                handle.port = doc["port"]
                handle.pid = doc["pid"]
                break
            if process.poll() is not None:
                raise FabricError(
                    f"worker {worker_id} exited during startup "
                    f"(exitcode {process.returncode})")
            if time.monotonic() > deadline:
                process.kill()
                raise FabricError(
                    f"worker {worker_id} did not publish a port within "
                    f"{self.config.spawn_deadline_s}s")
            await asyncio.sleep(0.05)
        obs.gauge("repro_fabric_workers").set(len(self.workers))
        obs.event("fabric.worker.up", worker=worker_id,
                  port=handle.port, pid=handle.pid,
                  restarts=handle.restarts)
        return handle

    async def restart(self, worker_id: int, reason: str = "unknown"
                      ) -> WorkerHandle:
        """Kill (if needed) and respawn one worker; it resumes from its
        checkpoint.  Concurrent callers for the same worker coalesce
        onto one restart.

        Raises:
            FabricError: the respawn retry budget was exhausted.
        """
        lock = self._restart_locks.setdefault(worker_id, asyncio.Lock())
        if lock.locked():  # someone is already restarting it: wait, reuse
            async with lock:
                return self.workers[worker_id]
        async with lock:
            handle = self.workers[worker_id]
            with obs.span("fabric.worker.restart", worker=worker_id,
                          reason=reason):
                handle.kill(graceful=False, join_s=0.0)
                await self._drop_control(worker_id)
                handle.restarts += 1
                obs.counter("repro_fabric_worker_restarts_total",
                            worker=str(worker_id)).inc()
                obs.event("fabric.worker.restart", worker=worker_id,
                          reason=reason, restarts=handle.restarts)
                delays = self.config.respawn_retry.delays()
                while True:
                    try:
                        return await self._spawn(worker_id)
                    except FabricError as exc:
                        try:
                            delay = next(delays)
                        except StopIteration:
                            raise FabricError(
                                f"worker {worker_id} would not come back "
                                f"after {self.config.respawn_retry.max_attempts} "
                                f"attempts: {exc}") from exc
                        obs.event("fabric.worker.respawn_retry",
                                  worker=worker_id, error=str(exc))
                        await asyncio.sleep(delay)

    async def add_worker(self) -> int:
        """Grow the fleet by one; returns the new worker id."""
        worker_id = (max(self.workers) + 1) if self.workers else 0
        await self._spawn(worker_id)
        return worker_id

    async def remove_worker(self, worker_id: int,
                            graceful: bool = True) -> None:
        """Shrink the fleet: drain (SIGTERM) and forget one worker.

        Callers migrate the worker's sessions away *first*
        (:meth:`migrate`); whatever remains is drained into the
        worker's final checkpoint, not lost — but no future worker
        reads that checkpoint, so do not skip the migration.
        """
        handle = self.workers.pop(worker_id, None)
        self._restart_locks.pop(worker_id, None)
        if handle is None:
            return
        await self._drop_control(worker_id)
        handle.kill(graceful=graceful, join_s=10.0 if graceful else 0.0)
        obs.gauge("repro_fabric_workers").set(len(self.workers))
        obs.event("fabric.worker.removed", worker=worker_id)

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.heartbeat_interval_s)
            for worker_id in list(self.workers):
                if self._stopping:
                    return
                await self._probe(worker_id)

    async def _probe(self, worker_id: int) -> None:
        handle = self.workers.get(worker_id)
        if handle is None:
            return
        if handle.port is None:
            return  # still starting up; _spawn enforces its own deadline
        if not handle.alive:
            await self._restart_quietly(worker_id, "process-exit")
            return
        try:
            pong = await self.ping_worker(worker_id)
            handle.misses = 0
            obs.gauge("repro_fabric_worker_sessions",
                      worker=str(worker_id)).set(
                          int(pong.get("sessions", 0)))
        except (ServeError, ServeTimeoutError, ConnectionError,
                OSError, asyncio.IncompleteReadError):
            handle.misses += 1
            handle.total_misses += 1
            obs.counter("repro_fabric_heartbeat_miss_total",
                        worker=str(worker_id)).inc()
            obs.event("fabric.heartbeat.miss", worker=worker_id,
                      misses=handle.misses)
            await self._drop_control(worker_id)
            if handle.misses >= self.config.max_heartbeat_misses:
                await self._restart_quietly(worker_id, "heartbeat")

    async def _restart_quietly(self, worker_id: int, reason: str) -> None:
        """Restart from the heartbeat loop; failure is logged, not fatal
        (the next probe tries again rather than killing the loop)."""
        try:
            await self.restart(worker_id, reason=reason)
        except FabricError as exc:
            obs.event("fabric.worker.restart_failed", worker=worker_id,
                      error=str(exc))

    # ------------------------------------------------------------------
    # Control links
    # ------------------------------------------------------------------
    def _control_lock(self, worker_id: int) -> asyncio.Lock:
        return self._control_locks.setdefault(worker_id, asyncio.Lock())

    async def ping_worker(self, worker_id: int,
                          detail: bool = False) -> Dict[str, Any]:
        """Health-probe one worker over its control link (serialised)."""
        async with self._control_lock(worker_id):
            control = await self._control(worker_id)
            return await control.ping(detail=detail)

    async def harvest(self, worker_id: int) -> List[Dict[str, Any]]:
        """Pull every session state doc off one worker (destructive).

        End-of-run collection for the chaos harness and tests: the
        sessions are ``migrate_out``-ed in chunks and *removed* from
        the worker.
        """
        docs: List[Dict[str, Any]] = []
        async with self._control_lock(worker_id):
            control = await self._control(worker_id)
            pong = await control.ping(detail=True)
            users = [int(u) for u in pong.get("user_ids", [])]
            for start in range(0, len(users), MIGRATE_CHUNK):
                docs.extend(await control.migrate_out(
                    users[start:start + MIGRATE_CHUNK]))
        return docs

    async def _control(self, worker_id: int) -> IngestClient:
        """A connected control client to one worker (cached)."""
        client = self._controls.get(worker_id)
        if client is not None and client.connected:
            return client
        client = IngestClient(
            self.config.host, self.port_of(worker_id),
            connect_timeout_s=self.config.heartbeat_timeout_s,
            read_timeout_s=self.config.heartbeat_timeout_s)
        await client.connect()
        self._controls[worker_id] = client
        return client

    async def _drop_control(self, worker_id: int) -> None:
        client = self._controls.pop(worker_id, None)
        if client is not None:
            await client.close(polite=False)

    async def _close_controls(self) -> None:
        for worker_id in list(self._controls):
            await self._drop_control(worker_id)

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    async def sessions_of(self, worker_id: int) -> List[int]:
        """The user ids currently live on one worker (detail ping)."""
        pong = await self.ping_worker(worker_id, detail=True)
        return [int(u) for u in pong.get("user_ids", [])]

    async def migrate(self, src: int, dst: int,
                      user_ids: Sequence[int]) -> int:
        """Move users' sessions from worker ``src`` to ``dst``.

        The exchange is chunked (``MIGRATE_CHUNK`` sessions per frame)
        so dense windows never overflow a protocol frame, and *ordered
        for safety*: a chunk is pulled out of ``src`` only after the
        previous chunk landed in ``dst``, so a crash mid-migration
        strands at most one chunk in flight — and that chunk's sessions
        are still inside ``src``'s checkpoint lineage until the
        ``migrate_out`` reply, so nothing is ever in *zero* places.

        Returns the number of sessions that actually moved (users with
        no live session on ``src`` move nothing).

        Raises:
            FabricError / ServeError: a control link failed; the caller
                (router) re-resolves ownership before retrying.
        """
        user_ids = sorted(set(int(u) for u in user_ids))
        if not user_ids or src == dst:
            return 0
        moved = 0
        t0 = time.monotonic()
        with obs.span("fabric.migrate", src=src, dst=dst,
                      users=len(user_ids)):
            # Both control links locked for the whole exchange, in id
            # order so concurrent migrations can never deadlock.
            first, second = sorted((src, dst))
            async with self._control_lock(first):
                async with self._control_lock(second):
                    src_control = await self._control(src)
                    dst_control = await self._control(dst)
                    for start in range(0, len(user_ids), MIGRATE_CHUNK):
                        chunk = user_ids[start:start + MIGRATE_CHUNK]
                        docs = await src_control.migrate_out(chunk)
                        if docs:
                            moved += await dst_control.migrate_in(docs)
        elapsed = time.monotonic() - t0
        obs.histogram("repro_fabric_migration_seconds").observe(elapsed)
        obs.event("fabric.migrate.done", src=src, dst=dst,
                  moved=moved, seconds=round(elapsed, 4))
        return moved
