"""Worker-process supervision: spawn, register, heartbeat, restart, migrate.

The :class:`Supervisor` owns the fabric's worker fleet.  Workers reach
it over a TCP *control socket* with a two-phase registration handshake
(``join`` → id assignment → ``register`` with host/port/pid), which is
the single attachment path for every kind of worker:

* **spawned** — launched locally as subprocesses (the default); they
  register over loopback exactly like a remote worker would, replacing
  the old portfile-polling discovery;
* **remote** — started on another host via ``repro serve-worker --join
  <supervisor-addr>``; the supervisor cannot kill or respawn these, so
  their supervision is heartbeat-only and "restart" means *wait for the
  worker to re-register*;
* **adopted** — inherited from a dead predecessor through the on-disk
  registry (``fabric.json``) when a warm standby takes over
  (:meth:`attach` → :meth:`takeover`); local pids it can kill and
  respawn even though it never spawned them.

The supervisor publishes its control address to ``supervisor.addr`` and
the fleet to ``fabric.json`` (both atomic, see
:mod:`repro.serve.statefiles`), which is how orphaned workers find the
new supervisor after a failover and how the standby mirrors the ring.

Liveness is probed with protocol-level heartbeats (``ping``/``pong`` —
a worker whose event loop is wedged fails the probe even while its
process is technically alive), **concurrently** across the fleet so one
wedged worker cannot delay detection for the others.  Restart is
*recovery*, not reset: the new incarnation keeps the worker id, so it
reloads its predecessor's atomic checkpoint and resumes every session
mid-breath (:mod:`repro.serve.checkpoint`).

Shard migration between live workers is also driven from here
(:meth:`Supervisor.migrate`): a ``migrate_out``/``migrate_in`` exchange
over the workers' own control links, timed into the
``repro_fabric_migration_seconds`` histogram.  The documents on the
wire are exactly the checkpoint session schema, so migration inherits
the checkpoint's correctness argument wholesale.

Health metrics (supervisor side — worker processes have their own
registries): ``repro_fabric_worker_restarts_total``,
``repro_fabric_heartbeat_miss_total``, ``repro_fabric_workers`` gauge.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..errors import FabricError, ProtocolError, ServeError, ServeTimeoutError
from .client import IngestClient
from .protocol import FrameDecoder, encode_frame
from .retry import RESPAWN_RETRY, RetryPolicy
from .session import SessionConfig
from .statefiles import (read_state_doc, registry_path, remove_state_doc,
                         supervisor_addr_path, write_state_doc)
from .worker import portfile_path

#: How many session documents ride in one migrate frame.  A document is
#: dominated by its buffered report window (~200 bytes/report, bounded
#: at a few hundred reports), so 8 per frame stays far under
#: MAX_FRAME_BYTES even for dense streams.
MIGRATE_CHUNK = 8


@dataclass(frozen=True)
class FabricConfig:
    """Knobs for the worker fabric (supervisor + router).

    Attributes:
        workers: initial worker-process count.
        host: interface workers (and the router) bind.
        n_shards: asyncio session shards *inside* each worker.
        heartbeat_interval_s: wall-clock period between liveness probes.
        heartbeat_timeout_s: per-probe deadline; a miss is counted and
            ``max_heartbeat_misses`` consecutive misses trigger restart.
        max_heartbeat_misses: consecutive probe failures tolerated
            before a worker is declared dead (a dead *process* is
            restarted immediately, without waiting out the misses).
        spawn_deadline_s: how long a freshly spawned worker gets to
            register over the control socket (covers the package import
            cost); also the re-registration deadline when "restarting"
            a remote worker.
        orphan_grace_s: how long an orphaned worker (its supervisor
            died) keeps serving while it hunts for a successor via
            ``supervisor.addr`` before draining itself.  Must comfortably
            exceed the standby's takeover detection time.
        checkpoint_interval_s: workers' periodic checkpoint cadence;
            also the upper bound on ingest a crash can force the
            clients to resend (never on what it can *lose* — resend
            from ``last_seq`` covers the gap).
        session: per-user session knobs forwarded to every worker.
        respawn_retry: backoff between failed respawn attempts.
    """

    workers: int = 4
    host: str = "127.0.0.1"
    n_shards: int = 2
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 2.0
    max_heartbeat_misses: int = 3
    spawn_deadline_s: float = 60.0
    orphan_grace_s: float = 10.0
    checkpoint_interval_s: float = 1.0
    session: SessionConfig = field(default_factory=SessionConfig)
    respawn_retry: RetryPolicy = RESPAWN_RETRY

    def worker_options(self) -> Dict[str, Any]:
        """The flat options dict :func:`worker_main` expects.

        Joining workers receive this dict in the ``assign`` reply, so
        session knobs stay fleet-consistent no matter where a worker
        runs.
        """
        options: Dict[str, Any] = {
            "host": self.host,
            "n_shards": self.n_shards,
            "checkpoint_interval_s": self.checkpoint_interval_s,
            "orphan_grace_s": self.orphan_grace_s,
            "orphan_poll_s": min(2.0, max(0.1, self.heartbeat_interval_s)),
            "rejoin_after_s": max(3.0 * self.heartbeat_timeout_s,
                                  10.0 * self.heartbeat_interval_s),
        }
        for key in ("window_s", "estimate_interval_s", "warmup_s",
                    "queue_capacity", "high_watermark", "low_watermark",
                    "include_signal", "signal_points",
                    "idle_after_s", "max_resident"):
            options[key] = getattr(self.session, key)
        return options


class WorkerHandle:
    """One supervised worker: its process (if local), registered
    address, and health.

    ``spawned`` records whether the worker is a subprocess of this
    state dir's machine: True for locally launched *and* adopted
    workers (killable/respawnable by pid), False for remote joiners
    (heartbeat-only supervision).
    """

    def __init__(self, worker_id: int, spawned: bool = True) -> None:
        self.worker_id = worker_id
        self.process: Optional[subprocess.Popen] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.pid: Optional[int] = None
        self.spawned = spawned
        self.misses = 0
        self.total_misses = 0
        self.restarts = 0

    @property
    def remote(self) -> bool:
        """True for workers the supervisor cannot kill or respawn."""
        return not self.spawned

    @property
    def alive(self) -> bool:
        """Best local knowledge of process liveness.

        With a ``Popen`` in hand this is authoritative; for an adopted
        pid it is a signal-0 probe; for a remote worker there is no
        process to ask, so liveness is governed by heartbeats and this
        stays True.
        """
        if self.process is not None:
            return self.process.poll() is None
        if not self.spawned or self.pid is None:
            return True
        try:
            os.kill(self.pid, 0)
            return True
        except OSError:
            return False

    def kill(self, graceful: bool, join_s: float) -> None:
        """Terminate the worker (SIGTERM first when graceful), wait up
        to ``join_s`` for it to exit, then SIGKILL what remains.

        Adopted workers (pid but no ``Popen``) get the same treatment
        via raw signals; remote workers cannot be killed from here and
        this is a no-op for them.
        """
        if self.process is not None:
            if graceful and self.alive:
                self.process.terminate()
            if join_s > 0:
                try:
                    self.process.wait(join_s)
                except subprocess.TimeoutExpired:
                    pass
            if self.alive:
                self.process.kill()
                try:
                    self.process.wait(5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
            return
        if not self.spawned or self.pid is None:
            return
        self._kill_pid(graceful=graceful, join_s=join_s)

    def _kill_pid(self, graceful: bool, join_s: float) -> None:
        """Signal-based kill for adopted workers (reparented to init,
        so there is never a zombie for us to reap)."""
        try:
            os.kill(self.pid, signal.SIGTERM if graceful else signal.SIGKILL)
        except OSError:
            return
        deadline = time.monotonic() + max(join_s, 0.0)
        while time.monotonic() < deadline and self.alive:
            time.sleep(0.05)
        if self.alive:
            try:
                os.kill(self.pid, signal.SIGKILL)
            except OSError:
                pass
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and self.alive:
                time.sleep(0.05)


class Supervisor:
    """Owns the fabric's worker fleet: registration, health, recovery.

    Args:
        state_dir: directory holding every worker's checkpoint plus the
            fabric's coordination files (created if missing).  Shared
            state *on disk* is the whole recovery story: a restarted
            supervisor — or a warm standby taking over — finds
            everything it needs here.
        config: fleet knobs (:class:`FabricConfig`).

    Hooks (set by the router):
        on_worker_joined: called with a worker id when a worker the
            supervisor did not ask for registers (a remote ``--join``
            or a rediscovered orphan); the router rebalances the ring.
        on_registry_change: called (attached/standby mode only) when
            the on-disk registry changes under us.
    """

    def __init__(self, state_dir: Union[str, Path],
                 config: Optional[FabricConfig] = None) -> None:
        self.state_dir = Path(state_dir)
        self.config = config if config is not None else FabricConfig()
        self.workers: Dict[int, WorkerHandle] = {}
        self.epoch = 0
        self.control_port: Optional[int] = None
        self.attached = False
        self.on_worker_joined: Optional[Callable[[int], None]] = None
        self.on_registry_change: Optional[Callable[[], None]] = None
        self._controls: Dict[int, IngestClient] = {}
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._registry_task: Optional[asyncio.Task] = None
        self._restart_locks: Dict[int, asyncio.Lock] = {}
        # One lock per worker's control link: heartbeats, migrations,
        # and harvests share the link, and a framed stream tolerates
        # exactly one reader at a time.
        self._control_locks: Dict[int, asyncio.Lock] = {}
        self._registered: Dict[int, asyncio.Event] = {}
        self._next_worker_id = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open the control socket, spawn the initial fleet, heartbeat."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        await self._open_control()
        self._publish_addr()
        await asyncio.gather(*(
            self._spawn(worker_id)
            for worker_id in range(self.config.workers)))
        self._publish_registry()
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())
        obs.event("fabric.supervisor.start", workers=len(self.workers),
                  epoch=self.epoch, control_port=self.control_port,
                  state_dir=str(self.state_dir))

    async def attach(self) -> None:
        """Mirror a running fabric *without* supervising it (standby).

        Loads the worker registry from disk and keeps it fresh by
        polling; no control socket, no heartbeats, no spawning.  A
        later :meth:`takeover` promotes this supervisor to active duty.
        """
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.attached = True
        self._load_registry()
        self._registry_task = asyncio.ensure_future(self._registry_watch())
        obs.event("fabric.supervisor.attach", workers=len(self.workers),
                  state_dir=str(self.state_dir))

    async def takeover(self) -> None:
        """Promote an attached supervisor: adopt the registered fleet,
        open a control socket, publish a bumped epoch, heartbeat.

        Orphaned workers re-register through ``supervisor.addr``;
        genuinely dead local ones are restarted from their checkpoints
        by the heartbeat loop.
        """
        if self._registry_task is not None:
            self._registry_task.cancel()
            try:
                await self._registry_task
            except asyncio.CancelledError:
                pass
            self._registry_task = None
        self._load_registry()
        self.attached = False
        await self._open_control()
        addr = read_state_doc(supervisor_addr_path(self.state_dir))
        if addr is not None:
            self.epoch = max(self.epoch, int(addr.get("epoch", 0)))
        self.epoch += 1
        self._publish_addr()
        self._publish_registry()
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())
        obs.event("fabric.supervisor.takeover", workers=len(self.workers),
                  epoch=self.epoch, control_port=self.control_port)

    async def stop(self, graceful: bool = True) -> None:
        """Stop heartbeating and terminate the fleet.

        ``graceful`` sends SIGTERM (workers drain + checkpoint);
        stragglers — and everything when ``graceful=False`` — get
        SIGKILL.  Remote workers cannot be signalled from here: they
        notice the silence and drain themselves after their orphan
        grace (spawned) or keep retrying registration (operator-run).
        """
        self._stopping = True
        for task_attr in ("_heartbeat_task", "_registry_task"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                except Exception as exc:  # a crashed loop must not block stop
                    obs.event("fabric.heartbeat.crashed", error=str(exc))
                setattr(self, task_attr, None)
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
            self._control_server = None
            # Retract the address so orphan hunts fail fast instead of
            # hammering a dead socket.
            remove_state_doc(supervisor_addr_path(self.state_dir))
        await self._close_controls()
        if self.attached:
            # A never-promoted standby mirrors someone else's fleet;
            # those workers are not ours to signal.
            obs.event("fabric.supervisor.stop", graceful=graceful,
                      attached=True)
            return
        for handle in self.workers.values():
            if graceful and handle.process is not None and handle.alive:
                handle.process.terminate()  # SIGTERM: drain + checkpoint
        deadline = time.monotonic() + (10.0 if graceful else 0.0)
        for handle in self.workers.values():
            handle.kill(graceful=graceful and handle.process is None,
                        join_s=max(0.0, deadline - time.monotonic()))
        obs.gauge("repro_fabric_workers").set(0)
        obs.event("fabric.supervisor.stop", graceful=graceful)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_ids(self) -> List[int]:
        """The current fleet's worker ids, sorted."""
        return sorted(self.workers)

    def port_of(self, worker_id: int) -> int:
        """The worker's current ingest port.

        Raises:
            FabricError: unknown worker or port not (yet) published.
        """
        handle = self.workers.get(worker_id)
        if handle is None or handle.port is None:
            raise FabricError(f"worker {worker_id} has no published port")
        return handle.port

    def address_of(self, worker_id: int) -> Tuple[str, int]:
        """The worker's registered ingest endpoint ``(host, port)``.

        Raises:
            FabricError: unknown worker or endpoint not (yet) registered.
        """
        handle = self.workers.get(worker_id)
        if handle is None or handle.port is None:
            raise FabricError(f"worker {worker_id} has no published port")
        return (handle.host or self.config.host, handle.port)

    # ------------------------------------------------------------------
    # Control socket: registration + standby probes
    # ------------------------------------------------------------------
    async def _open_control(self) -> None:
        self._control_server = await asyncio.start_server(
            self._handle_control, self.config.host, 0)
        self.control_port = self._control_server.sockets[0].getsockname()[1]

    def control_address(self) -> Tuple[str, int]:
        """The live control socket's ``(host, port)``.

        Raises:
            FabricError: the control socket is not open (attached or
                stopped supervisor).
        """
        if self.control_port is None:
            raise FabricError("supervisor control socket is not open")
        return (self.config.host, self.control_port)

    async def _handle_control(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                for message in decoder.feed(data):
                    reply = self._control_message(message)
                    writer.write(encode_frame(reply))
                    await writer.drain()
        except (ConnectionError, OSError, ProtocolError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _control_message(self, message: Dict[str, Any]) -> Dict[str, Any]:
        mtype = message.get("type")
        if mtype == "join":
            return self._handle_join(message)
        if mtype == "register":
            return self._handle_register(message)
        if mtype == "ping":
            return {"type": "pong", "epoch": self.epoch,
                    "pid": os.getpid(), "workers": self._registry_doc()}
        return {"type": "error", "error": f"unknown control type {mtype!r}"}

    def _handle_join(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker_id = message.get("worker_id")
        if worker_id is None:
            worker_id = self._assign_id()
        else:
            worker_id = int(worker_id)
            self._next_worker_id = max(self._next_worker_id, worker_id + 1)
        obs.event("fabric.worker.join", worker=worker_id,
                  pid=message.get("pid"))
        return {"type": "assign", "worker_id": worker_id,
                "epoch": self.epoch, "options": self.config.worker_options()}

    def _handle_register(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            worker_id = int(message["worker_id"])
            host = str(message["host"])
            port = int(message["port"])
            pid = int(message["pid"])
        except (KeyError, TypeError, ValueError):
            return {"type": "error", "error": "malformed register"}
        handle = self.workers.get(worker_id)
        unsolicited = handle is None
        if handle is None:
            # A worker we did not ask for: a remote `serve-worker
            # --join` or an orphan whose id we had already forgotten.
            handle = WorkerHandle(worker_id, spawned=False)
            self.workers[worker_id] = handle
            self._next_worker_id = max(self._next_worker_id, worker_id + 1)
        elif handle.process is not None and handle.process.pid != pid:
            # A late registration from a previous incarnation we
            # already killed; accepting it would poison the port map.
            return {"type": "error",
                    "error": f"stale registration for worker {worker_id} "
                             f"(pid {pid})"}
        handle.host = host
        handle.port = port
        handle.pid = pid
        handle.misses = 0
        # Re-registration usually means a new socket; retire the old
        # cached control link rather than waiting for it to error.
        stale = self._controls.pop(worker_id, None)
        if stale is not None:
            asyncio.ensure_future(stale.close(polite=False))
        self._registered.setdefault(worker_id, asyncio.Event()).set()
        self._publish_registry()
        obs.gauge("repro_fabric_workers").set(len(self.workers))
        obs.event("fabric.worker.registered", worker=worker_id,
                  host=host, port=port, pid=pid, unsolicited=unsolicited)
        if unsolicited and self.on_worker_joined is not None:
            self.on_worker_joined(worker_id)
        return {"type": "registered", "worker_id": worker_id,
                "epoch": self.epoch}

    def _assign_id(self) -> int:
        next_id = max([self._next_worker_id] +
                      [wid + 1 for wid in self.workers])
        self._next_worker_id = next_id + 1
        return next_id

    # ------------------------------------------------------------------
    # On-disk coordination plane
    # ------------------------------------------------------------------
    def _publish_addr(self) -> None:
        write_state_doc(supervisor_addr_path(self.state_dir), {
            "host": self.config.host, "port": self.control_port,
            "pid": os.getpid(), "epoch": self.epoch})

    def _registry_doc(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "workers": {
                str(wid): {"host": handle.host or self.config.host,
                           "port": handle.port, "pid": handle.pid,
                           "spawned": handle.spawned}
                for wid, handle in self.workers.items()
                if handle.port is not None
            },
        }

    def _publish_registry(self) -> None:
        write_state_doc(registry_path(self.state_dir), self._registry_doc())

    def _load_registry(self) -> None:
        doc = read_state_doc(registry_path(self.state_dir))
        if doc is None:
            return
        self.epoch = max(self.epoch, int(doc.get("epoch", 0)))
        seen = set()
        for key, entry in dict(doc.get("workers", {})).items():
            try:
                worker_id = int(key)
                port = int(entry["port"])
                pid = int(entry["pid"])
                host = str(entry.get("host", self.config.host))
                spawned = bool(entry.get("spawned", False))
            except (KeyError, TypeError, ValueError):
                continue
            seen.add(worker_id)
            handle = self.workers.get(worker_id)
            if handle is None:
                handle = WorkerHandle(worker_id, spawned=spawned)
                self.workers[worker_id] = handle
            # Never inherit a Popen through the registry: an adopted
            # worker is someone else's child; pid-signal it instead.
            handle.spawned = spawned
            handle.host = host
            handle.port = port
            handle.pid = pid
            self._next_worker_id = max(self._next_worker_id, worker_id + 1)
        for worker_id in [w for w in self.workers if w not in seen]:
            if self.workers[worker_id].process is None:
                del self.workers[worker_id]
                self._restart_locks.pop(worker_id, None)
                self._control_locks.pop(worker_id, None)
                self._registered.pop(worker_id, None)

    async def _registry_watch(self) -> None:
        last: Optional[Dict[str, Any]] = None
        while True:
            await asyncio.sleep(self.config.heartbeat_interval_s)
            doc = read_state_doc(registry_path(self.state_dir))
            if doc is None or doc == last:
                continue
            last = doc
            self._load_registry()
            obs.event("fabric.registry.refresh", workers=len(self.workers))
            if self.on_registry_change is not None:
                self.on_registry_change()

    # ------------------------------------------------------------------
    # Spawning and restart
    # ------------------------------------------------------------------
    async def _spawn(self, worker_id: int) -> WorkerHandle:
        if self.control_port is None:
            raise FabricError("cannot spawn workers without an open "
                              "control socket")
        handle = self.workers.setdefault(worker_id, WorkerHandle(worker_id))
        handle.spawned = True
        event = self._registered.setdefault(worker_id, asyncio.Event())
        event.clear()
        portfile = portfile_path(self.state_dir, worker_id)
        try:  # stale portfiles are debug artifacts; keep them honest
            portfile.unlink()
        except OSError:
            pass
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in sys.path if p] +
            [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
        # -c instead of -m: runpy would re-import repro.serve.worker on
        # top of the package import and warn about the shadowed module.
        process = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.serve.worker import _cli; _cli()",
             "--worker-id", str(worker_id),
             "--state-dir", str(self.state_dir),
             "--join", f"{self.config.host}:{self.control_port}",
             "--supervised",
             "--options", json.dumps(self.config.worker_options())],
            env=env,
            stdin=subprocess.DEVNULL,
            # Own session: a terminal Ctrl-C must reach only the
            # supervisor, which then drains workers deliberately — a
            # group-delivered SIGINT mid-import would kill them before
            # their signal handlers exist.
            start_new_session=True,
        )
        handle.process = process
        handle.port = None
        handle.misses = 0
        deadline = time.monotonic() + self.config.spawn_deadline_s
        while True:
            if (event.is_set() and handle.pid == process.pid
                    and handle.port is not None):
                break
            if process.poll() is not None:
                raise FabricError(
                    f"worker {worker_id} exited during startup "
                    f"(exitcode {process.returncode})")
            if time.monotonic() > deadline:
                process.kill()
                raise FabricError(
                    f"worker {worker_id} did not register within "
                    f"{self.config.spawn_deadline_s}s")
            try:
                await asyncio.wait_for(event.wait(), 0.05)
            except asyncio.TimeoutError:
                pass
        obs.gauge("repro_fabric_workers").set(len(self.workers))
        obs.event("fabric.worker.up", worker=worker_id,
                  port=handle.port, pid=handle.pid,
                  restarts=handle.restarts)
        return handle

    async def restart(self, worker_id: int, reason: str = "unknown"
                      ) -> WorkerHandle:
        """Kill (if needed) and respawn one worker; it resumes from its
        checkpoint.  Concurrent callers for the same worker coalesce
        onto one restart.  A *remote* worker cannot be respawned from
        here, so "restart" waits for it to re-register instead.

        Raises:
            FabricError: the respawn retry budget was exhausted, the
                re-registration deadline passed, or the worker was
                removed from the fleet while we waited for the lock.
        """
        lock = self._restart_locks.setdefault(worker_id, asyncio.Lock())
        if lock.locked():  # someone is already restarting it: wait, reuse
            async with lock:
                handle = self.workers.get(worker_id)
                if handle is None:
                    raise FabricError(
                        f"worker {worker_id} was removed during restart")
                return handle
        async with lock:
            # Membership can change while we queued on the lock; a
            # removed worker must surface as FabricError, not KeyError.
            handle = self.workers.get(worker_id)
            if handle is None:
                raise FabricError(
                    f"worker {worker_id} was removed during restart")
            with obs.span("fabric.worker.restart", worker=worker_id,
                          reason=reason):
                handle.kill(graceful=False, join_s=0.0)
                await self._drop_control(worker_id)
                handle.restarts += 1
                obs.counter("repro_fabric_worker_restarts_total",
                            worker=str(worker_id)).inc()
                obs.event("fabric.worker.restart", worker=worker_id,
                          reason=reason, restarts=handle.restarts)
                if handle.remote:
                    return await self._await_reregistration(worker_id)
                delays = self.config.respawn_retry.delays()
                while True:
                    try:
                        return await self._spawn(worker_id)
                    except FabricError as exc:
                        try:
                            delay = next(delays)
                        except StopIteration:
                            raise FabricError(
                                f"worker {worker_id} would not come back "
                                f"after {self.config.respawn_retry.max_attempts} "
                                f"attempts: {exc}") from exc
                        obs.event("fabric.worker.respawn_retry",
                                  worker=worker_id, error=str(exc))
                        await asyncio.sleep(delay)

    async def _await_reregistration(self, worker_id: int) -> WorkerHandle:
        """Remote "restart": the worker's own rejoin logic must bring
        it back; we can only hold the door open."""
        handle = self.workers[worker_id]
        event = self._registered.setdefault(worker_id, asyncio.Event())
        event.clear()
        handle.port = None  # port_of() fails closed until it re-registers
        try:
            await asyncio.wait_for(event.wait(),
                                   self.config.spawn_deadline_s)
        except asyncio.TimeoutError:
            raise FabricError(
                f"remote worker {worker_id} did not re-register within "
                f"{self.config.spawn_deadline_s}s") from None
        obs.event("fabric.worker.up", worker=worker_id,
                  port=handle.port, pid=handle.pid,
                  restarts=handle.restarts)
        return handle

    async def add_worker(self) -> int:
        """Grow the fleet by one; returns the new worker id."""
        worker_id = self._assign_id()
        await self._spawn(worker_id)
        self._publish_registry()
        return worker_id

    async def remove_worker(self, worker_id: int,
                            graceful: bool = True) -> None:
        """Shrink the fleet: drain (SIGTERM) and forget one worker.

        Callers migrate the worker's sessions away *first*
        (:meth:`migrate`); whatever remains is drained into the
        worker's final checkpoint, not lost — but no future worker
        reads that checkpoint, so do not skip the migration.
        """
        handle = self.workers.pop(worker_id, None)
        # Every per-worker map must shrink with the fleet, or a
        # long-lived elastic fabric accumulates dead locks.
        self._restart_locks.pop(worker_id, None)
        self._control_locks.pop(worker_id, None)
        self._registered.pop(worker_id, None)
        if handle is None:
            return
        await self._drop_control(worker_id)
        handle.kill(graceful=graceful, join_s=10.0 if graceful else 0.0)
        self._publish_registry()
        obs.gauge("repro_fabric_workers").set(len(self.workers))
        obs.event("fabric.worker.removed", worker=worker_id)

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.heartbeat_interval_s)
            if self._stopping:
                return
            # Concurrent probes: one wedged worker costs one timeout,
            # not O(fleet) of them — detection latency stays flat as
            # the fleet grows.  Per-worker control-link locks keep the
            # framed streams single-reader.
            await asyncio.gather(
                *(self._probe(worker_id)
                  for worker_id in list(self.workers)))

    async def _probe(self, worker_id: int) -> None:
        handle = self.workers.get(worker_id)
        if handle is None or self._stopping:
            return
        if handle.port is None:
            return  # still starting up; _spawn enforces its own deadline
        if not handle.alive:
            await self._restart_quietly(worker_id, "process-exit")
            return
        try:
            pong = await self.ping_worker(worker_id)
            handle.misses = 0
            obs.gauge("repro_fabric_worker_sessions",
                      worker=str(worker_id)).set(
                          int(pong.get("sessions", 0)))
        except (ServeError, ServeTimeoutError, ConnectionError,
                OSError, asyncio.IncompleteReadError):
            handle.misses += 1
            handle.total_misses += 1
            obs.counter("repro_fabric_heartbeat_miss_total",
                        worker=str(worker_id)).inc()
            obs.event("fabric.heartbeat.miss", worker=worker_id,
                      misses=handle.misses)
            await self._drop_control(worker_id)
            if handle.misses >= self.config.max_heartbeat_misses:
                await self._restart_quietly(worker_id, "heartbeat")

    async def _restart_quietly(self, worker_id: int, reason: str) -> None:
        """Restart from the heartbeat loop; failure is logged, not fatal
        (the next probe tries again rather than killing the loop)."""
        try:
            await self.restart(worker_id, reason=reason)
        except FabricError as exc:
            obs.event("fabric.worker.restart_failed", worker=worker_id,
                      error=str(exc))

    # ------------------------------------------------------------------
    # Control links
    # ------------------------------------------------------------------
    def _control_lock(self, worker_id: int) -> asyncio.Lock:
        return self._control_locks.setdefault(worker_id, asyncio.Lock())

    async def ping_worker(self, worker_id: int,
                          detail: bool = False) -> Dict[str, Any]:
        """Health-probe one worker over its control link (serialised)."""
        async with self._control_lock(worker_id):
            control = await self._control(worker_id)
            return await control.ping(detail=detail)

    async def harvest(self, worker_id: int) -> List[Dict[str, Any]]:
        """Pull every session state doc off one worker (destructive).

        End-of-run collection for the chaos harness and tests: the
        sessions are ``migrate_out``-ed in chunks and *removed* from
        the worker.
        """
        docs: List[Dict[str, Any]] = []
        async with self._control_lock(worker_id):
            control = await self._control(worker_id)
            pong = await control.ping(detail=True)
            users = [int(u) for u in pong.get("user_ids", [])]
            for start in range(0, len(users), MIGRATE_CHUNK):
                docs.extend(await control.migrate_out(
                    users[start:start + MIGRATE_CHUNK]))
        return docs

    async def _control(self, worker_id: int) -> IngestClient:
        """A connected control client to one worker (cached)."""
        client = self._controls.get(worker_id)
        if client is not None and client.connected:
            return client
        host, port = self.address_of(worker_id)
        client = IngestClient(
            host, port,
            connect_timeout_s=self.config.heartbeat_timeout_s,
            read_timeout_s=self.config.heartbeat_timeout_s)
        await client.connect()
        self._controls[worker_id] = client
        return client

    async def _drop_control(self, worker_id: int) -> None:
        client = self._controls.pop(worker_id, None)
        if client is not None:
            await client.close(polite=False)

    async def _close_controls(self) -> None:
        for worker_id in list(self._controls):
            await self._drop_control(worker_id)

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    async def sessions_of(self, worker_id: int) -> List[int]:
        """The user ids currently live on one worker (detail ping)."""
        pong = await self.ping_worker(worker_id, detail=True)
        return [int(u) for u in pong.get("user_ids", [])]

    async def migrate(self, src: int, dst: int,
                      user_ids: Sequence[int]) -> int:
        """Move users' sessions from worker ``src`` to ``dst``.

        The exchange is chunked (``MIGRATE_CHUNK`` sessions per frame)
        so dense windows never overflow a protocol frame, and *ordered
        for safety*: a chunk is pulled out of ``src`` only after the
        previous chunk landed in ``dst``, so a crash mid-migration
        strands at most one chunk in flight — and that chunk's sessions
        are still inside ``src``'s checkpoint lineage until the
        ``migrate_out`` reply, so nothing is ever in *zero* places.

        Returns the number of sessions that actually moved (users with
        no live session on ``src`` move nothing).

        Raises:
            FabricError / ServeError: a control link failed; the caller
                (router) re-resolves ownership before retrying.
        """
        user_ids = sorted(set(int(u) for u in user_ids))
        if not user_ids or src == dst:
            return 0
        moved = 0
        t0 = time.monotonic()
        with obs.span("fabric.migrate", src=src, dst=dst,
                      users=len(user_ids)):
            # Both control links locked for the whole exchange, in id
            # order so concurrent migrations can never deadlock.
            first, second = sorted((src, dst))
            async with self._control_lock(first):
                async with self._control_lock(second):
                    src_control = await self._control(src)
                    dst_control = await self._control(dst)
                    for start in range(0, len(user_ids), MIGRATE_CHUNK):
                        chunk = user_ids[start:start + MIGRATE_CHUNK]
                        docs = await src_control.migrate_out(chunk)
                        if docs:
                            moved += await dst_control.migrate_in(docs)
        elapsed = time.monotonic() - t0
        obs.histogram("repro_fabric_migration_seconds").observe(elapsed)
        obs.event("fabric.migrate.done", src=src, dst=dst,
                  moved=moved, seconds=round(elapsed, 4))
        return moved
