"""The perf-benchmark harness behind ``repro bench``.

Times the end-to-end reproduction at paper scale — 1/5/15 users for the
25 s characterisation and 120 s accuracy trial lengths — on both report
synthesis paths (legacy scalar vs batched vectorized), then times the
TagBreathe pipeline over the captured reports.  Results land in two
JSON files at the output directory root:

* ``BENCH_simulation.json`` — per-case wall-clock for scalar and
  vectorized capture synthesis, with the speedup ratio measured in the
  same run, same seed, same machine.
* ``BENCH_pipeline.json`` — TagBreathe batch-processing throughput over
  each capture (reports/s, users estimated), plus the ``streaming``
  suite: serve-shaped replay of the same captures comparing the
  incremental O(new-samples) cadence tick against the from-scratch
  recompute tick, with memoized (no-new-data) tick latency and the
  derived per-core serve capacity, and the batched SoA feed
  (``feed_batch`` over column chunks) timed against the scalar feed
  with its bit-exactness contract checked in-run; plus the ``wire``
  suite: binary column frames vs per-report JSON over a real localhost
  socket (bytes/report and acked ingest throughput); plus the
  ``fabric_scale`` suite: a population-scale soak of the multi-process
  serve fabric (EPC-remapped synthetic users, one mid-run rebalance)
  whose session-accounting invariants — including per-machine capacity
  (``users_per_machine``) and the acked==sent ingest contract — are
  machine-independent.

Both paths consume identical MAC randomness, so each case's scalar and
vectorized timings cover the *same* read-event stream — the ratio is a
pure synthesis-path comparison, not a workload difference.  The
streaming suite replays the identical report stream through both tick
engines interleaved, so its speedup ratios are also same-workload,
same-machine comparisons (which is what lets CI compare *ratios* across
machines; see ``tools/check_bench_regression.py``).
"""

from __future__ import annotations

import json
import os
import platform
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from . import obs, perf
from .body import MetronomeBreathing, Subject
from .config import ReaderConfig
from .core.pipeline import TagBreathe
from .errors import DegradedEstimateWarning, InsufficientDataError
from .reader.batch import ReportBatch
from .sim.engine import SimulationResult, run_scenario
from .sim.scenario import Scenario

#: (users, duration_s) grid of the full benchmark — the paper's trial
#: lengths (25 s characterisation, 120 s accuracy) at growing population.
FULL_GRID = [(1, 25.0), (1, 120.0), (5, 25.0), (5, 120.0),
             (15, 25.0), (15, 120.0)]

#: Abbreviated grid for CI smoke runs.  The paper's 25 s characterisation
#: length is the shortest trial that reliably yields estimates for every
#: user (the zero-crossing buffer needs ~3.5 breaths).
QUICK_GRID = [(1, 25.0), (5, 25.0)]

#: Contending item tags present in every benchmark scenario.
CONTENDING_TAGS = 10


def benchmark_scenario(users: int, seed: int = 0) -> Scenario:
    """A deterministic multi-user scenario for benchmarking.

    Users sit side by side at staggered distances with individual
    metronome rates, plus a fixed population of contending item tags —
    the busy-room shape of the paper's Fig. 13/14 experiments.
    """
    subjects = [
        Subject(
            user_id=uid,
            distance_m=2.0 + 0.2 * (uid - 1),
            lateral_offset_m=(uid - (users + 1) / 2) * 0.5,
            breathing=MetronomeBreathing(8.0 + (uid % 5) * 2.0),
            sway_seed=seed * 100 + uid,
        )
        for uid in range(1, users + 1)
    ]
    return Scenario(subjects).with_contending_tags(CONTENDING_TAGS, seed=seed)


def _time_capture(scenario: Scenario, duration_s: float, seed: int,
                  vectorized: bool) -> Dict:
    """Run one capture and return (seconds, result) style timing info."""
    perf.reset()
    t0 = time.perf_counter()
    result = run_scenario(
        scenario, duration_s=duration_s, seed=seed,
        reader_config=ReaderConfig(vectorized=vectorized),
    )
    elapsed = time.perf_counter() - t0
    stages = perf.snapshot()["stages"]
    return {
        "seconds": elapsed,
        "reports": len(result.reports),
        "mac_s": stages.get("reader.mac", {}).get("seconds"),
        "synthesize_s": stages.get("reader.synthesize", {}).get("seconds"),
        "result": result,
    }


def run_simulation_benchmark(grid: List, seed: int = 0
                             ) -> "tuple[Dict, Dict[tuple, SimulationResult]]":
    """Time scalar vs vectorized capture synthesis over the grid.

    Returns:
        (summary dict, captured results keyed by (users, duration_s)) —
        the captures feed :func:`run_pipeline_benchmark` so both suites
        share one simulation pass.
    """
    cases = []
    captures: Dict[tuple, SimulationResult] = {}
    for users, duration_s in grid:
        scenario = benchmark_scenario(users, seed=seed)
        scalar = _time_capture(scenario, duration_s, seed, vectorized=False)
        vector = _time_capture(scenario, duration_s, seed, vectorized=True)
        captures[(users, duration_s)] = vector.pop("result")
        scalar.pop("result")
        speedup = (scalar["seconds"] / vector["seconds"]
                   if vector["seconds"] > 0 else float("inf"))
        cases.append({
            "users": users,
            "duration_s": duration_s,
            "tags": scenario.total_tag_count(),
            "reports": vector["reports"],
            "scalar": {k: v for k, v in scalar.items() if k != "reports"},
            "vectorized": {k: v for k, v in vector.items() if k != "reports"},
            "speedup": speedup,
        })
    headline = max(cases, key=lambda c: (c["users"], c["duration_s"]))
    summary = {
        "suite": "simulation",
        "machine": _machine_info(),
        "seed": seed,
        "cases": cases,
        "headline": {
            "users": headline["users"],
            "duration_s": headline["duration_s"],
            "speedup": headline["speedup"],
        },
    }
    return summary, captures


def run_pipeline_benchmark(captures: Dict[tuple, SimulationResult],
                           seed: int = 0) -> Dict:
    """Time TagBreathe batch processing over benchmark captures."""
    cases = []
    for (users, duration_s), result in sorted(captures.items()):
        pipeline = TagBreathe(
            user_ids=set(result.scenario.monitored_user_ids)
        )
        perf.reset()
        t0 = time.perf_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            estimates = pipeline.process(result.reports)
        elapsed = time.perf_counter() - t0
        counters = perf.snapshot()["counters"]
        cases.append({
            "users": users,
            "duration_s": duration_s,
            "reports": len(result.reports),
            "process_s": elapsed,
            "reports_per_s": (len(result.reports) / elapsed
                              if elapsed > 0 else float("inf")),
            "users_estimated": len(estimates),
            "counters": counters,
        })
    return {
        "suite": "pipeline",
        "machine": _machine_info(),
        "seed": seed,
        "cases": cases,
    }


#: Stream time fed before the first streaming-benchmark cadence tick
#: (the analysis window must partially fill before ticks mean anything).
STREAM_WARMUP_S = 12.0

#: Stream-time interval between streaming-benchmark cadence ticks —
#: matches the serve layer's default ``estimate_interval_s``.
STREAM_CADENCE_S = 5.0

#: Reports per column chunk on the batched-feed measurement — matches
#: the ingest client's column-frame coalescing scale and is past the
#: knee where per-batch overheads amortize.
STREAM_BATCH_CHUNK = 4096


def _buffers_equal(a: TagBreathe, b: TagBreathe) -> bool:
    """Whether two engines' streaming buffers are bit-identical."""
    ba, bb = a._report_buffers, b._report_buffers
    if ba.keys() != bb.keys():
        return False
    for key, pa in ba.items():
        pb = bb[key]
        if (pa.t != pb.t or pa.phase != pb.phase or pa.rssi != pb.rssi
                or pa.doppler != pb.doppler or pa.channel != pb.channel
                or pa.antenna != pb.antenna or pa.last_t != pb.last_t
                or pa.since_prune != pb.since_prune):
            return False
    return True


def run_streaming_benchmark(captures: Dict[tuple, SimulationResult],
                            seed: int = 0) -> Dict:
    """Serve-shaped replay: incremental vs recompute cadence ticks.

    Each capture is replayed report-by-report through two engines fed in
    lockstep — the default incremental engine and a
    ``incremental=False`` reference that recomputes every tick from the
    buffered window — and every ``STREAM_CADENCE_S`` of stream time each
    monitored user is ticked on both, timing the ticks separately.  A
    third timing re-ticks the incremental engine immediately (no new
    data), measuring the memoized-tick latency a serve deployment pays
    whenever a user's stream was quiet between cadences.

    Every tick's estimate is cross-checked between the two engines;
    ``max_rate_diff_bpm`` is expected to be exactly 0.0 — the
    incremental path is bit-equivalent by construction (DESIGN.md §12) —
    so a nonzero value in a committed benchmark is a correctness alarm,
    not noise.

    ``serve_capacity_users`` is the derived headline: how many users one
    core can tick per cadence interval, charging each user its share of
    feed cost plus one computed incremental tick.
    """
    cases = []
    for (users, duration_s), result in sorted(captures.items()):
        user_ids = sorted(result.scenario.monitored_user_ids)
        inc = TagBreathe(user_ids=set(user_ids))
        rec = TagBreathe(user_ids=set(user_ids), incremental=False)
        reports = result.reports
        feed_s = inc_s = rec_s = hit_s = 0.0
        ticks = insufficient = 0
        max_diff = 0.0
        next_tick = (reports[0].timestamp_s + STREAM_WARMUP_S
                     if reports else None)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            for report in reports:
                t0 = time.perf_counter()
                inc.feed(report)
                feed_s += time.perf_counter() - t0
                rec.feed(report)
                if next_tick is None or report.timestamp_s < next_tick:
                    continue
                next_tick += STREAM_CADENCE_S
                for uid in user_ids:
                    ticks += 1
                    t0 = time.perf_counter()
                    try:
                        a = inc.estimate_user(uid)
                    except InsufficientDataError:
                        a = None
                    inc_s += time.perf_counter() - t0
                    t0 = time.perf_counter()
                    try:
                        b = rec.estimate_user(uid)
                    except InsufficientDataError:
                        b = None
                    rec_s += time.perf_counter() - t0
                    t0 = time.perf_counter()
                    try:
                        inc.estimate_user(uid)
                    except InsufficientDataError:
                        pass
                    hit_s += time.perf_counter() - t0
                    if a is None or b is None:
                        insufficient += 1
                        if (a is None) != (b is None):
                            max_diff = float("inf")
                    else:
                        max_diff = max(max_diff,
                                       abs(a.rate_bpm - b.rate_bpm))
        # The SoA hot path: the identical stream packed as column chunks
        # (the packing itself is untimed — a columnar reader delivers
        # arrays natively; ``from_reports`` is the compatibility shim)
        # and fed through ``feed_batch``.  Same-run ratio against the
        # scalar feed above, so machine speed cancels out, and the
        # bit-exactness contract is *checked*, not assumed.
        batch_all = ReportBatch.from_reports(reports)
        chunks = [
            batch_all.select(np.arange(
                lo, min(lo + STREAM_BATCH_CHUNK, len(batch_all))))
            for lo in range(0, len(batch_all), STREAM_BATCH_CHUNK)
        ]
        bat = TagBreathe(user_ids=set(user_ids))
        t0 = time.perf_counter()
        for chunk in chunks:
            bat.feed_batch(chunk)
        batch_s = time.perf_counter() - t0
        state_equal = (bat.feed_drop_counts == inc.feed_drop_counts
                       and _buffers_equal(bat, inc))
        batch_diff = 0.0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            for uid in user_ids:
                try:
                    a = bat.estimate_user(uid)
                except InsufficientDataError:
                    a = None
                try:
                    b = inc.estimate_user(uid)
                except InsufficientDataError:
                    b = None
                if (a is None) != (b is None):
                    batch_diff = float("inf")
                elif a is not None:
                    batch_diff = max(batch_diff,
                                     abs(a.rate_bpm - b.rate_bpm))

        inc_tick = inc_s / ticks if ticks else float("nan")
        rec_tick = rec_s / ticks if ticks else float("nan")
        hit_tick = hit_s / ticks if ticks else float("nan")
        # Per-user feed cost over one cadence interval: this user's
        # share of the stream's reports in STREAM_CADENCE_S of time.
        feed_per_report = feed_s / len(reports) if reports else 0.0
        reports_per_user_cadence = (len(reports) / duration_s / users
                                    * STREAM_CADENCE_S)
        user_cadence_cost = (inc_tick
                             + feed_per_report * reports_per_user_cadence)
        cases.append({
            "users": users,
            "duration_s": duration_s,
            "reports": len(reports),
            "ticks": ticks,
            "insufficient_ticks": insufficient,
            "feed_s": feed_s,
            "feed_reports_per_s": (len(reports) / feed_s
                                   if feed_s > 0 else float("inf")),
            "batch_chunk": STREAM_BATCH_CHUNK,
            "feed_batch_s": batch_s,
            "feed_batch_reports_per_s": (len(reports) / batch_s
                                         if batch_s > 0 else float("inf")),
            "feed_batch_speedup": (feed_s / batch_s
                                   if batch_s > 0 else float("inf")),
            "batch_state_equal": state_equal,
            "batch_max_rate_diff_bpm": batch_diff,
            "incremental_tick_s": inc_tick,
            "recompute_tick_s": rec_tick,
            "cached_tick_s": hit_tick,
            "tick_speedup": (rec_tick / inc_tick
                             if inc_tick > 0 else float("inf")),
            "cached_tick_speedup": (rec_tick / hit_tick
                                    if hit_tick > 0 else float("inf")),
            "serve_capacity_users": (STREAM_CADENCE_S / user_cadence_cost
                                     if user_cadence_cost > 0
                                     else float("inf")),
            "max_rate_diff_bpm": max_diff,
        })
    headline = max(cases, key=lambda c: (c["users"], c["duration_s"]))
    return {
        "warmup_s": STREAM_WARMUP_S,
        "cadence_s": STREAM_CADENCE_S,
        "cases": cases,
        "headline": {
            "users": headline["users"],
            "duration_s": headline["duration_s"],
            "tick_speedup": headline["tick_speedup"],
            "cached_tick_speedup": headline["cached_tick_speedup"],
            "serve_capacity_users": headline["serve_capacity_users"],
            "max_rate_diff_bpm": headline["max_rate_diff_bpm"],
            "feed_batch_speedup": headline["feed_batch_speedup"],
            "batch_state_equal": all(c["batch_state_equal"]
                                     for c in cases),
            "batch_max_rate_diff_bpm": max(c["batch_max_rate_diff_bpm"]
                                           for c in cases),
        },
    }


def run_wire_benchmark(captures: Dict[tuple, SimulationResult],
                       seed: int = 0) -> Dict:
    """Wire-format shootout over a real socket: column frames vs JSON.

    Replays one capture twice into a fresh in-process
    :class:`~repro.serve.server.BreathServer` over localhost TCP — once
    with the binary column frame format negotiated (the client
    coalesces ~:data:`~repro.serve.client._COLUMN_BATCH` reports per
    frame, the server ingests them through ``feed_batch``), once as
    per-report JSON messages — and records bytes on the wire and acked
    ingest throughput for each.

    ``bytes_per_report`` is a property of the wire format, not the
    machine (48 data bytes per report in a column frame vs ~200 of
    JSON), so the headline ``bytes_ratio`` is CI-comparable without a
    baseline; ``ingest_speedup`` is a same-machine wall-clock ratio.
    """
    import asyncio

    from .serve.client import IngestClient
    from .serve.server import BreathServer

    key = (5, 25.0) if (5, 25.0) in captures else max(captures)
    reports = captures[key].reports

    async def one(frames: tuple, mode: str) -> Dict:
        server = BreathServer(n_shards=2)
        await server.start()
        client = IngestClient("127.0.0.1", server.port, frames=frames,
                              client_id=f"wire-bench-{mode}")
        await client.connect()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            t0 = time.perf_counter()
            stats = await client.replay(reports, speed=0.0)
            wall = time.perf_counter() - t0
            await client.close()
            await server.drain()
        return {
            "mode": mode,
            "users": key[0],
            "duration_s": key[1],
            "reports": len(reports),
            "sent": stats.sent,
            "acked": stats.acked,
            "shed_total": stats.shed_total,
            "bytes_sent": stats.bytes_sent,
            "bytes_per_report": (stats.bytes_sent / stats.sent
                                 if stats.sent else float("inf")),
            "wall_s": wall,
            "acked_reports_per_s": (stats.acked / wall
                                    if wall > 0 else float("inf")),
        }

    async def both() -> List[Dict]:
        return [await one(("column",), "column"), await one((), "json")]

    column, plain = asyncio.run(both())
    return {
        "seed": seed,
        "cases": [column, plain],
        "headline": {
            "users": key[0],
            "duration_s": key[1],
            "column_bytes_per_report": column["bytes_per_report"],
            "json_bytes_per_report": plain["bytes_per_report"],
            "bytes_ratio": (plain["bytes_per_report"]
                            / column["bytes_per_report"]
                            if column["bytes_per_report"]
                            else float("inf")),
            "ingest_speedup": (column["acked_reports_per_s"]
                               / plain["acked_reports_per_s"]
                               if plain["acked_reports_per_s"]
                               else float("inf")),
            "acked_equal_sent": (column["acked"] == column["sent"]
                                 and plain["acked"] == plain["sent"]),
        },
    }


#: Fabric soak population: full runs settle >=50k concurrent sessions
#: (the ward-scale population the multi-machine fabric is sized
#: against; per-machine capacity is published as users/worker);
#: quick runs keep CI within budget at the same code paths.
SOAK_FULL_USERS = 50_000
SOAK_QUICK_USERS = 1_000

#: Fabric soak worker-process count (before the mid-run rebalance).
SOAK_WORKERS = 4

#: Reports cloned per synthetic soak user — enough to create a session,
#: ride through a checkpoint, and survive a migration, without turning
#: the soak into a throughput benchmark of the breathing DSP.
SOAK_REPORTS_PER_USER = 12


def run_fabric_soak_benchmark(quick: bool = False, seed: int = 0) -> Dict:
    """Soak the multi-process serve fabric at population scale.

    Synthesises a large user population by EPC-remapping a small real
    capture — one simulated subject's first ``SOAK_REPORTS_PER_USER``
    reads are cloned under thousands of distinct user ids
    (:meth:`EPC96.from_user_tag` keeps the tag ids), interleaved
    slice-major so every worker ingests continuously.  The stream is
    replayed at full speed into a ``SOAK_WORKERS``-process fabric, with
    one :meth:`BreathFabric.add_worker` rebalance injected mid-run.

    The *invariants* in the result are machine-independent and guarded
    by ``tools/check_bench_regression.py``:

    * ``settled_sessions == users`` — no session was lost to routing,
      checkpointing, or the rebalance;
    * ``acked == sent`` (``acked_equal_sent``) — every report the
      client sent was acknowledged ingested; the fabric never shed or
      silently dropped under soak load;
    * ``migrated_sessions > 0`` — the rebalance actually moved load
      (an add_worker that moves nothing is a broken ring);
    * ``worker_restarts == 0`` — a soak is not a chaos run; any
      restart here is a real crash.

    ``users_per_machine`` (settled sessions / final worker count) is
    the published per-machine capacity figure: with the TCP worker
    transport, each worker process is the stand-in for one machine of
    the multi-machine deployment, so users/worker is users/machine.

    Wall-clock numbers (startup/ingest/rebalance seconds, reports/s)
    are recorded for humans but never compared across machines.
    """
    import asyncio
    import dataclasses
    import tempfile

    from .epc.codec import EPC96
    from .serve.client import IngestClient
    from .serve.fabric import BreathFabric
    from .serve.session import SessionConfig
    from .serve.supervisor import FabricConfig

    users = SOAK_QUICK_USERS if quick else SOAK_FULL_USERS
    capture = run_scenario(benchmark_scenario(1, seed=seed),
                           duration_s=25.0, seed=seed)
    base = [r for r in capture.reports
            if r.user_id == 1][:SOAK_REPORTS_PER_USER]
    reports = [
        dataclasses.replace(r, epc=EPC96.from_user_tag(uid, r.tag_id))
        for r in base
        for uid in range(1, users + 1)
    ]

    async def _soak(state_dir: str) -> Dict:
        fabric = BreathFabric(state_dir, FabricConfig(
            workers=SOAK_WORKERS,
            n_shards=1,
            heartbeat_interval_s=1.0,
            heartbeat_timeout_s=5.0,
            checkpoint_interval_s=30.0,
            session=SessionConfig(estimate_interval_s=5.0),
        ))
        t0 = time.perf_counter()
        await fabric.start()
        startup_s = time.perf_counter() - t0
        try:
            client = IngestClient("127.0.0.1", fabric.port,
                                  connect_timeout_s=30.0,
                                  read_timeout_s=120.0)
            await client.connect()
            half = len(reports) // 2
            t0 = time.perf_counter()
            first = await client.replay(reports[:half], speed=0.0)
            t_reb = time.perf_counter()
            new_id = await fabric.add_worker()
            rebalance_s = time.perf_counter() - t_reb
            migrated = int(
                (await fabric.supervisor.ping_worker(new_id))["sessions"])
            second = await client.replay(reports[half:], speed=0.0)
            ingest_s = time.perf_counter() - t0 - rebalance_s
            final = await fabric.fleet_stats()
            await client.close(polite=True)
        finally:
            restarts = sum(h.restarts
                           for h in fabric.supervisor.workers.values())
            await fabric.stop(graceful=True)
        per_worker = sorted(int(p.get("sessions", 0))
                            for p in final["workers"].values())
        mean = sum(per_worker) / len(per_worker) if per_worker else 0.0
        sent = first.sent + second.sent
        acked = max(first.acked, second.acked)
        settled = int(final["sessions"])
        return {
            "users": users,
            "reports": len(reports),
            "reports_per_user": SOAK_REPORTS_PER_USER,
            "workers_initial": SOAK_WORKERS,
            "workers_final": len(final["workers"]),
            "startup_s": startup_s,
            "ingest_s": ingest_s,
            "rebalance_s": rebalance_s,
            "reports_per_s": (len(reports) / ingest_s
                              if ingest_s > 0 else float("inf")),
            "sent": sent,
            # acks carry the route's cumulative received count, and both
            # replay halves share one connection — the second half's
            # final ack already covers the first.
            "acked": acked,
            "acked_equal_sent": acked == sent,
            "shed_total": int(final["shed_total"]),
            "settled_sessions": settled,
            "users_per_machine": (settled / len(final["workers"])
                                  if final["workers"] else 0.0),
            "migrated_sessions": migrated,
            "worker_restarts": restarts,
            "link_failures": fabric.counters["link_failures_total"],
            "rebalances": fabric.counters["rebalances_total"],
            "session_balance": {
                "min": per_worker[0] if per_worker else 0,
                "max": per_worker[-1] if per_worker else 0,
                "imbalance": (per_worker[-1] / mean if mean else
                              float("inf")),
            },
        }

    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        case = asyncio.run(_soak(tmp))
    return {
        "quick": quick,
        "seed": seed,
        "cases": [case],
        "headline": {
            "users": case["users"],
            "settled_sessions": case["settled_sessions"],
            "users_per_machine": case["users_per_machine"],
            "acked_equal_sent": case["acked_equal_sent"],
            "migrated_sessions": case["migrated_sessions"],
            "worker_restarts": case["worker_restarts"],
            "reports_per_s": case["reports_per_s"],
        },
    }


#: Idle-economics population: registered users parked in the cold tier.
IDLE_FULL_REGISTERED = 1_000_000
IDLE_QUICK_REGISTERED = 20_000

#: Fraction of the registered fleet actively breathing at any instant
#: (the ward-realism assumption the ROADMAP names).
IDLE_ACTIVE_FRACTION = 0.01

#: Reports in an idle user's parked history — a brief monitoring burst
#: before going quiet, the characteristic idle profile of a fleet where
#: most registered users are not currently wearing tags.
IDLE_TEMPLATE_REPORTS = 64

#: Engine-backed sessions actually materialised and fed to steady state
#: to measure bytes-per-active-user (the fleet's active population is
#: this sample's cost times the active head-count).
IDLE_ACTIVE_SAMPLE_FULL = 8
IDLE_ACTIVE_SAMPLE_QUICK = 4

#: Hibernated users woken one by one to measure wake latency.
IDLE_WAKE_SAMPLE_FULL = 1_000
IDLE_WAKE_SAMPLE_QUICK = 200

#: Stream time the compressed soak compresses into back-to-back reps.
IDLE_SOAK_HOURS_FULL = 8.0
IDLE_SOAK_HOURS_QUICK = 1.0

#: Stream seconds of capture replayed per soak rep (time-shifted).
IDLE_SOAK_REP_S = 60.0

#: Stream seconds fed to each active-sample session — past the engine's
#: ~4-window (100 s) pruning horizon, so the measurement sees the
#: steady-state plateau, not a still-growing buffer.
IDLE_STEADY_S = 150.0


def _percentile_ms(samples_s: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples_s), q) * 1e3)


def run_idle_economics_benchmark(quick: bool = False, seed: int = 0) -> Dict:
    """Idle-user economics at registered-fleet scale (1M / 1 % active).

    Real fleets are idle-heavy: of ``registered_users`` only
    ``IDLE_ACTIVE_FRACTION`` are breathing into the system at any
    instant.  This suite measures what the hibernation cold tier buys:

    * **bytes_per_idle_user** — every registered user is parked in a
      :class:`~repro.serve.hibernate.HibernationStore` as a real,
      wakeable compressed document (a per-user rewrite of a template
      session's canonical JSON — verified by waking a sample), and the
      store's resident bytes are divided by the population;
    * **bytes_per_active_user** — a sample of engine-backed sessions is
      fed ``IDLE_STEADY_S`` stream seconds (past the pruning horizon)
      and measured with ``tracemalloc``, capturing the *true* python +
      numpy resident cost, with the engine's own ``streaming_nbytes``
      accounting recorded alongside;
    * **wake latency percentiles** — hibernated users are woken one by
      one through ``SessionShard.session_for`` (inflate + bit-exact
      replay), p50/p95/p99 over the sample, plus the worst-case wake of
      a full steady-state session;
    * **flat-ceiling soak** — one engine is fed an
      ``IDLE_SOAK_HOURS``-equivalent stream as back-to-back time-shifted
      60 s reps with a cadence estimate per rep; the resident-bytes
      ceiling of the last half over the steady quarter must stay ~1
      (``ceiling_ratio``), proving prune-driven compaction actually
      releases memory.

    The machine-independent floors (idle/active ratio >= 10x, wake p99,
    ceiling ratio) are guarded by ``tools/check_bench_regression.py``.
    """
    import tracemalloc

    from .serve.checkpoint import session_state_from_doc, \
        session_state_to_doc
    from .serve.hibernate import HibernationStore, blob_to_doc, \
        compress_doc_text, doc_to_blob
    from .serve.session import SessionConfig, SessionShard, UserSession
    from .epc.codec import EPC96

    registered = IDLE_QUICK_REGISTERED if quick else IDLE_FULL_REGISTERED
    active_users = int(registered * IDLE_ACTIVE_FRACTION)
    active_sample = (IDLE_ACTIVE_SAMPLE_QUICK if quick
                     else IDLE_ACTIVE_SAMPLE_FULL)
    wake_sample = IDLE_WAKE_SAMPLE_QUICK if quick else IDLE_WAKE_SAMPLE_FULL
    soak_hours = IDLE_SOAK_HOURS_QUICK if quick else IDLE_SOAK_HOURS_FULL
    config = SessionConfig()

    capture = run_scenario(benchmark_scenario(1, seed=seed),
                           duration_s=IDLE_STEADY_S, seed=seed)
    reports = [r for r in capture.reports if r.user_id == 1]

    # ---- bytes per ACTIVE user: tracemalloc over a fed sample --------
    batch = ReportBatch.from_reports(reports)
    tracemalloc.start()
    before, _peak = tracemalloc.get_traced_memory()
    active_sessions = []
    for _ in range(active_sample):
        session = UserSession(1, config)
        for start in range(0, len(batch), STREAM_BATCH_CHUNK):
            session.ingest_batch(batch.select(
                np.arange(start, min(start + STREAM_BATCH_CHUNK,
                                     len(batch)))))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            session.estimate_now()
        active_sessions.append(session)
    after, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    bytes_per_active = (after - before) / active_sample
    steady_engine_nbytes = active_sessions[0].engine.streaming_nbytes(1)
    steady_doc = session_state_to_doc(active_sessions[0].state())
    steady_doc["hibernated"] = True
    steady_blob = doc_to_blob(steady_doc)
    del active_sessions

    # ---- bytes per IDLE user: park the whole registered fleet -------
    # A template session (the idle profile: a brief burst, then quiet)
    # is serialised once; each user's blob is a canonical-JSON rewrite
    # of the template (their user_id, their EPCs) — byte-identical to
    # hibernating that user for real, and wakeable, at a fraction of
    # the cost of building a million engines.
    template = UserSession(1, config)
    for report in reports[:IDLE_TEMPLATE_REPORTS]:
        template.ingest(report)
    template_doc = session_state_to_doc(template.state())
    template_doc["hibernated"] = True
    template_text = json.dumps(template_doc, separators=(",", ":"),
                               sort_keys=True)
    tag_ids = sorted({r.tag_id for r in reports[:IDLE_TEMPLATE_REPORTS]})
    old_hexes = [f'"{EPC96.from_user_tag(1, tag).to_hex()}"'
                 for tag in tag_ids]
    store = HibernationStore()
    t0 = time.perf_counter()
    for uid in range(1, registered + 1):
        text = template_text.replace('"user_id":1', f'"user_id":{uid}')
        for tag, old in zip(tag_ids, old_hexes):
            text = text.replace(
                old, f'"{EPC96.from_user_tag(uid, tag).to_hex()}"')
        store.put_blob(uid, compress_doc_text(text))
    registration_s = time.perf_counter() - t0
    bytes_per_idle = store.resident_bytes() / registered

    # ---- wake latency: inflate + bit-exact replay per user ----------
    shard = SessionShard(0, config, publish=lambda message: None)
    wake_ids = list(range(1, wake_sample + 1))
    for uid in wake_ids:
        shard.hibernated.put_blob(uid, store.blob(uid))
    wake_times: List[float] = []
    verified = 0
    for uid in wake_ids:
        t0 = time.perf_counter()
        session = shard.session_for(uid)
        wake_times.append(time.perf_counter() - t0)
        if (session.user_id == uid
                and session.reports_in == IDLE_TEMPLATE_REPORTS
                and len(session.engine.buffered_reports(uid))
                == IDLE_TEMPLATE_REPORTS):
            verified += 1
    # Worst case: waking a full steady-state window.
    t0 = time.perf_counter()
    steady_state = session_state_from_doc(blob_to_doc(steady_blob))
    steady_session = UserSession(1, config)
    steady_session.restore(steady_state, steady_state["reports"])
    wake_steady_s = time.perf_counter() - t0
    del steady_session

    # ---- compressed soak: flat memory ceiling over stream-hours -----
    reps = max(4, int(round(soak_hours * 3600.0 / IDLE_SOAK_REP_S)))
    rep_mask = np.asarray(batch.t) <= (float(batch.t[0]) + IDLE_SOAK_REP_S)
    rep_batch = batch.select(np.flatnonzero(rep_mask))
    span = float(rep_batch.t[-1] - rep_batch.t[0]) + 0.05
    engine = TagBreathe(user_ids={1})
    nbytes_samples: List[int] = []
    soak_reports = 0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstimateWarning)
        for rep in range(reps):
            shifted = ReportBatch(
                rep_batch.t + rep * span, rep_batch.phase, rep_batch.rssi,
                rep_batch.doppler, rep_batch.channel, rep_batch.antenna,
                rep_batch.user_id, rep_batch.tag_id)
            soak_reports += engine.feed_batch(shifted)
            try:
                engine.estimate_user(1)
            except InsufficientDataError:
                pass
            nbytes_samples.append(engine.streaming_nbytes(1))
    quarter, half = len(nbytes_samples) // 4, len(nbytes_samples) // 2
    steady_max = max(nbytes_samples[quarter:half])
    late_max = max(nbytes_samples[half:])
    ceiling_ratio = late_max / steady_max if steady_max else float("inf")

    idle_active_ratio = (bytes_per_active / bytes_per_idle
                         if bytes_per_idle else float("inf"))
    fleet_bytes = (active_users * bytes_per_active
                   + (registered - active_users) * bytes_per_idle)
    result = {
        "quick": quick,
        "seed": seed,
        "registered_users": registered,
        "active_users": active_users,
        "active_sample": active_sample,
        "template_reports": IDLE_TEMPLATE_REPORTS,
        "registration_s": registration_s,
        "registered_per_s": (registered / registration_s
                             if registration_s > 0 else float("inf")),
        "store_bytes": store.resident_bytes(),
        "bytes_per_idle_user": bytes_per_idle,
        "bytes_per_active_user": bytes_per_active,
        "idle_active_ratio": idle_active_ratio,
        "fleet_resident_gb_projection": fleet_bytes / 1e9,
        "steady_state": {
            "stream_s": IDLE_STEADY_S,
            "engine_nbytes": steady_engine_nbytes,
            "blob_bytes": len(steady_blob),
            "compression_ratio": (steady_engine_nbytes / len(steady_blob)
                                  if steady_blob else float("inf")),
            "wake_s": wake_steady_s,
        },
        "wake": {
            "sample": wake_sample,
            "verified": verified,
            "p50_ms": _percentile_ms(wake_times, 50),
            "p95_ms": _percentile_ms(wake_times, 95),
            "p99_ms": _percentile_ms(wake_times, 99),
            "max_ms": float(max(wake_times) * 1e3),
        },
        "soak": {
            "hours": soak_hours,
            "reps": reps,
            "rep_stream_s": IDLE_SOAK_REP_S,
            "reports": soak_reports,
            "steady_nbytes_max": steady_max,
            "late_nbytes_max": late_max,
            "ceiling_ratio": ceiling_ratio,
            "nbytes_samples": nbytes_samples[:: max(1, reps // 48)],
        },
    }
    result["headline"] = {
        "registered_users": registered,
        "active_users": active_users,
        "bytes_per_idle_user": bytes_per_idle,
        "bytes_per_active_user": bytes_per_active,
        "idle_active_ratio": idle_active_ratio,
        "wake_p99_ms": result["wake"]["p99_ms"],
        "wake_verified": verified == wake_sample,
        "soak_ceiling_ratio": ceiling_ratio,
    }
    return result


def run_obs_overhead_benchmark(users: int, duration_s: float,
                               seed: int = 0, repeats: int = 5) -> Dict:
    """Measure what round-level tracing costs on one headline case.

    Runs the same seeded capture with observability off (perf counters
    only, the pre-§10 baseline) and inside
    ``obs.capture(detail="round")``, and reports the wall-clock overhead
    fraction plus the number of events one traced run emits.  Single
    runs on a shared machine jitter by tens of percent — far above the
    few-percent effect being measured — so the two configurations are
    timed as *interleaved* pairs (slow drift lands on both sides) and
    compared best-of-``repeats``.  The acceptance budget is <5 % on the
    15-user / 120 s headline.
    """
    scenario = benchmark_scenario(users, seed=seed)
    config = ReaderConfig(vectorized=True)

    def one_run() -> float:
        t0 = time.perf_counter()
        run_scenario(scenario, duration_s=duration_s, seed=seed,
                     reader_config=config)
        return time.perf_counter() - t0

    one_run()  # warm-up: page in code paths and allocator state
    baseline_times: List[float] = []
    traced_times: List[float] = []
    events = 0
    for _ in range(repeats):
        baseline_times.append(one_run())
        with obs.capture(detail="round") as (tracer, _registry):
            traced_times.append(one_run())
            events = len(tracer.events)
    baseline_s = min(baseline_times)
    traced_s = min(traced_times)
    return {
        "users": users,
        "duration_s": duration_s,
        "baseline_s": baseline_s,
        "traced_s": traced_s,
        "events": events,
        "overhead_fraction": (traced_s / baseline_s - 1.0
                              if baseline_s > 0 else float("inf")),
    }


def run_scenario_pack_benchmark(quick: bool = False, seed: int = 0) -> Dict:
    """Run every scenario pack and collect its accuracy/alarm metrics.

    The ``scenarios`` suite of ``BENCH_simulation.json``: each pack in
    :data:`repro.sim.scenarios.PACKS` is captured once and scored for
    every configured engine (see
    :func:`repro.sim.scenarios.evaluate_pack`).  The numbers are
    workload metrics, not wall-clock — they are machine-independent and
    CI gates them directly (``check_scenario_suite`` in
    ``tools/check_bench_regression.py``).
    """
    from .sim.scenarios import build_pack, pack_names
    from .sim.scenarios.evaluate import evaluate_pack
    t_start = time.perf_counter()
    packs = {name: evaluate_pack(build_pack(name, quick=quick, seed=seed),
                                 seed=seed)
             for name in pack_names()}
    return {
        "suite": "scenarios",
        "quick": quick,
        "seed": seed,
        "elapsed_s": time.perf_counter() - t_start,
        "packs": packs,
    }


def _machine_info() -> Dict:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def run_benchmarks(quick: bool = False, seed: int = 0,
                   out_dir: Optional[str] = None) -> Dict[str, Dict]:
    """Run both suites; write ``BENCH_*.json`` when ``out_dir`` is given.

    Returns:
        ``{"simulation": ..., "pipeline": ...}`` summaries (also what the
        JSON files contain).
    """
    grid = QUICK_GRID if quick else FULL_GRID
    simulation, captures = run_simulation_benchmark(grid, seed=seed)
    pipeline = run_pipeline_benchmark(captures, seed=seed)
    pipeline["streaming"] = run_streaming_benchmark(captures, seed=seed)
    pipeline["wire"] = run_wire_benchmark(captures, seed=seed)
    pipeline["fabric_scale"] = run_fabric_soak_benchmark(quick=quick,
                                                         seed=seed)
    pipeline["idle"] = run_idle_economics_benchmark(quick=quick, seed=seed)
    obs_users, obs_duration = max(grid)
    simulation["observability"] = run_obs_overhead_benchmark(
        obs_users, obs_duration, seed=seed)
    simulation["scenarios"] = run_scenario_pack_benchmark(
        quick=quick, seed=seed)
    simulation["quick"] = pipeline["quick"] = quick
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, payload in (("BENCH_simulation.json", simulation),
                              ("BENCH_pipeline.json", pipeline)):
            (out / name).write_text(json.dumps(payload, indent=2) + "\n")
    return {"simulation": simulation, "pipeline": pipeline}
