"""The perf-benchmark harness behind ``repro bench``.

Times the end-to-end reproduction at paper scale — 1/5/15 users for the
25 s characterisation and 120 s accuracy trial lengths — on both report
synthesis paths (legacy scalar vs batched vectorized), then times the
TagBreathe pipeline over the captured reports.  Results land in two
JSON files at the output directory root:

* ``BENCH_simulation.json`` — per-case wall-clock for scalar and
  vectorized capture synthesis, with the speedup ratio measured in the
  same run, same seed, same machine.
* ``BENCH_pipeline.json`` — TagBreathe batch-processing throughput over
  each capture (reports/s, users estimated).

Both paths consume identical MAC randomness, so each case's scalar and
vectorized timings cover the *same* read-event stream — the ratio is a
pure synthesis-path comparison, not a workload difference.
"""

from __future__ import annotations

import json
import os
import platform
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from . import obs, perf
from .body import MetronomeBreathing, Subject
from .config import ReaderConfig
from .core.pipeline import TagBreathe
from .errors import DegradedEstimateWarning
from .sim.engine import SimulationResult, run_scenario
from .sim.scenario import Scenario

#: (users, duration_s) grid of the full benchmark — the paper's trial
#: lengths (25 s characterisation, 120 s accuracy) at growing population.
FULL_GRID = [(1, 25.0), (1, 120.0), (5, 25.0), (5, 120.0),
             (15, 25.0), (15, 120.0)]

#: Abbreviated grid for CI smoke runs.  The paper's 25 s characterisation
#: length is the shortest trial that reliably yields estimates for every
#: user (the zero-crossing buffer needs ~3.5 breaths).
QUICK_GRID = [(1, 25.0), (5, 25.0)]

#: Contending item tags present in every benchmark scenario.
CONTENDING_TAGS = 10


def benchmark_scenario(users: int, seed: int = 0) -> Scenario:
    """A deterministic multi-user scenario for benchmarking.

    Users sit side by side at staggered distances with individual
    metronome rates, plus a fixed population of contending item tags —
    the busy-room shape of the paper's Fig. 13/14 experiments.
    """
    subjects = [
        Subject(
            user_id=uid,
            distance_m=2.0 + 0.2 * (uid - 1),
            lateral_offset_m=(uid - (users + 1) / 2) * 0.5,
            breathing=MetronomeBreathing(8.0 + (uid % 5) * 2.0),
            sway_seed=seed * 100 + uid,
        )
        for uid in range(1, users + 1)
    ]
    return Scenario(subjects).with_contending_tags(CONTENDING_TAGS, seed=seed)


def _time_capture(scenario: Scenario, duration_s: float, seed: int,
                  vectorized: bool) -> Dict:
    """Run one capture and return (seconds, result) style timing info."""
    perf.reset()
    t0 = time.perf_counter()
    result = run_scenario(
        scenario, duration_s=duration_s, seed=seed,
        reader_config=ReaderConfig(vectorized=vectorized),
    )
    elapsed = time.perf_counter() - t0
    stages = perf.snapshot()["stages"]
    return {
        "seconds": elapsed,
        "reports": len(result.reports),
        "mac_s": stages.get("reader.mac", {}).get("seconds"),
        "synthesize_s": stages.get("reader.synthesize", {}).get("seconds"),
        "result": result,
    }


def run_simulation_benchmark(grid: List, seed: int = 0
                             ) -> "tuple[Dict, Dict[tuple, SimulationResult]]":
    """Time scalar vs vectorized capture synthesis over the grid.

    Returns:
        (summary dict, captured results keyed by (users, duration_s)) —
        the captures feed :func:`run_pipeline_benchmark` so both suites
        share one simulation pass.
    """
    cases = []
    captures: Dict[tuple, SimulationResult] = {}
    for users, duration_s in grid:
        scenario = benchmark_scenario(users, seed=seed)
        scalar = _time_capture(scenario, duration_s, seed, vectorized=False)
        vector = _time_capture(scenario, duration_s, seed, vectorized=True)
        captures[(users, duration_s)] = vector.pop("result")
        scalar.pop("result")
        speedup = (scalar["seconds"] / vector["seconds"]
                   if vector["seconds"] > 0 else float("inf"))
        cases.append({
            "users": users,
            "duration_s": duration_s,
            "tags": scenario.total_tag_count(),
            "reports": vector["reports"],
            "scalar": {k: v for k, v in scalar.items() if k != "reports"},
            "vectorized": {k: v for k, v in vector.items() if k != "reports"},
            "speedup": speedup,
        })
    headline = max(cases, key=lambda c: (c["users"], c["duration_s"]))
    summary = {
        "suite": "simulation",
        "machine": _machine_info(),
        "seed": seed,
        "cases": cases,
        "headline": {
            "users": headline["users"],
            "duration_s": headline["duration_s"],
            "speedup": headline["speedup"],
        },
    }
    return summary, captures


def run_pipeline_benchmark(captures: Dict[tuple, SimulationResult],
                           seed: int = 0) -> Dict:
    """Time TagBreathe batch processing over benchmark captures."""
    cases = []
    for (users, duration_s), result in sorted(captures.items()):
        pipeline = TagBreathe(
            user_ids=set(result.scenario.monitored_user_ids)
        )
        perf.reset()
        t0 = time.perf_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            estimates = pipeline.process(result.reports)
        elapsed = time.perf_counter() - t0
        counters = perf.snapshot()["counters"]
        cases.append({
            "users": users,
            "duration_s": duration_s,
            "reports": len(result.reports),
            "process_s": elapsed,
            "reports_per_s": (len(result.reports) / elapsed
                              if elapsed > 0 else float("inf")),
            "users_estimated": len(estimates),
            "counters": counters,
        })
    return {
        "suite": "pipeline",
        "machine": _machine_info(),
        "seed": seed,
        "cases": cases,
    }


def run_obs_overhead_benchmark(users: int, duration_s: float,
                               seed: int = 0, repeats: int = 5) -> Dict:
    """Measure what round-level tracing costs on one headline case.

    Runs the same seeded capture with observability off (perf counters
    only, the pre-§10 baseline) and inside
    ``obs.capture(detail="round")``, and reports the wall-clock overhead
    fraction plus the number of events one traced run emits.  Single
    runs on a shared machine jitter by tens of percent — far above the
    few-percent effect being measured — so the two configurations are
    timed as *interleaved* pairs (slow drift lands on both sides) and
    compared best-of-``repeats``.  The acceptance budget is <5 % on the
    15-user / 120 s headline.
    """
    scenario = benchmark_scenario(users, seed=seed)
    config = ReaderConfig(vectorized=True)

    def one_run() -> float:
        t0 = time.perf_counter()
        run_scenario(scenario, duration_s=duration_s, seed=seed,
                     reader_config=config)
        return time.perf_counter() - t0

    one_run()  # warm-up: page in code paths and allocator state
    baseline_times: List[float] = []
    traced_times: List[float] = []
    events = 0
    for _ in range(repeats):
        baseline_times.append(one_run())
        with obs.capture(detail="round") as (tracer, _registry):
            traced_times.append(one_run())
            events = len(tracer.events)
    baseline_s = min(baseline_times)
    traced_s = min(traced_times)
    return {
        "users": users,
        "duration_s": duration_s,
        "baseline_s": baseline_s,
        "traced_s": traced_s,
        "events": events,
        "overhead_fraction": (traced_s / baseline_s - 1.0
                              if baseline_s > 0 else float("inf")),
    }


def _machine_info() -> Dict:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def run_benchmarks(quick: bool = False, seed: int = 0,
                   out_dir: Optional[str] = None) -> Dict[str, Dict]:
    """Run both suites; write ``BENCH_*.json`` when ``out_dir`` is given.

    Returns:
        ``{"simulation": ..., "pipeline": ...}`` summaries (also what the
        JSON files contain).
    """
    grid = QUICK_GRID if quick else FULL_GRID
    simulation, captures = run_simulation_benchmark(grid, seed=seed)
    pipeline = run_pipeline_benchmark(captures, seed=seed)
    obs_users, obs_duration = max(grid)
    simulation["observability"] = run_obs_overhead_benchmark(
        obs_users, obs_duration, seed=seed)
    simulation["quick"] = pipeline["quick"] = quick
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, payload in (("BENCH_simulation.json", simulation),
                              ("BENCH_pipeline.json", pipeline)):
            (out / name).write_text(json.dumps(payload, indent=2) + "\n")
    return {"simulation": simulation, "pipeline": pipeline}
