"""Lightweight performance instrumentation for the simulator and pipeline.

No analogue in the paper — this is engineering substrate.  A
:class:`PerfRecorder` accumulates wall-clock time per named stage
(context-manager timers) and named event counters, so a benchmark or a
``--perf`` CLI run can report where time went and at what throughput
(e.g. reads synthesized per second) without profiler overhead.

The module keeps one process-global recorder that the reader and the
TagBreathe pipeline feed by default; :func:`reset` starts a fresh
measurement window.  Instrumentation is a few dict updates per *stage*
(not per read), so it stays on permanently.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PerfRecorder:
    """Accumulates per-stage wall-clock time and named counters.

    Attributes:
        stage_s: total seconds spent inside each named stage.
        stage_calls: number of times each stage ran.
        counters: named event tallies (reads synthesized, reports fused...).
    """

    def __init__(self) -> None:
        self.stage_s: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a stage: ``with recorder.stage("reader.mac"): ...``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self.stage_s[name] = self.stage_s.get(name, 0.0) + elapsed
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def rate_hz(self, counter: str, stage: str) -> float:
        """Counter events per second of stage time (0.0 when unmeasured)."""
        elapsed = self.stage_s.get(stage, 0.0)
        if elapsed <= 0.0:
            return 0.0
        return self.counters.get(counter, 0) / elapsed

    def snapshot(self) -> dict:
        """A JSON-ready view of everything recorded so far."""
        return {
            "stages": {
                name: {
                    "seconds": self.stage_s[name],
                    "calls": self.stage_calls.get(name, 0),
                }
                for name in sorted(self.stage_s)
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def reset(self) -> None:
        """Drop all recorded stages and counters."""
        self.stage_s.clear()
        self.stage_calls.clear()
        self.counters.clear()


#: The process-global recorder the reader and pipeline feed by default.
_GLOBAL = PerfRecorder()


def get_recorder() -> PerfRecorder:
    """The process-global recorder."""
    return _GLOBAL


def stage(name: str):
    """Time a stage on the global recorder (context manager)."""
    return _GLOBAL.stage(name)


def count(name: str, n: int = 1) -> None:
    """Add to a counter on the global recorder."""
    _GLOBAL.count(name, n)


def snapshot() -> dict:
    """Snapshot the global recorder."""
    return _GLOBAL.snapshot()


def reset() -> None:
    """Reset the global recorder (start a fresh measurement window)."""
    _GLOBAL.reset()
