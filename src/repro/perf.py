"""Lightweight performance instrumentation for the simulator and pipeline.

No analogue in the paper — this is engineering substrate.  A
:class:`PerfRecorder` accumulates wall-clock time per named stage
(context-manager timers) and named event counters, so a benchmark or a
``--perf`` CLI run can report where time went and at what throughput
(e.g. reads synthesized per second) without profiler overhead.

Since the observability layer landed (:mod:`repro.obs`, DESIGN.md §10),
the recorder is a *facade*: stages and counters are stored in a
:class:`~repro.obs.metrics.MetricsRegistry` — the global recorder writes
into the global obs registry, so everything perf records is also visible
to the Prometheus exporter and travels inside metric snapshots (which is
how sweep workers ship their perf data back to the parent).  The public
API (``stage``/``count``/``rate_hz``/``snapshot``/``reset``) is
unchanged.

The module keeps one process-global recorder that the reader and the
TagBreathe pipeline feed by default; :func:`reset` starts a fresh
measurement window.  Instrumentation is a few dict updates per *stage*
(not per read), so it stays on permanently.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from . import obs
from .obs.metrics import Histogram, MetricsRegistry

#: Histogram family holding per-stage durations (label: ``stage``).
STAGE_METRIC = "repro_stage_seconds"

#: Counter family holding named event tallies (label: ``name``).
COUNTER_METRIC = "repro_events_total"

#: Sentinel: a recorder that always writes to the *current* global obs
#: registry (so sweep/telemetry scopes redirect it automatically).
_FOLLOW_OBS = object()


class PerfRecorder:
    """Accumulates per-stage wall-clock time and named counters.

    Attributes (all derived live from the backing registry):
        stage_s: total seconds spent inside each named stage.
        stage_calls: number of times each stage ran.
        counters: named event tallies (reads synthesized, reports fused...).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this recorder writes into."""
        if self._registry is _FOLLOW_OBS:
            return obs.get_registry()
        return self._registry

    def _stage_hist(self, name: str) -> Histogram:
        return self.registry.histogram(STAGE_METRIC, volatile=True, stage=name)

    @property
    def stage_s(self) -> Dict[str, float]:
        """Total seconds per stage (derived view)."""
        return {
            labels["stage"]: inst.sum
            for kind, metric, labels, inst in self.registry.instruments()
            if metric == STAGE_METRIC
        }

    @property
    def stage_calls(self) -> Dict[str, int]:
        """Run count per stage (derived view)."""
        return {
            labels["stage"]: inst.count
            for kind, metric, labels, inst in self.registry.instruments()
            if metric == STAGE_METRIC
        }

    @property
    def counters(self) -> Dict[str, int]:
        """Named event tallies (derived view; integral values stay ints)."""
        return {
            labels["name"]: _as_int(inst.value)
            for kind, metric, labels, inst in self.registry.instruments()
            if metric == COUNTER_METRIC
        }

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a stage: ``with recorder.stage("reader.mac"): ...``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self._stage_hist(name).observe(time.perf_counter() - t0)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a named counter."""
        self.registry.counter(COUNTER_METRIC, name=name).inc(n)

    def rate_hz(self, counter: str, stage: str) -> float:
        """Counter events per second of stage time (0.0 when unmeasured)."""
        elapsed = self.stage_s.get(stage, 0.0)
        if elapsed <= 0.0:
            return 0.0
        return self.counters.get(counter, 0) / elapsed

    def snapshot(self) -> dict:
        """A JSON-ready view of everything recorded so far."""
        calls = self.stage_calls
        return {
            "stages": {
                name: {"seconds": seconds, "calls": calls.get(name, 0)}
                for name, seconds in sorted(self.stage_s.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another recorder's :meth:`snapshot` into this one.

        This is how a sweep parent absorbs worker perf data: stage
        seconds and call counts add, counters add.
        """
        for name, data in snapshot.get("stages", {}).items():
            self._stage_hist(name).add(data["seconds"], data["calls"])
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)

    def reset(self) -> None:
        """Drop all recorded stages and counters."""
        registry = self.registry
        registry.remove(STAGE_METRIC)
        registry.remove(COUNTER_METRIC)


def _as_int(value: float):
    return int(value) if float(value).is_integer() else value


#: The process-global recorder the reader and pipeline feed by default.
#: It follows the global obs registry, so telemetry scopes (sweep
#: workers) redirect it without touching this module.
_GLOBAL = PerfRecorder(registry=_FOLLOW_OBS)  # type: ignore[arg-type]


def get_recorder() -> PerfRecorder:
    """The process-global recorder."""
    return _GLOBAL


def stage(name: str):
    """Time a stage on the global recorder (context manager)."""
    return _GLOBAL.stage(name)


def count(name: str, n: int = 1) -> None:
    """Add to a counter on the global recorder."""
    _GLOBAL.count(name, n)


def snapshot() -> dict:
    """Snapshot the global recorder."""
    return _GLOBAL.snapshot()


def reset() -> None:
    """Reset the global recorder (start a fresh measurement window)."""
    _GLOBAL.reset()


class TelemetryScope:
    """Handle yielded by :func:`telemetry_scope`; collects the session."""

    def __init__(self, tracer: obs.Tracer, registry: MetricsRegistry) -> None:
        self.tracer = tracer
        self.registry = registry

    def collect(self) -> dict:
        """``{"events": [...], "metrics": {...}}`` for the scoped session.

        Both halves are plain JSON-ready structures, picklable across
        process boundaries; the parent folds them back with
        ``obs.get_registry().merge(...)`` and ``tracer.absorb(...)``.
        """
        return {
            "events": list(self.tracer.events),
            "metrics": self.registry.snapshot(),
        }


@contextmanager
def telemetry_scope(enabled: Optional[bool] = None,
                    detail: Optional[str] = None,
                    wall_clock: Optional[bool] = None
                    ) -> Iterator[TelemetryScope]:
    """An isolated telemetry session: fresh tracer + registry, restored after.

    Everything recorded inside — obs events, obs metrics, *and* perf
    stages/counters (the global recorder follows the swap) — lands in the
    scoped session only.  Sweep workers run each trial inside one of
    these so per-trial telemetry can be returned and merged into the
    parent instead of being silently discarded.

    Args:
        enabled / detail / wall_clock: tracer settings; default to the
            current global tracer's (so a scope inherits whether tracing
            is on).
    """
    current = obs.get_tracer()
    tracer = obs.Tracer(
        enabled=current.enabled if enabled is None else enabled,
        detail=current.detail if detail is None else detail,
        wall_clock=current.wall_clock if wall_clock is None else wall_clock,
    )
    registry = MetricsRegistry()
    old = obs.install_session(tracer, registry)
    try:
        yield TelemetryScope(tracer, registry)
    finally:
        obs.install_session(*old)
