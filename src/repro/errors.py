"""Exception hierarchy for the TagBreathe reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base type.  Substrate-specific errors subclass it per subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class StreamError(ReproError):
    """A time-series / stream operation received invalid data."""


class EmptyStreamError(StreamError):
    """An operation required a non-empty stream but got an empty one."""


class NonMonotonicTimeError(StreamError):
    """Timestamps passed to a stream were not strictly increasing."""


class EPCError(ReproError):
    """EPC codec or Gen2 protocol error."""


class EPCFormatError(EPCError):
    """An EPC value has the wrong width or cannot be decoded."""


class ReaderError(ReproError):
    """Reader-model error (bad antenna port, bad hop table, ...)."""


class AntennaError(ReaderError):
    """An antenna port is unknown or misconfigured."""


class BodyModelError(ReproError):
    """Human-subject model error (bad posture, placement, waveform)."""


class ScenarioError(ReproError):
    """An end-to-end simulation scenario is inconsistent."""


class ExtractionError(ReproError):
    """Breath-signal extraction could not produce an estimate."""


class InsufficientDataError(ExtractionError):
    """Not enough readings (or zero crossings) to estimate a breathing rate."""


class NoLineOfSightError(ReaderError):
    """The tag cannot be read at all (LOS fully blocked, paper Fig. 15).

    TagBreathe explicitly *does not report* monitoring results in this case
    (paper Section VI-B-4), so the condition is an exception rather than a
    silent empty result.
    """
