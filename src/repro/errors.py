"""Exception hierarchy for the TagBreathe reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base type.  Substrate-specific errors subclass it per subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class StreamError(ReproError):
    """A time-series / stream operation received invalid data."""


class EmptyStreamError(StreamError):
    """An operation required a non-empty stream but got an empty one."""


class NonMonotonicTimeError(StreamError):
    """Timestamps passed to a stream were not strictly increasing."""


class EPCError(ReproError):
    """EPC codec or Gen2 protocol error."""


class EPCFormatError(EPCError):
    """An EPC value has the wrong width or cannot be decoded."""


class ReaderError(ReproError):
    """Reader-model error (bad antenna port, bad hop table, ...)."""


class AntennaError(ReaderError):
    """An antenna port is unknown or misconfigured."""


class BodyModelError(ReproError):
    """Human-subject model error (bad posture, placement, waveform)."""


class ScenarioError(ReproError):
    """An end-to-end simulation scenario is inconsistent."""


class ExtractionError(ReproError):
    """Breath-signal extraction could not produce an estimate."""


class InsufficientDataError(ExtractionError):
    """Not enough readings (or zero crossings) to estimate a breathing rate."""


class ObservabilityError(ReproError):
    """The observability layer is misused (bad metric name, label clash,
    incompatible histogram buckets, malformed snapshot to merge).

    Raised at instrument registration/merge time — never from the hot
    recording path, so instrumentation cannot take down a capture.
    """


class FaultInjectionError(ReproError):
    """A fault injector or chain is misconfigured (bad severity, port, ...).

    Raised at construction/validation time — never while a stream is being
    perturbed, so a fault campaign either starts clean or not at all.
    """


class ServeError(ReproError):
    """Streaming-service error (:mod:`repro.serve`): server lifecycle
    misuse, checkpoint format problems, or client-side failures."""


class CheckpointCorruptError(ServeError):
    """A checkpoint file exists but cannot be trusted (torn write,
    truncation, garbage bytes, or a structurally malformed document).

    Distinct from a *missing* checkpoint (plain :class:`ServeError`):
    corruption means a write was interrupted or the storage lied, so the
    loader falls back to the previous good generation (``<path>.prev``)
    and the event is counted on
    ``repro_serve_checkpoint_corrupt_total`` instead of being silently
    treated as a cold start.
    """


class ServeTimeoutError(ServeError):
    """A client-side serve operation exceeded its deadline.

    Raised by :class:`~repro.serve.client.IngestClient` (connect/read
    timeouts) and :func:`~repro.serve.client.watch_estimates` so a dead
    or partitioned server surfaces as a typed error instead of blocking
    the caller forever.
    """


class FabricError(ServeError):
    """Multi-process fabric error (:mod:`repro.serve.fabric`): worker
    spawn/supervision failures, exhausted reconnect budgets, or a
    migration that could not complete."""


class ProtocolError(ServeError):
    """A wire frame violates the ``repro.serve`` protocol (bad length
    prefix, oversized frame, undecodable payload, unknown message type).

    Raised by the codec/decoder; the server catches it per connection and
    answers with an ``error`` frame instead of dying, so one malformed
    client cannot take down the monitoring service.
    """


class DegradedEstimateWarning(UserWarning):
    """A monitoring estimate was produced in degraded mode.

    Emitted (via :mod:`warnings`) when the pipeline had to drop data to
    survive — dead tag streams, antenna failover, heavy report loss — and
    the resulting :class:`~repro.core.pipeline.UserEstimate` carries a
    ``confidence`` below the configured warning threshold.  This is a
    :class:`UserWarning` subclass rather than a :class:`ReproError`: the
    estimate is still delivered, callers opt into strictness with
    ``warnings.simplefilter("error", DegradedEstimateWarning)``.
    """


class NoLineOfSightError(ReaderError):
    """The tag cannot be read at all (LOS fully blocked, paper Fig. 15).

    TagBreathe explicitly *does not report* monitoring results in this case
    (paper Section VI-B-4), so the condition is an exception rather than a
    silent empty result.
    """
