"""Command-line interface: ``python -m repro <command>``.

Four workflows a user reaches for before writing any code:

* ``demo``      — simulate a scenario and print the estimates.
* ``record``    — simulate a scenario and save the raw capture to a file.
* ``analyze``   — run the pipeline over a previously saved capture.
* ``regions``   — list the built-in regulatory channel plans.
* ``faults``    — inject delivery faults into a capture and compare the
  degraded estimates (confidence, reasons) against the clean run.
* ``bench``     — run the perf-benchmark suite (scalar vs vectorized
  synthesis, pipeline throughput) and write ``BENCH_*.json``.
* ``obs``       — run an *observed* scenario: capture the trace and
  metrics of one end-to-end run and write ``trace.jsonl`` /
  ``metrics.prom`` / ``manifest.json`` (DESIGN.md §10).
* ``serve``     — run the streaming ingest service: a framed TCP server
  that turns live tag-report streams into per-user breathing estimates
  (docs/SERVING.md); Ctrl-C drains gracefully.
* ``replay``    — stream a recorded capture into a running server at
  1x–Nx real time (the load generator).
* ``watch``     — subscribe to a running server's estimate stream and
  print it as JSONL.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from typing import Optional, Sequence

from .body import MetronomeBreathing, Subject
from .config import PipelineConfig
from .core.pipeline import TagBreathe
from .errors import DegradedEstimateWarning, FaultInjectionError
from .faults import (
    AntennaOutage,
    BurstyDrop,
    DuplicateReports,
    FaultChain,
    OutOfOrderDelivery,
    PhaseOutliers,
    PhasePiFlips,
    ReportDrop,
    TagDeath,
    TimestampJitter,
)
from .metrics.accuracy import breathing_rate_accuracy
from .rf.regional import REGULATIONS
from .sim.engine import run_scenario
from .sim.scenario import Scenario
from .sim.trace_io import load_trace_csv, save_trace_csv, trace_summary
from .viz.ascii import render_table


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TagBreathe: breath monitoring with commodity RFID "
                    "(ICDCS 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="simulate a scenario and estimate")
    _add_scenario_args(demo)

    record = sub.add_parser("record", help="simulate and save a capture")
    _add_scenario_args(record)
    record.add_argument("--out", required=True, help="CSV output path")

    analyze = sub.add_parser("analyze", help="run the pipeline on a capture")
    analyze.add_argument("trace", help="CSV capture (from 'record' or hardware)")
    analyze.add_argument("--cutoff-hz", type=float, default=0.67,
                         help="low-pass cutoff (default 0.67)")

    faults = sub.add_parser(
        "faults",
        help="inject faults into a simulated capture and show degradation")
    _add_scenario_args(faults)
    _add_fault_args(faults)

    sub.add_parser("regions", help="list regulatory channel plans")

    bench = sub.add_parser(
        "bench",
        help="time scalar vs vectorized synthesis and pipeline throughput")
    bench.add_argument("--quick", action="store_true",
                       help="abbreviated grid for CI smoke runs")
    bench.add_argument("--out-dir", default=".",
                       help="directory for BENCH_*.json (default: cwd); "
                            "'-' skips writing")
    bench.add_argument("--seed", type=int, default=0, help="master seed")
    bench.add_argument("--suite", choices=["all", "scenarios",
                                           "fabric_scale"],
                       default="all",
                       help="'scenarios' runs only the scenario packs and "
                            "merges their metrics into an existing "
                            "BENCH_simulation.json; 'fabric_scale' runs "
                            "only the multi-process soak and merges it "
                            "into BENCH_pipeline.json (default: all "
                            "suites)")

    obs_cmd = sub.add_parser(
        "obs",
        help="run an observed scenario and export trace/metrics/manifest")
    _add_scenario_args(obs_cmd)
    obs_cmd.add_argument("--out-dir", default="obs-out",
                         help="directory for trace.jsonl, metrics.prom, "
                              "manifest.json (default: obs-out); '-' prints "
                              "the summary without writing files")
    obs_cmd.add_argument("--detail", choices=["round", "slot"],
                         default="round",
                         help="trace granularity: one event per MAC round "
                              "(default) or additionally per ALOHA slot")
    obs_cmd.add_argument("--wall-clock", action="store_true",
                         help="stamp wall_s durations onto span ends "
                              "(makes the trace non-reproducible)")

    serve = sub.add_parser(
        "serve",
        help="run the streaming ingest service (Ctrl-C drains gracefully)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7421,
                       help="TCP port (default 7421; 0 = ephemeral)")
    serve.add_argument("--shards", type=int, default=4,
                       help="session worker shards (default 4)")
    serve.add_argument("--window", type=float, default=None,
                       help="trailing analysis window in seconds "
                            "(default: the engine's 25 s)")
    serve.add_argument("--interval", type=float, default=5.0,
                       help="estimate cadence in stream seconds (default 5)")
    serve.add_argument("--warmup", type=float, default=25.0,
                       help="stream seconds before a session's first "
                            "estimate (default 25)")
    serve.add_argument("--queue-capacity", type=int, default=4096,
                       help="per-shard ingest queue bound; overflow sheds "
                            "the oldest queued report (default 4096)")
    serve.add_argument("--checkpoint", default=None,
                       help="checkpoint file: saved periodically and on "
                            "drain, resumed on start when present")
    serve.add_argument("--checkpoint-every", type=float, default=30.0,
                       help="periodic checkpoint cadence in wall seconds "
                            "(default 30; 0 = only on drain)")
    serve.add_argument("--signal", action="store_true",
                       help="embed a downsampled breathing-signal trace "
                            "in estimate messages (for dashboards)")
    serve.add_argument("--max-resident-users", type=int, default=None,
                       help="budget of engine-backed sessions per server "
                            "(per worker with --workers); exceeding it "
                            "hibernates the least-recently-active sessions "
                            "to the compressed cold tier (default: "
                            "unbounded)")
    serve.add_argument("--idle-after", type=float, default=None,
                       help="hibernate a session after this many wall "
                            "seconds without a report; it wakes bit-exactly "
                            "on the next one (default: never)")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes behind a consistent-hash "
                            "router (0 = single-process server; N >= 1 "
                            "runs the supervised fabric; requires "
                            "--state-dir)")
    serve.add_argument("--state-dir", default=None,
                       help="fabric state directory (worker checkpoints "
                            "+ portfiles; restart over the same dir "
                            "resumes every session)")
    serve.add_argument("--standby", action="store_true",
                       help="run a warm-standby router over an existing "
                            "fabric's --state-dir: routes immediately and "
                            "promotes to supervisor if the primary dies")

    serve_worker = sub.add_parser(
        "serve-worker",
        help="run one fabric worker and join a remote supervisor")
    serve_worker.add_argument("--join", required=True,
                              help="supervisor control address host:port "
                                   "(comma-separated candidates allowed)")
    serve_worker.add_argument("--state-dir", required=True,
                              help="local directory for this worker's "
                                   "checkpoint and portfile")
    serve_worker.add_argument("--worker-id", type=int, default=None,
                              help="fixed worker id (default: supervisor "
                                   "assigns one at join)")
    serve_worker.add_argument("--host", default="127.0.0.1",
                              help="bind address for the ingest listener")
    serve_worker.add_argument("--advertise", default=None,
                              help="address the router should dial, when "
                                   "it differs from --host (NAT/containers)")

    chaos = sub.add_parser(
        "chaos",
        help="fault-inject a live fabric and verify streamed == batch")
    chaos.add_argument("--users", type=int, default=4,
                       help="simulated subjects (default 4)")
    chaos.add_argument("--duration", type=float, default=60.0,
                       help="capture length in stream seconds (default 60)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="master seed: capture, fault schedule, jitter")
    chaos.add_argument("--workers", type=int, default=2,
                       help="fabric worker processes (default 2)")
    chaos.add_argument("--kills", type=int, default=2,
                       help="SIGKILLs to inject (default 2)")
    chaos.add_argument("--stalls", type=int, default=1,
                       help="SIGSTOP partitions to inject (default 1)")
    chaos.add_argument("--corruptions", type=int, default=1,
                       help="checkpoint corruptions to inject (default 1)")
    chaos.add_argument("--speed", type=float, default=6.0,
                       help="replay acceleration (default 6x)")
    chaos.add_argument("--state-dir", default=None,
                       help="keep fabric state here instead of a temp dir")
    chaos.add_argument("--router-kill", action="store_true",
                       help="SIGKILL the primary router mid-replay and "
                            "require a warm standby to promote while the "
                            "client reconnects (replaces worker faults)")

    replay = sub.add_parser(
        "replay",
        help="stream a recorded capture into a running server")
    replay.add_argument("trace", help="capture file (.csv or .jsonl)")
    replay.add_argument("--host", default="127.0.0.1", help="server address")
    replay.add_argument("--port", type=int, default=7421, help="server port")
    replay.add_argument("--speed", type=float, default=1.0,
                        help="time acceleration: 1 = real time, 4 = 4x, "
                             "0 = as fast as backpressure admits")
    replay.add_argument("--client-id", default=None,
                        help="stable client identity (reconnects under the "
                             "same id are counted by the server)")

    watch = sub.add_parser(
        "watch",
        help="print a running server's estimate stream as JSONL")
    watch.add_argument("user", nargs="?", type=int, default=None,
                       help="user id to watch (default: all users)")
    watch.add_argument("--host", default="127.0.0.1", help="server address")
    watch.add_argument("--port", type=int, default=7421, help="server port")
    return parser


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "faults", "severities in [0, 1]; 0 makes an injector a provable "
                  "no-op. With no flags at all a representative "
                  "default chain is used.")
    group.add_argument("--drop", type=float, default=None,
                       help="i.i.d. report loss fraction")
    group.add_argument("--bursty-drop", type=float, default=None,
                       help="bursty (Gilbert-Elliott) loss fraction")
    group.add_argument("--tag-death", type=float, default=None,
                       help="kill one tag for this trailing fraction of the trial")
    group.add_argument("--antenna-outage", type=float, default=None,
                       help="silence the busiest antenna port for this "
                            "fraction of the trial")
    group.add_argument("--phase-outliers", type=float, default=None,
                       help="fraction of reads given a large phase offset")
    group.add_argument("--pi-flips", type=float, default=None,
                       help="fraction of reads with the pi phase ambiguity")
    group.add_argument("--jitter", type=float, default=None,
                       help="fraction of reads with timestamp jitter")
    group.add_argument("--duplicates", type=float, default=None,
                       help="fraction of reads delivered twice")
    group.add_argument("--reorder", type=float, default=None,
                       help="fraction of reads delivered late / out of order")
    group.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the fault chain (default 0)")


def _build_fault_chain(args: argparse.Namespace) -> FaultChain:
    flag_to_injector = (
        (args.drop, ReportDrop, {}),
        (args.bursty_drop, BurstyDrop, {}),
        (args.tag_death, TagDeath, {}),
        (args.antenna_outage, AntennaOutage, {"align": "end"}),
        (args.phase_outliers, PhaseOutliers, {}),
        (args.pi_flips, PhasePiFlips, {}),
        (args.jitter, TimestampJitter, {}),
        (args.duplicates, DuplicateReports, {}),
        (args.reorder, OutOfOrderDelivery, {}),
    )
    # An explicit ``--flag 0`` is honoured as a zero-severity (no-op)
    # stage; only when *no* fault flag is given at all does the demo
    # fall back to a representative lossy, flaky deployment.
    stages = [cls(severity, **kwargs)
              for severity, cls, kwargs in flag_to_injector
              if severity is not None]
    if not stages:
        stages = [BurstyDrop(0.3), TagDeath(0.4), PhasePiFlips(0.02)]
    return FaultChain(stages, seed=args.fault_seed)


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=1,
                        help="number of users, 1-4 (default 1)")
    parser.add_argument("--distance", type=float, default=3.0,
                        help="antenna distance in metres (default 3)")
    parser.add_argument("--rate", type=float, default=12.0,
                        help="metronome rate of user 1 in bpm (default 12); "
                             "additional users step +3 bpm each")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="capture length in seconds (default 60)")
    parser.add_argument("--contending", type=int, default=0,
                        help="contending item tags (default 0)")
    parser.add_argument("--seed", type=int, default=0, help="master seed")


def _build_scenario(args: argparse.Namespace) -> Scenario:
    subjects = [
        Subject(
            user_id=uid,
            distance_m=args.distance,
            lateral_offset_m=(uid - (args.users + 1) / 2) * 0.8,
            breathing=MetronomeBreathing(args.rate + 3.0 * (uid - 1)),
            sway_seed=args.seed * 10 + uid,
        )
        for uid in range(1, args.users + 1)
    ]
    scenario = Scenario(subjects)
    if args.contending:
        scenario = scenario.with_contending_tags(args.contending, seed=args.seed)
    return scenario


def _print_estimates(reports, user_ids, truths=None,
                     cutoff_hz: float = 0.67) -> int:
    config = PipelineConfig(cutoff_hz=cutoff_hz) if cutoff_hz != 0.67 \
        else PipelineConfig()
    pipeline = TagBreathe(config=config, user_ids=user_ids)
    estimates, failures = pipeline.process_detailed(reports)
    rows = []
    for uid in sorted(user_ids or estimates):
        if uid in estimates:
            est = estimates[uid]
            row = [uid, f"{est.rate_bpm:.2f} bpm", est.tags_fused,
                   est.read_count]
            if truths and uid in truths:
                row.append(f"{breathing_rate_accuracy(est.rate_bpm, truths[uid]) * 100:.1f}%")
            rows.append(row)
        else:
            rows.append([uid, "no estimate", "-", "-"]
                        + (["-"] if truths else []))
    headers = ["user", "estimate", "tags", "reads"] + (
        ["accuracy"] if truths else [])
    print(render_table(headers, rows))
    return 0 if estimates else 1


def _print_degradation(clean_reports, faulted_reports, user_ids, truths) -> int:
    clean, _ = TagBreathe(user_ids=user_ids).process_detailed(clean_reports)
    faulted, _ = TagBreathe(user_ids=user_ids).process_detailed(faulted_reports)
    rows = []
    for uid in sorted(user_ids):
        f = faulted.get(uid)
        c = clean.get(uid)
        rows.append([
            uid,
            f"{truths[uid]:.1f}" if uid in truths else "-",
            f"{c.rate_bpm:.2f}" if c else "no estimate",
            f"{f.rate_bpm:.2f}" if f else "no estimate",
            f"{f.confidence:.2f}" if f else "-",
            ", ".join(f.degraded_reasons) if f and f.degraded_reasons
            else ("none" if f else "-"),
        ])
    print(render_table(
        ["user", "truth", "clean bpm", "faulted bpm", "conf", "degraded"],
        rows))
    return 0 if faulted else 1


def _run_observed(args: argparse.Namespace) -> int:
    """The ``obs`` command: one fully observed scenario + pipeline run."""
    from . import obs
    from .viz.dashboard import render_obs_summary

    scenario = _build_scenario(args)
    print(f"observing {args.users} user(s) at {args.distance} m for "
          f"{args.duration:.0f} s (detail={args.detail})...")
    with obs.capture(detail=args.detail, wall_clock=args.wall_clock) \
            as (tracer, registry):
        result = run_scenario(scenario, duration_s=args.duration,
                              seed=args.seed)
        pipeline = TagBreathe(user_ids=set(scenario.monitored_user_ids))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            estimates, failures = pipeline.process_detailed(result.reports)
        events = list(tracer.events)
        metrics = registry.snapshot()

    print(render_obs_summary(events, metrics))
    rows = [[uid, f"{est.rate_bpm:.2f} bpm", f"{est.confidence:.2f}"]
            for uid, est in sorted(estimates.items())]
    rows += [[uid, f"failed: {reason}", "-"]
             for uid, reason in sorted(failures.items())]
    print(render_table(["user", "estimate", "confidence"], rows))

    if args.out_dir != "-":
        os.makedirs(args.out_dir, exist_ok=True)
        from .obs import write_events_jsonl, write_manifest, write_prometheus

        trace_path = os.path.join(args.out_dir, "trace.jsonl")
        n_lines = write_events_jsonl(events, trace_path)
        write_prometheus(registry, os.path.join(args.out_dir, "metrics.prom"))
        write_manifest(
            os.path.join(args.out_dir, "manifest.json"),
            config=pipeline.config,
            seeds=[args.seed],
            extra={"scenario": {
                "users": args.users, "distance_m": args.distance,
                "rate_bpm": args.rate, "duration_s": args.duration,
                "contending": args.contending, "detail": args.detail,
            }},
        )
        print(f"wrote trace.jsonl ({n_lines} events), metrics.prom, "
              f"manifest.json to {args.out_dir}")
    return 0 if estimates else 1


def _per_shard_budget(total: Optional[int], shards: int) -> Optional[int]:
    """Split a server-wide resident-session budget across shards.

    Ceil division so the shard budgets sum to at least the requested
    total (a floor of 1 per shard — a shard must be able to hold the
    session it is currently feeding).
    """
    if total is None:
        return None
    return max(1, -(-int(total) // max(1, shards)))


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: run the service until a signal drains it."""
    import asyncio
    import signal

    from .serve import BreathServer, SessionConfig

    if args.workers > 0 or args.standby:
        return _run_fabric(args)

    config = SessionConfig(
        window_s=args.window,
        estimate_interval_s=args.interval,
        warmup_s=args.warmup,
        queue_capacity=args.queue_capacity,
        include_signal=args.signal,
        idle_after_s=args.idle_after,
        max_resident=_per_shard_budget(args.max_resident_users, args.shards),
    )
    server = BreathServer(
        host=args.host, port=args.port, n_shards=args.shards, config=config,
        checkpoint_path=args.checkpoint,
        checkpoint_interval_s=args.checkpoint_every,
    )

    async def _run() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix loop: KeyboardInterrupt still drains below
        await server.start()
        print(f"serving on {server.host}:{server.port} "
              f"({args.shards} shards, interval {args.interval:.0f}s"
              + (f", checkpoint {args.checkpoint}" if args.checkpoint else "")
              + ") — Ctrl-C to drain")
        if server.counters["resumed_reports"]:
            print(f"resumed {server.session_count()} session(s), "
                  f"{server.counters['resumed_reports']} buffered reports "
                  f"from {args.checkpoint}")
        try:
            await server.serve_until(stop)
        except KeyboardInterrupt:  # pragma: no cover - signal-handler path
            await server.drain()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    summary = server.summary()
    print("drained: " + ", ".join(
        f"{key}={summary[key]}"
        for key in ("reports_total", "sessions", "shed_total",
                    "reconnects_total", "protocol_errors_total")))
    return 0


def _run_fabric(args: argparse.Namespace) -> int:
    """``serve --workers N``: supervised multi-process fabric."""
    import asyncio
    import signal

    from .serve import BreathFabric, FabricConfig, SessionConfig

    if not args.state_dir:
        flag = "--standby" if args.standby else "--workers"
        print(f"error: {flag} requires --state-dir (worker checkpoints "
              "live there; restarting over the same dir resumes sessions)",
              file=sys.stderr)
        return 2
    session = SessionConfig(
        window_s=args.window,
        estimate_interval_s=args.interval,
        warmup_s=args.warmup,
        queue_capacity=args.queue_capacity,
        include_signal=args.signal,
        idle_after_s=args.idle_after,
        max_resident=_per_shard_budget(args.max_resident_users, args.shards),
    )
    config = FabricConfig(
        workers=max(args.workers, 1),
        host=args.host,
        n_shards=args.shards,
        checkpoint_interval_s=args.checkpoint_every,
        session=session,
    )
    fabric = BreathFabric(args.state_dir, config,
                          host=args.host, port=args.port,
                          standby=args.standby)

    async def _run() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await fabric.start()
        if args.standby:
            print(f"standby router on {fabric.host}:{fabric.port} over "
                  f"{len(fabric.supervisor.workers)} worker(s), "
                  f"state {args.state_dir} — promotes if the primary dies")
        else:
            print(f"fabric on {fabric.host}:{fabric.port} "
                  f"({args.workers} workers x {args.shards} shards, "
                  f"state {args.state_dir}) — Ctrl-C to drain")
        try:
            await stop.wait()
        finally:
            await fabric.stop(graceful=True)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    counters = fabric.counters
    restarts = sum(h.restarts
                   for h in fabric.supervisor.workers.values())
    print("drained: " + ", ".join(
        f"{key}={counters[key]}"
        for key in ("connections_total", "routed_reports_total",
                    "link_failures_total", "rebalances_total"))
        + f", worker_restarts={restarts}")
    return 0


def _run_serve_worker(args: argparse.Namespace) -> int:
    """``serve-worker``: one worker process joining a remote supervisor.

    The supervisor assigns the worker id (unless pinned) and pushes the
    fleet's session knobs in the assign reply, so a hand-started worker
    behaves identically to a locally spawned one.
    """
    from pathlib import Path

    from .serve.worker import worker_main

    state_dir = Path(args.state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    options = {
        "host": args.host,
        "join": [spec.strip()
                 for spec in args.join.split(",") if spec.strip()],
    }
    if args.advertise:
        options["advertise_host"] = args.advertise
    label = (f"worker {args.worker_id}" if args.worker_id is not None
             else "worker (id assigned at join)")
    print(f"{label} joining {args.join} "
          f"(state {state_dir}) — Ctrl-C to drain")
    try:
        worker_main(args.worker_id, str(state_dir), options)
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    """``chaos``: fault-inject a fabric, verify streamed == batch."""
    from .serve import ChaosConfig, run_chaos

    config = ChaosConfig(
        users=args.users,
        duration_s=args.duration,
        seed=args.seed,
        workers=args.workers,
        kills=args.kills,
        stalls=args.stalls,
        corruptions=args.corruptions,
        speed=args.speed,
        router_kill=args.router_kill,
    )
    if config.router_kill:
        print(f"chaos: {config.users} users / {config.duration_s:.0f} s "
              f"capture on {config.workers} workers; SIGKILLing the "
              f"primary router mid-replay, standby must promote "
              f"(seed {config.seed})...")
    else:
        print(f"chaos: {config.users} users / {config.duration_s:.0f} s "
              f"capture on {config.workers} workers; injecting "
              f"{config.kills} kills, {config.stalls} stalls, "
              f"{config.corruptions} corruptions (seed {config.seed})...")
    report = run_chaos(config, state_dir=args.state_dir)
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


def _run_replay(args: argparse.Namespace) -> int:
    """The ``replay`` command: stream a capture into a running server."""
    from .serve import replay_trace
    from .sim.trace_io import load_trace

    reports = load_trace(args.trace)
    print(trace_summary(reports))
    pace = "max speed" if args.speed <= 0 else f"{args.speed:g}x real time"
    print(f"replaying to {args.host}:{args.port} at {pace}...")
    try:
        stats = replay_trace(reports, args.host, args.port,
                             speed=args.speed, client_id=args.client_id)
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(f"sent {stats.sent} reports in {stats.wall_s:.1f}s "
          f"({stats.sent / max(stats.wall_s, 1e-9):.0f}/s), "
          f"server acked {stats.acked}, shed {stats.shed_total}")
    for error in stats.errors:
        print(f"server error: {error}", file=sys.stderr)
    return 1 if stats.errors else 0


def _run_watch(args: argparse.Namespace) -> int:
    """The ``watch`` command: print the estimate stream as JSONL."""
    import asyncio
    import json

    from .serve import watch_estimates

    async def _run() -> int:
        try:
            async for message in watch_estimates(args.host, args.port,
                                                 args.user):
                print(json.dumps(message, sort_keys=True), flush=True)
        except (ConnectionError, OSError) as exc:
            print(f"error: cannot reach {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 1
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return 0


def _run_bench_scenarios(args: argparse.Namespace, out_dir: Optional[str],
                         grid_name: str) -> int:
    """``bench --suite scenarios``: run the packs, merge into the JSON.

    Only the ``"scenarios"`` key of an existing ``BENCH_simulation.json``
    is replaced — the wall-clock suites keep their published numbers, so
    the packs can be re-scored without re-timing the whole grid.
    """
    import json
    from pathlib import Path

    from .bench import run_scenario_pack_benchmark

    print(f"running {grid_name} scenario-pack suite (seed {args.seed})...")
    scenarios = run_scenario_pack_benchmark(quick=args.quick, seed=args.seed)
    rows = []
    for name, pack in scenarios["packs"].items():
        for case, metrics in pack["cases"].items():
            rows.append([
                name, case, metrics["ticks"],
                f"{metrics['mean_accuracy']:.3f}",
                metrics["confident_wrong_in_motion"],
                f"{metrics['false_alarm_rate']:.3f}",
                f"{metrics['missed_alarm_rate']:.3f}",
            ])
    print(render_table(
        ["pack", "engine", "ticks", "accuracy", "conf-wrong(motion)",
         "false-alarm", "missed-alarm"], rows))
    if out_dir is not None:
        path = Path(out_dir) / "BENCH_simulation.json"
        payload = json.loads(path.read_text()) if path.exists() else {}
        payload["scenarios"] = scenarios
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"merged scenario metrics into {path}")
    return 0


def _fabric_scale_summary(case: dict) -> str:
    """One-line headline for a fabric_scale soak case."""
    return (f"fabric soak: {case['settled_sessions']}/{case['users']} "
            f"sessions settled on {case['workers_initial']}->"
            f"{case['workers_final']} workers "
            f"({case['users_per_machine']:.0f} users/machine), "
            f"{case['migrated_sessions']} migrated in rebalance, "
            f"{case['worker_restarts']} restarts, "
            f"{case['reports_per_s']:.0f} reports/s, "
            f"acked==sent: {case['acked_equal_sent']}")


def _run_bench_fabric(args: argparse.Namespace, out_dir: Optional[str],
                      grid_name: str) -> int:
    """``bench --suite fabric_scale``: soak only, merge into the JSON.

    Only the ``"fabric_scale"`` key of an existing ``BENCH_pipeline.json``
    is replaced — the single-process pipeline suites keep their published
    numbers, so the multi-machine soak can be re-scored alone.
    """
    import json
    from pathlib import Path

    from .bench import run_fabric_soak_benchmark

    print(f"running {grid_name} fabric_scale soak (seed {args.seed})...")
    suite = run_fabric_soak_benchmark(quick=args.quick, seed=args.seed)
    print(_fabric_scale_summary(suite["cases"][0]))
    if out_dir is not None:
        path = Path(out_dir) / "BENCH_pipeline.json"
        payload = json.loads(path.read_text()) if path.exists() else {}
        payload["fabric_scale"] = suite
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"merged fabric_scale metrics into {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "regions":
        rows = [
            (reg.name, f"{reg.band_hz[0] / 1e6:.1f}-{reg.band_hz[1] / 1e6:.1f} MHz",
             reg.num_channels,
             "hopping" if reg.hopping_required else "fixed allowed",
             f"{reg.max_eirp_dbm:.1f} dBm")
            for reg in REGULATIONS.values()
        ]
        print(render_table(
            ["region", "band", "channels", "mode", "max EIRP"], rows))
        return 0

    if args.command == "bench":
        from .bench import run_benchmarks
        out_dir = None if args.out_dir == "-" else args.out_dir
        grid_name = "quick" if args.quick else "full"
        if args.suite == "scenarios":
            return _run_bench_scenarios(args, out_dir, grid_name)
        if args.suite == "fabric_scale":
            return _run_bench_fabric(args, out_dir, grid_name)
        print(f"running {grid_name} perf benchmark grid "
              f"(seed {args.seed})...")
        results = run_benchmarks(quick=args.quick, seed=args.seed,
                                 out_dir=out_dir)
        rows = [
            [c["users"], f"{c['duration_s']:.0f} s", c["reports"],
             f"{c['scalar']['seconds']:.2f} s",
             f"{c['vectorized']['seconds']:.2f} s",
             f"{c['speedup']:.1f}x"]
            for c in results["simulation"]["cases"]
        ]
        print(render_table(
            ["users", "trial", "reports", "scalar", "vectorized", "speedup"],
            rows))
        pipe_rows = [
            [c["users"], f"{c['duration_s']:.0f} s", c["reports"],
             f"{c['process_s']:.2f} s", f"{c['reports_per_s']:.0f}/s"]
            for c in results["pipeline"]["cases"]
        ]
        print(render_table(
            ["users", "trial", "reports", "process", "throughput"],
            pipe_rows))
        fabric = results["pipeline"].get("fabric_scale")
        if fabric:
            print(_fabric_scale_summary(fabric["cases"][0]))
        overhead = results["simulation"].get("observability")
        if overhead:
            print(f"observability overhead ({overhead['users']} users, "
                  f"{overhead['duration_s']:.0f} s): "
                  f"{overhead['overhead_fraction'] * 100:+.1f}% "
                  f"({overhead['baseline_s']:.2f} s -> "
                  f"{overhead['traced_s']:.2f} s, "
                  f"{overhead['events']} events)")
        if out_dir is not None:
            print(f"wrote BENCH_simulation.json and BENCH_pipeline.json "
                  f"to {out_dir}")
        return 0

    if args.command == "obs":
        return _run_observed(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "serve-worker":
        return _run_serve_worker(args)

    if args.command == "chaos":
        return _run_chaos(args)

    if args.command == "replay":
        return _run_replay(args)

    if args.command == "watch":
        return _run_watch(args)

    if args.command == "analyze":
        reports = load_trace_csv(args.trace)
        print(trace_summary(reports))
        user_ids = {r.user_id for r in reports if r.user_id < (1 << 32)}
        return _print_estimates(reports, user_ids or None,
                                cutoff_hz=args.cutoff_hz)

    # demo / record / faults share the simulation step.  Validate the
    # fault chain first: a bad severity must fail before the (much more
    # expensive) capture simulation, not after it.
    chain = None
    if args.command == "faults":
        try:
            chain = _build_fault_chain(args)
        except FaultInjectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    scenario = _build_scenario(args)
    print(f"simulating {args.users} user(s) at {args.distance} m for "
          f"{args.duration:.0f} s ({scenario.total_tag_count()} tags)...")
    result = run_scenario(scenario, duration_s=args.duration, seed=args.seed)
    print(f"captured {len(result.reports)} reads "
          f"({result.aggregate_read_rate_hz():.0f}/s)")

    if args.command == "faults":
        faulted = chain.apply(result.reports)
        print(f"injected faults: {len(result.reports)} reads in, "
              f"{len(faulted)} out")
        print(chain.describe())
        truths = {uid: result.ground_truth.rate_bpm(uid, 0, args.duration)
                  for uid in scenario.monitored_user_ids}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedEstimateWarning)
            return _print_degradation(result.reports, faulted,
                                      set(scenario.monitored_user_ids), truths)

    if args.command == "record":
        count = save_trace_csv(result.reports, args.out)
        print(f"wrote {count} reports to {args.out}")
        return 0

    truths = {uid: result.ground_truth.rate_bpm(uid, 0, args.duration)
              for uid in scenario.monitored_user_ids}
    return _print_estimates(result.reports, set(scenario.monitored_user_ids),
                            truths)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
