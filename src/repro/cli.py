"""Command-line interface: ``python -m repro <command>``.

Four workflows a user reaches for before writing any code:

* ``demo``      — simulate a scenario and print the estimates.
* ``record``    — simulate a scenario and save the raw capture to a file.
* ``analyze``   — run the pipeline over a previously saved capture.
* ``regions``   — list the built-in regulatory channel plans.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .body import MetronomeBreathing, Subject
from .config import PipelineConfig
from .core.pipeline import TagBreathe
from .metrics.accuracy import breathing_rate_accuracy
from .rf.regional import REGULATIONS
from .sim.engine import run_scenario
from .sim.scenario import Scenario
from .sim.trace_io import load_trace_csv, save_trace_csv, trace_summary
from .viz.ascii import render_table


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TagBreathe: breath monitoring with commodity RFID "
                    "(ICDCS 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="simulate a scenario and estimate")
    _add_scenario_args(demo)

    record = sub.add_parser("record", help="simulate and save a capture")
    _add_scenario_args(record)
    record.add_argument("--out", required=True, help="CSV output path")

    analyze = sub.add_parser("analyze", help="run the pipeline on a capture")
    analyze.add_argument("trace", help="CSV capture (from 'record' or hardware)")
    analyze.add_argument("--cutoff-hz", type=float, default=0.67,
                         help="low-pass cutoff (default 0.67)")

    sub.add_parser("regions", help="list regulatory channel plans")
    return parser


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=1,
                        help="number of users, 1-4 (default 1)")
    parser.add_argument("--distance", type=float, default=3.0,
                        help="antenna distance in metres (default 3)")
    parser.add_argument("--rate", type=float, default=12.0,
                        help="metronome rate of user 1 in bpm (default 12); "
                             "additional users step +3 bpm each")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="capture length in seconds (default 60)")
    parser.add_argument("--contending", type=int, default=0,
                        help="contending item tags (default 0)")
    parser.add_argument("--seed", type=int, default=0, help="master seed")


def _build_scenario(args: argparse.Namespace) -> Scenario:
    subjects = [
        Subject(
            user_id=uid,
            distance_m=args.distance,
            lateral_offset_m=(uid - (args.users + 1) / 2) * 0.8,
            breathing=MetronomeBreathing(args.rate + 3.0 * (uid - 1)),
            sway_seed=args.seed * 10 + uid,
        )
        for uid in range(1, args.users + 1)
    ]
    scenario = Scenario(subjects)
    if args.contending:
        scenario = scenario.with_contending_tags(args.contending, seed=args.seed)
    return scenario


def _print_estimates(reports, user_ids, truths=None,
                     cutoff_hz: float = 0.67) -> int:
    config = PipelineConfig(cutoff_hz=cutoff_hz) if cutoff_hz != 0.67 \
        else PipelineConfig()
    pipeline = TagBreathe(config=config, user_ids=user_ids)
    estimates, failures = pipeline.process_detailed(reports)
    rows = []
    for uid in sorted(user_ids or estimates):
        if uid in estimates:
            est = estimates[uid]
            row = [uid, f"{est.rate_bpm:.2f} bpm", est.tags_fused,
                   est.read_count]
            if truths and uid in truths:
                row.append(f"{breathing_rate_accuracy(est.rate_bpm, truths[uid]) * 100:.1f}%")
            rows.append(row)
        else:
            rows.append([uid, "no estimate", "-", "-"]
                        + (["-"] if truths else []))
    headers = ["user", "estimate", "tags", "reads"] + (
        ["accuracy"] if truths else [])
    print(render_table(headers, rows))
    return 0 if estimates else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "regions":
        rows = [
            (reg.name, f"{reg.band_hz[0] / 1e6:.1f}-{reg.band_hz[1] / 1e6:.1f} MHz",
             reg.num_channels,
             "hopping" if reg.hopping_required else "fixed allowed",
             f"{reg.max_eirp_dbm:.1f} dBm")
            for reg in REGULATIONS.values()
        ]
        print(render_table(
            ["region", "band", "channels", "mode", "max EIRP"], rows))
        return 0

    if args.command == "analyze":
        reports = load_trace_csv(args.trace)
        print(trace_summary(reports))
        user_ids = {r.user_id for r in reports if r.user_id < (1 << 32)}
        return _print_estimates(reports, user_ids or None,
                                cutoff_hz=args.cutoff_hz)

    # demo / record share the simulation step.
    scenario = _build_scenario(args)
    print(f"simulating {args.users} user(s) at {args.distance} m for "
          f"{args.duration:.0f} s ({scenario.total_tag_count()} tags)...")
    result = run_scenario(scenario, duration_s=args.duration, seed=args.seed)
    print(f"captured {len(result.reports)} reads "
          f"({result.aggregate_read_rate_hz():.0f}/s)")

    if args.command == "record":
        count = save_trace_csv(result.reports, args.out)
        print(f"wrote {count} reports to {args.out}")
        return 0

    truths = {uid: result.ground_truth.rate_bpm(uid, 0, args.duration)
              for uid in scenario.monitored_user_ids}
    return _print_estimates(result.reports, set(scenario.monitored_user_ids),
                            truths)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
