"""TagBreathe — breath monitoring with commodity RFID systems.

A full reproduction of *TagBreathe: Monitor Breathing with Commodity RFID
Systems* (Hou, Wang, Zheng — IEEE ICDCS 2017), including every substrate
the paper depends on: a UHF backscatter RF model, an EPC Gen2 MAC
simulator, an Impinj-R420-class reader model with frequency hopping and
multi-antenna round-robin, a breathing-human body model, and the
TagBreathe signal pipeline itself (phase preprocessing, multi-tag raw-data
fusion, FFT low-pass extraction, zero-crossing rate estimation).

Quickstart::

    from repro import Scenario, run_scenario, TagBreathe

    scenario = Scenario.single_user(distance_m=2.0)
    result = run_scenario(scenario, duration_s=30.0, seed=7)
    pipeline = TagBreathe(user_ids={1})
    estimate = pipeline.process(result.reports)[1]
    print(f"breathing rate: {estimate.rate_bpm:.1f} bpm")

See DESIGN.md for the module map and EXPERIMENTS.md for the paper-vs-
reproduction results of every figure.
"""

from .config import (
    NoiseConfig,
    PipelineConfig,
    ReaderConfig,
    RobustnessConfig,
    ScenarioDefaults,
    SystemConfig,
    default_config,
)
from .core import (
    DEGRADED_REASONS,
    FEED_DROP_KEYS,
    BreathExtractor,
    BreathingEstimate,
    DopplerBreathEstimator,
    FFTPeakEstimator,
    RSSIBreathEstimator,
    TagBreathe,
    UserEstimate,
    default_frequencies,
    displacement_deltas,
    displacement_track,
    fft_lowpass,
    fft_peak_rate_bpm,
    fir_lowpass,
    fuse_streams,
    group_reports_by_user,
    rate_series_bpm,
    sanitize_reports,
    zero_crossing_times,
)
from .body import (
    AsymmetricBreathing,
    BreathingStyle,
    IrregularBreathing,
    MetronomeBreathing,
    SinusoidalBreathing,
    Subject,
)
from .epc import EPC96, EPCMappingTable
from .errors import DegradedEstimateWarning, FaultInjectionError, ReproError
from .faults import (
    ALL_INJECTORS,
    AntennaOutage,
    BurstyDrop,
    DuplicateReports,
    FaultChain,
    FaultInjector,
    InjectionStats,
    InterferenceBurst,
    OutOfOrderDelivery,
    PhaseOutliers,
    PhasePiFlips,
    ReportDrop,
    TagDeath,
    TagDropout,
    TimestampJitter,
)
from .metrics import (
    AccuracyStats,
    ExperimentRunner,
    breathing_rate_accuracy,
    summarize_accuracies,
)
from .reader import Antenna, LLRPClient, Reader, ROSpec, TagReport
from .sim import GroundTruth, Scenario, SimulationResult, run_scenario
from .streams import TimeSeries

__version__ = "1.0.0"

__all__ = [
    # configuration
    "NoiseConfig", "PipelineConfig", "ReaderConfig", "RobustnessConfig",
    "ScenarioDefaults", "SystemConfig", "default_config",
    # core pipeline
    "TagBreathe", "UserEstimate", "BreathExtractor", "BreathingEstimate",
    "default_frequencies", "displacement_deltas", "displacement_track",
    "fuse_streams", "group_reports_by_user", "fft_lowpass", "fir_lowpass",
    "zero_crossing_times", "rate_series_bpm", "fft_peak_rate_bpm",
    "RSSIBreathEstimator", "DopplerBreathEstimator", "FFTPeakEstimator",
    "sanitize_reports", "DEGRADED_REASONS", "FEED_DROP_KEYS",
    # fault injection
    "FaultChain", "FaultInjector", "InjectionStats", "ALL_INJECTORS",
    "ReportDrop", "BurstyDrop", "InterferenceBurst", "TagDropout",
    "TagDeath", "AntennaOutage", "PhaseOutliers", "PhasePiFlips",
    "TimestampJitter", "DuplicateReports", "OutOfOrderDelivery",
    # body models
    "Subject", "BreathingStyle", "SinusoidalBreathing", "AsymmetricBreathing",
    "IrregularBreathing", "MetronomeBreathing",
    # EPC
    "EPC96", "EPCMappingTable",
    # reader
    "Reader", "TagReport", "Antenna", "LLRPClient", "ROSpec",
    # simulation
    "Scenario", "SimulationResult", "run_scenario", "GroundTruth",
    # metrics
    "breathing_rate_accuracy", "summarize_accuracies", "AccuracyStats",
    "ExperimentRunner",
    # streams
    "TimeSeries",
    # errors
    "ReproError", "FaultInjectionError", "DegradedEstimateWarning",
    "__version__",
]
